//! A distributed fault-injection campaign: this one binary is both the
//! coordinator *and* (via self-exec) its two worker processes.
//!
//! The coordinator compiles the plan once, ships it with the DRAM weight
//! image and the quantized evaluation set to each worker over localhost
//! sockets, schedules `(fault configuration × image shard)` tasks across
//! the fleet, and merges the records — asserted bit-identical to the
//! in-process [`Campaign::run`] at the end.
//!
//! Run with: `cargo run --release --example distributed_campaign`
//!
//! For cross-host campaigns, the same coordinator listens on
//! `NVFI_DIST_ADDR` and remote machines attach with
//! `nvfi_worker <coordinator-addr>` instead of being spawned locally.

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_dist::{run_campaign, FleetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Self-exec hook FIRST: when the coordinator below re-executes this
    // binary with NVFI_WORKER_CONNECT set, the copy becomes a worker,
    // serves its session and exits here — it never reaches the code below.
    nvfi_dist::worker::maybe_serve();

    // A small untrained fixture: fault-injection scheduling is
    // weight-independent, so there is no need to train for this demo.
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 16,
        ..Default::default()
    })
    .generate();
    let net = nvfi_nn::resnet::ResNet::new(4, &[1, 1], 10, 42);
    let deploy = nvfi_nn::fold::fold_resnet(&net, 32);
    let q = nvfi_quant::quantize(
        &deploy,
        &data.train.images,
        &nvfi_quant::QuantConfig::default(),
    )?;
    let config = PlatformConfig::default();

    // 3 random 2-multiplier subsets x 2 injected faults = 6 work items,
    // spread over 2 worker processes x 2 local devices each.
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 2,
            trials: 3,
            seed: 7,
        },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 16,
        threads: 4,
        workers: 2,
        verbose: true,
        ..Default::default()
    };

    eprintln!("running distributed: 2 self-exec workers over localhost...");
    let dist = run_campaign(&q, config, &spec, &data.test, &FleetSpec::self_exec())?;
    eprintln!("running the same campaign in-process for comparison...");
    let local = Campaign::new(&q, config).run(&spec, &data.test)?;

    assert_eq!(
        local.records, dist.records,
        "distributed records must be bit-identical to the in-process pool"
    );
    assert_eq!(local.baseline_accuracy, dist.baseline_accuracy);
    assert_eq!(local.total_inferences, dist.total_inferences);

    println!(
        "distributed campaign: {} records, baseline {:.1}%, {} inferences in {:.2}s \
         ({:.0} inf/s)",
        dist.records.len(),
        dist.baseline_accuracy * 100.0,
        dist.total_inferences,
        dist.wall_seconds,
        dist.inferences_per_second(),
    );
    for r in &dist.records {
        println!(
            "  {:?} on {} mult(s): accuracy {:.1}% (drop {:+.1} pp, sdc {:.0}%)",
            r.kind,
            r.targets.len(),
            r.accuracy * 100.0,
            r.drop_pct,
            r.outcomes.sdc_rate() * 100.0,
        );
    }
    println!("bit-identical to the in-process run — OK");
    Ok(())
}
