//! The full model pipeline the platform consumes: train a slim ResNet-18 on
//! SynthCIFAR, fold batch norm, quantize to int8, compile, and verify the
//! emulated accelerator matches the CPU reference bit-exactly.
//!
//! Run with: `cargo run --release --example train_quantize_deploy`
//! (Takes a couple of minutes: it really trains.)

use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::layers::Layer as _;
use nvfi_nn::resnet::ResNet;
use nvfi_nn::train::{TrainConfig, Trainer};
use nvfi_quant::{quantize, QuantConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data.
    let data = SynthCifar::new(SynthCifarConfig {
        train: 800,
        test: 200,
        ..Default::default()
    })
    .generate();
    println!(
        "SynthCIFAR: {} train / {} test images",
        data.train.len(),
        data.test.len()
    );

    // 2. Train a slim ResNet-18 (width 8).
    let mut net = ResNet::resnet18(8, 10, 7);
    let stats = Trainer::new(TrainConfig {
        epochs: 3,
        verbose: true,
        ..Default::default()
    })
    .fit(&mut net, &data.train, &data.test);
    println!(
        "float test accuracy: {:.1}%",
        100.0 * stats.final_test_acc()
    );

    // 3. Fold batch norm into convolutions.
    let deploy = fold_resnet(&net, 32);
    let float_acc = deploy.accuracy(&data.test.images, &data.test.labels);
    println!("folded deploy-graph accuracy: {:.1}%", 100.0 * float_acc);
    // Folding must not change eval-mode behaviour.
    let logits_net = net.forward(&data.test.images.slice_image(0), false);
    let logits_deploy = deploy.forward(&data.test.images.slice_image(0));
    let max_diff = logits_net
        .as_slice()
        .iter()
        .zip(logits_deploy.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);
    println!("max logit difference after folding: {max_diff:.5}");

    // 4. Post-training int8 quantization (per-channel weights).
    let q = quantize(
        &deploy,
        &data.train.take(64).images,
        &QuantConfig::default(),
    )?;
    let int8_acc = q.accuracy(&data.test.images, &data.test.labels, 1);
    println!(
        "int8 accuracy: {:.1}% (drop vs float: {:.1} pp)",
        100.0 * int8_acc,
        100.0 * (float_acc - int8_acc)
    );

    // 5. Compile and run on the emulated accelerator.
    let mut platform = EmulationPlatform::assemble(&q, PlatformConfig::default())?;
    let accel_acc = platform.accuracy(&data.test.images, &data.test.labels)?;
    println!("accelerator accuracy: {:.1}%", 100.0 * accel_acc);
    assert_eq!(
        accel_acc, int8_acc,
        "the emulated accelerator must match the CPU reference bit-exactly"
    );
    println!(
        "modelled FPGA latency {:.2} ms ({:.0} inf/s)",
        platform.modeled_latency_ms(),
        platform.modeled_inferences_per_second()
    );
    Ok(())
}
