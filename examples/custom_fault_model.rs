//! Beyond the paper's 0/+1/-1 experiments: bit-granular and transient
//! faults, expressed with the same `fsel`/`fdata` registers ("other fault
//! models can easily be incorporated", Sec. II).
//!
//! * a single-bit stuck-at-1 on the product sign wire (bit 17);
//! * a transient ("pulse") fault active only for a window of MAC cycles.
//!
//! Run with: `cargo run --release --example custom_fault_model`

use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_accel::{AccelConfig, ExecMode, FaultConfig, FaultKind};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qmodel = nvfi::experiments::untrained_quant_model(8, 3);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 4,
        ..Default::default()
    })
    .generate();
    let image = data.test.images.slice_image(0);

    // Bit-granular faults need the exact (per-product) engine.
    let config = PlatformConfig {
        accel: AccelConfig {
            mode: ExecMode::Exact,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut platform = EmulationPlatform::assemble(&qmodel, config)?;
    let clean = platform.run(&image)?.logits;
    println!("clean logits:          {clean:?}");

    // Sign wire (bit 17) stuck at 1: every product on the lane becomes
    // strongly negative.
    let sign_stuck = FaultConfig::new(
        vec![MultId::new(2, 3)],
        FaultKind::StuckBits {
            fsel: 1 << 17,
            fdata: 1 << 17,
        },
    );
    platform.inject(&sign_stuck);
    let faulted = platform.run(&image)?.logits;
    println!("sign-bit stuck-at-1:   {faulted:?}");
    assert_ne!(clean, faulted);
    platform.clear_faults();

    // LSB stuck-at-1: a barely visible perturbation.
    platform.inject(&FaultConfig::new(
        vec![MultId::new(2, 3)],
        FaultKind::StuckBits { fsel: 1, fdata: 1 },
    ));
    let lsb = platform.run(&image)?.logits;
    println!("lsb stuck-at-1:        {lsb:?}");
    platform.clear_faults();

    // Bit-flip (XOR) fault — a model beyond the paper's mux, added through
    // the extension register REG_FI_XOR.
    platform.inject(&FaultConfig::new(
        vec![MultId::new(2, 3)],
        FaultKind::FlipBits { mask: 1 << 16 },
    ));
    let flipped = platform.run(&image)?.logits;
    println!("bit-16 flip:           {flipped:?}");
    assert_ne!(clean, flipped);
    platform.clear_faults();

    // A pulse fault: all lanes forced to the maximum value, but only during
    // a 2000-cycle window mid-inference. Cycle numbering restarts at every
    // inference launch, so the window is relative to inference start and the
    // same pulse hits every image — no offsetting for previous runs needed.
    let total = platform.accel().mac_cycles_retired();
    println!("one inference retires {total} MAC-array cycles");
    platform.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::Constant(131071),
    ));
    platform
        .accel_mut()
        .set_fault_window(Some(total / 2..total / 2 + 2000))?;
    let pulsed = platform.run(&image)?.logits;
    println!("pulse fault (2k cyc):  {pulsed:?}");
    assert_ne!(
        clean, pulsed,
        "the pulse lands mid-inference and must be visible"
    );
    Ok(())
}
