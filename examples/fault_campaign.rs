//! A miniature Fig. 2: random multiplier subsets of growing size, three
//! injected values, box-plot statistics of the accuracy drop.
//!
//! Run with: `cargo run --release --example fault_campaign`

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::report::box_plot_chart;
use nvfi::stats::FiveNum;
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quickly trained slim model (cached across runs in artifacts/).
    let spec = nvfi::artifacts::ModelSpec {
        width: 4,
        epochs: 2,
        train: 300,
        test: 100,
        verbose: true,
        ..Default::default()
    };
    let (qmodel, data, base_acc) = nvfi::artifacts::get_or_train_quantized(&spec);
    println!("baseline int8 accuracy: {:.1}%", 100.0 * base_acc);

    let campaign = Campaign::new(&qmodel, PlatformConfig::default());
    // The full host thread budget: with only 5 trials per campaign, the
    // two-level scheduler groups surplus threads into device pools that
    // shard each trial's evaluation batch (records are identical to
    // threads = 1, just faster).
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for k in [1usize, 2, 4] {
        for value in [0i32, 1, -1] {
            let result = campaign.run(
                &CampaignSpec {
                    selection: TargetSelection::RandomSubsets {
                        k,
                        trials: 5,
                        seed: 1,
                    },
                    kinds: vec![FaultKind::Constant(value)],
                    eval_images: 50,
                    threads,
                    verbose: false,
                    ..Default::default()
                },
                &data.test,
            )?;
            let drops = result.drops_pct();
            println!(
                "k={k} inj={value:>2}: mean SDC rate {:.0}% ({} FIs)",
                100.0 * result.mean_sdc_rate(),
                result.records.len()
            );
            rows.push((
                format!("k={k} inj={value:>2}"),
                FiveNum::from_sample(&drops),
            ));
        }
    }
    println!(
        "{}",
        box_plot_chart(
            "accuracy drop [pp] under random multiplier faults",
            &rows,
            46
        )
    );
    println!("(more multipliers faulted => larger drop, independent of the value)");
    Ok(())
}
