//! A miniature Fig. 3: fault every one of the 64 multipliers in turn and
//! render the per-position accuracy-drop heat map.
//!
//! Run with: `cargo run --release --example sensitivity_heatmap`

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::report::heat_map_chart;
use nvfi::stats::HeatMap;
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::{MAC_UNITS, MULTS_PER_MAC};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = nvfi::artifacts::ModelSpec {
        width: 4,
        epochs: 2,
        train: 300,
        test: 100,
        verbose: true,
        ..Default::default()
    };
    let (qmodel, data, base_acc) = nvfi::artifacts::get_or_train_quantized(&spec);
    println!("baseline int8 accuracy: {:.1}%", 100.0 * base_acc);

    let campaign = Campaign::new(&qmodel, PlatformConfig::default());
    let result = campaign.run(
        &CampaignSpec {
            selection: TargetSelection::ExhaustiveSingle,
            kinds: vec![FaultKind::Constant(-1)],
            eval_images: 40,
            threads: 1,
            verbose: false,
            ..Default::default()
        },
        &data.test,
    )?;

    let mut map = HeatMap::new(MAC_UNITS, MULTS_PER_MAC);
    for rec in &result.records {
        let m = rec.targets[0];
        map.set(m.mac as usize, m.mult as usize, rec.drop_pct);
    }
    let (lo, hi) = map.range();
    println!(
        "{}",
        heat_map_chart(
            "accuracy drop per faulted multiplier (inj -1)",
            &map,
            lo,
            hi.max(0.0)
        )
    );
    let (r, c) = map.argmin();
    println!(
        "most sensitive position: MAC {} multiplier {} ({:.1} pp drop)",
        r + 1,
        c + 1,
        map.at(r, c)
    );
    Ok(())
}
