//! Quickstart: assemble the emulation platform, run an inference, inject a
//! multiplier fault, and watch the logits move.
//!
//! Run with: `cargo run --release --example quickstart`

use nvfi::{EmulationPlatform, PlatformConfig};
use nvfi_accel::{FaultConfig, FaultKind};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small untrained ResNet-18 is enough to see fault mechanics.
    let qmodel = nvfi::experiments::untrained_quant_model(8, 1);
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 8,
        ..Default::default()
    })
    .generate();

    let mut platform = EmulationPlatform::assemble(&qmodel, PlatformConfig::default())?;
    println!("{}", platform.plan().describe());
    println!(
        "modelled FPGA latency: {:.3} ms  ({:.0} inferences/s at 187.5 MHz)",
        platform.modeled_latency_ms(),
        platform.modeled_inferences_per_second()
    );

    let image = data.test.images.slice_image(0);
    let clean = platform.run(&image)?;
    println!(
        "clean logits:   {:?} -> class {}",
        clean.logits, clean.class
    );

    // Stuck-at-0 on the last multiplier of MAC unit 1 — the paper's most
    // sensitive position.
    let fault = FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero);
    platform.inject(&fault);
    let faulted = platform.run(&image)?;
    println!(
        "faulted logits: {:?} -> class {}",
        faulted.logits, faulted.class
    );

    let changed = clean
        .logits
        .iter()
        .zip(&faulted.logits)
        .filter(|(a, b)| a != b)
        .count();
    println!("{changed}/10 logits changed under the fault");

    platform.clear_faults();
    assert_eq!(platform.run(&image)?.logits, clean.logits);
    println!("fault cleared: logits back to clean values");
    Ok(())
}
