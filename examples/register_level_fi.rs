//! Driving the platform the way the ARM-side software stack does on the
//! real Zynq: everything through AXI4-Lite register writes and DMA — no
//! high-level API.
//!
//! Run with: `cargo run --release --example register_level_fi`

use nvfi_accel::{AccelConfig, Accelerator};
use nvfi_compiler::plan::encode_reg_stream;
use nvfi_compiler::regmap;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qmodel = nvfi::experiments::untrained_quant_model(8, 5);
    let plan = nvfi_compiler::compile(&qmodel, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY)?;
    let data = SynthCifar::new(SynthCifarConfig {
        train: 0,
        test: 2,
        ..Default::default()
    })
    .generate();

    let mut dev = Accelerator::new(AccelConfig::default());

    // 1. Identify the device.
    let id = dev.csb_read(regmap::REG_ID)?;
    println!("device id register: {id:#010x}");
    assert_eq!(id, regmap::ID_VALUE);

    // 2. Stream the execution plan through the command FIFO.
    let stream = encode_reg_stream(&plan);
    println!(
        "streaming {} descriptor words into the command window",
        stream.len() - 1
    );
    dev.apply_reg_stream(&stream)?;
    dev.commit_cmd_fifo()?;

    // 3. DMA the packed weights into DRAM.
    let mut weight_bytes = 0usize;
    for (addr, bytes) in &plan.weight_image {
        dev.dma_write(*addr, bytes)?;
        weight_bytes += bytes.len();
    }
    println!("DMA'd {weight_bytes} weight bytes");

    // 4. Program a fault purely with register pokes: multipliers 0 and 63,
    //    all 18 wires forced to the encoding of -1.
    let sel: u64 = 1 | (1 << 63);
    dev.csb_write(regmap::REG_FI_SEL_A, sel as u32)?;
    dev.csb_write(regmap::REG_FI_SEL_B, (sel >> 32) as u32)?;
    dev.csb_write(regmap::REG_FI_FSEL, 0x3FFFF)?;
    dev.csb_write(regmap::REG_FI_FDATA, 0x3FFFF)?; // two's-complement -1
    dev.csb_write(regmap::REG_FI_CTRL, 1)?;
    println!(
        "FI registers: sel_a={:#010x} sel_b={:#010x} fsel={:#07x} fdata={:#07x}",
        dev.csb_read(regmap::REG_FI_SEL_A)?,
        dev.csb_read(regmap::REG_FI_SEL_B)?,
        dev.csb_read(regmap::REG_FI_FSEL)?,
        dev.csb_read(regmap::REG_FI_FDATA)?
    );

    // 5. Run and read the logits straight out of DRAM.
    let image = data.test.images.slice_image(0);
    let result = dev.run_inference(&image)?;
    println!(
        "faulted inference: class {} logits {:?}",
        result.class, result.logits
    );

    // 6. Disable FI and compare.
    dev.csb_write(regmap::REG_FI_CTRL, 0)?;
    let clean = dev.run_inference(&image)?;
    println!(
        "clean inference:   class {} logits {:?}",
        clean.class, clean.logits
    );
    assert_ne!(result.logits, clean.logits);
    Ok(())
}
