//! Umbrella crate for the `zynq-nvdla-fi` workspace: re-exports every
//! sub-crate so the runnable examples and cross-crate integration tests can
//! reach the whole platform through one dependency.
//!
//! The actual functionality lives in the workspace crates:
//!
//! * [`nvfi`] — the emulation platform, fault models, campaigns, experiments;
//! * [`nvfi_accel`] — the emulated NVDLA-style accelerator with fault
//!   injectors;
//! * [`nvfi_compiler`] — quantized-model-to-execution-plan compiler;
//! * [`nvfi_quant`] / [`nvfi_nn`] / [`nvfi_dataset`] / [`nvfi_tensor`] /
//!   [`nvfi_hwnum`] — the CNN stack;
//! * [`nvfi_dist`] — the multi-process campaign fabric: coordinator/worker
//!   pools over sockets, bit-identical to the in-process scheduler;
//! * [`nvfi_systolic`] — the SAFFIRA-style software-simulation baseline;
//! * [`nvfi_synth`] — the synthesis (LUT/FF) cost model.

#![forbid(unsafe_code)]

pub use nvfi;
pub use nvfi_accel;
pub use nvfi_compiler;
pub use nvfi_dataset;
pub use nvfi_dist;
pub use nvfi_hwnum;
pub use nvfi_nn;
pub use nvfi_quant;
pub use nvfi_synth;
pub use nvfi_systolic;
pub use nvfi_tensor;
