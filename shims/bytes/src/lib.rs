//! Offline stand-in for the `bytes` crate (API subset; see
//! shims/README.md): `Bytes`/`BytesMut` plus the little-endian `Buf`/
//! `BufMut` accessors the artifact format and the `nvfi-dist` wire format
//! use. Every panicking accessor has a checked `try_*` twin that returns
//! `None` instead of panicking on underflow — what a network decoder must
//! use, since a truncated frame is an input error, not a programmer error.

#![forbid(unsafe_code)]

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, or `None` if fewer than `n` remain (the cursor is
    /// left unmoved on failure).
    fn try_take_bytes(&mut self, n: usize) -> Option<&[u8]>;

    /// Reads `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        self.try_take_bytes(n).expect("buffer underflow")
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Checked [`Buf::get_u8`].
    fn try_get_u8(&mut self) -> Option<u8> {
        self.try_take_bytes(1).map(|b| b[0])
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.take_bytes(2);
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Checked [`Buf::get_u32_le`].
    fn try_get_u32_le(&mut self) -> Option<u32> {
        self.try_take_bytes(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.take_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Checked [`Buf::get_u64_le`].
    fn try_get_u64_le(&mut self) -> Option<u64> {
        self.try_take_bytes(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian i32.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Checked [`Buf::get_i32_le`].
    fn try_get_i32_le(&mut self) -> Option<i32> {
        self.try_get_u32_le().map(|v| v as i32)
    }

    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Checked [`Buf::get_i64_le`].
    fn try_get_i64_le(&mut self) -> Option<i64> {
        self.try_get_u64_le().map(|v| v as i64)
    }

    /// Reads a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Takes ownership of a byte vector (no copy).
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn try_take_bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Consumes the buffer into its bytes (no copy).
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Number of accumulated bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into a readable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u16_le(7);
        w.put_u8(3);
        w.put_f32_le(1.5);
        w.put_u64_le(0x0102_0304_0506_0708);
        w.put_i64_le(-9);
        w.put_i32_le(-5);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 31);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn checked_accessors_do_not_panic_or_advance() {
        let mut r = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(r.try_get_u32_le(), None);
        assert_eq!(r.try_get_u64_le(), None);
        assert_eq!(r.try_get_i64_le(), None);
        // Failed reads must not consume: the three bytes are still there.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.try_get_u8(), Some(1));
        assert_eq!(r.try_take_bytes(2), Some(&[2u8, 3u8][..]));
        assert_eq!(r.try_get_u8(), None);
    }

    #[test]
    fn from_vec_and_into_vec_avoid_copies() {
        let b = Bytes::from_vec(vec![9, 8, 7]);
        assert_eq!(b.remaining(), 3);
        let mut w = BytesMut::new();
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.into_vec(), vec![1]);
    }
}
