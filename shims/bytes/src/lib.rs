//! Offline stand-in for the `bytes` crate (API subset; see
//! shims/README.md): `Bytes`/`BytesMut` plus the little-endian `Buf`/
//! `BufMut` accessors the artifact format uses.

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.take_bytes(2);
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into a readable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u16_le(7);
        w.put_u8(3);
        w.put_f32_le(1.5);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}
