//! Offline stand-in for the `criterion` crate (API subset; see
//! shims/README.md).
//!
//! Runs each benchmark `sample_size` times after one warm-up iteration and
//! prints mean/median wall time. When the `CRITERION_JSON` environment
//! variable names a file, one JSON line per benchmark
//! (`{"id": ..., "mean_ns": ..., "median_ns": ...}`) is appended to it —
//! that is how `BENCH_*.json` numbers in this repository are produced.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::Instant;

/// Re-export-compatible opaque black box.
#[must_use]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_bench(id, 20, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure under measurement.
pub struct Bencher {
    samples_ns: Vec<u128>,
    target: usize,
}

impl Bencher {
    /// Measures `f`, running it once for warm-up then `sample_size` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let _ = black_box(f()); // warm-up
        for _ in 0..self.target {
            let t = Instant::now();
            let _ = black_box(f());
            self.samples_ns.push(t.elapsed().as_nanos());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        target: sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("bench {id:<40} (no samples)");
        return;
    }
    b.samples_ns.sort_unstable();
    let mean = b.samples_ns.iter().sum::<u128>() / b.samples_ns.len() as u128;
    let median = b.samples_ns[b.samples_ns.len() / 2];
    println!(
        "bench {id:<40} mean {:>12.3} ms   median {:>12.3} ms   ({} samples)",
        mean as f64 / 1e6,
        median as f64 / 1e6,
        b.samples_ns.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                fh,
                "{{\"id\": \"{id}\", \"mean_ns\": {mean}, \"median_ns\": {median}}}"
            );
        }
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
