//! Offline stand-in for the `serde_json` crate (API subset; see
//! shims/README.md): a `Value` tree, the `json!` constructor macro and
//! pretty serialization. Objects preserve insertion order.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, printed without a trailing `.0` when
    /// integral).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

macro_rules! value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Number(*v as f64)
            }
        }
    )*};
}
value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<Vec<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T> From<&Vec<T>> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Borrow-based conversion used by the `json!` macro (the upstream macro
/// goes through `serde::Serialize`, which also works on references — this
/// mirrors that, so `json!({"xs": s.xs})` never moves out of `s`).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's lossy modes
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialization error (this stand-in cannot actually fail).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Pretty-prints a value with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from JSON-ish syntax: objects with string-literal
/// keys, arrays, `null`, and arbitrary Rust expressions coerced via
/// `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_array!([ $($elems)* ] -> []) };
    ({ $($fields:tt)* }) => { $crate::json_object!({ $($fields)* } -> []) };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Terminal: no elements left.
    ([] -> [$($out:expr),*]) => { $crate::Value::Array(vec![$($out),*]) };
    // Nested object element.
    ([ { $($obj:tt)* } $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::json!({ $($obj)* })])
    };
    // Nested array element.
    ([ [ $($arr:tt)* ] $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::json!([ $($arr)* ])])
    };
    // null element.
    ([ null $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::Value::Null])
    };
    // Expression element.
    ([ $head:expr $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::ToJson::to_json(&$head)])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Terminal: no fields left.
    ({} -> [$($out:expr),*]) => { $crate::Value::Object(vec![$($out),*]) };
    ({ $(,)? } -> [$($out:expr),*]) => { $crate::Value::Object(vec![$($out),*]) };
    // Key with nested object value.
    ({ $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::json!({ $($obj)* }))])
    };
    // Key with nested array value.
    ({ $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::json!([ $($arr)* ]))])
    };
    // Key with null value.
    ({ $key:literal : null $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::Value::Null)])
    };
    // Key with expression value.
    ({ $key:literal : $val:expr $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::ToJson::to_json(&$val))])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_arrays_objects() {
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x"],
            "c": { "nested": true, "n": null },
            "d": vec![1.0f64, 2.0],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("2.5"));
        assert!(s.contains("\"nested\": true"));
        assert!(s.contains("null"));
    }

    #[test]
    fn numbers_print_integral_when_whole() {
        assert_eq!(to_string_pretty(&json!(3.0f64)).unwrap(), "3");
        assert_eq!(to_string_pretty(&json!(3.25f64)).unwrap(), "3.25");
    }

    #[test]
    fn strings_escape() {
        let s = to_string_pretty(&json!("a\"b\\c\n")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn collected_values_nest() {
        let parts: Vec<Value> = (0..3).map(|i| json!([i, i * 2])).collect();
        let v = json!({ "parts": parts });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('['));
    }
}
