//! Offline stand-in for the `serde_json` crate (API subset; see
//! shims/README.md): a `Value` tree, the `json!` constructor macro, pretty
//! serialization, parsing via [`from_str`] and the read accessors
//! ([`Value::get`], [`Value::as_f64`], ...). Objects preserve insertion
//! order.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, printed without a trailing `.0` when
    /// integral).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (or `None` for other variants / missing
    /// keys), like upstream's `Value::get` with a string index.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object (upstream
    /// returns a `Map`; this stand-in exposes the ordered pairs directly).
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

macro_rules! value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Number(*v as f64)
            }
        }
    )*};
}
value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<Vec<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T> From<&Vec<T>> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Borrow-based conversion used by the `json!` macro (the upstream macro
/// goes through `serde::Serialize`, which also works on references — this
/// mirrors that, so `json!({"xs": s.xs})` never moves out of `s`).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's lossy modes
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialization / parse error. Serialization in this stand-in cannot
/// actually fail; parsing reports the byte offset of the first problem.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] (upstream:
/// `serde_json::from_str::<Value>`). Accepts exactly one top-level value
/// with optional surrounding whitespace.
///
/// # Errors
///
/// Returns [`Error`] (with the byte offset) on malformed input or trailing
/// garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Number),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                        // Surrogates (emitted pairwise by upstream for
                        // astral-plane chars) are not needed by this
                        // workspace's data; map them to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid UTF-8 input"));
            }
        }
    }
}

/// Strict JSON number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`. Rust's `f64::parse`
/// is laxer (leading `+`, `.5`, `1.`, `inf`), and upstream serde_json
/// rejects those — committed files must not depend on shim leniency.
fn is_json_number(s: &str) -> bool {
    let b = s.strip_prefix('-').unwrap_or(s).as_bytes();
    let mut i = 0;
    match b.first() {
        Some(b'0') => i = 1,
        Some(c) if c.is_ascii_digit() => {
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
    }
    i == b.len()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .filter(|t| is_json_number(t))
        .and_then(|t| t.parse::<f64>().ok())
        // Upstream rejects out-of-range literals (1e999) rather than
        // returning infinity, which would make numeric comparisons vacuous.
        .filter(|v| v.is_finite())
        .ok_or_else(|| Error(format!("bad number at byte {start}")))
}

/// Pretty-prints a value with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from JSON-ish syntax: objects with string-literal
/// keys, arrays, `null`, and arbitrary Rust expressions coerced via
/// `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_array!([ $($elems)* ] -> []) };
    ({ $($fields:tt)* }) => { $crate::json_object!({ $($fields)* } -> []) };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Terminal: no elements left.
    ([] -> [$($out:expr),*]) => { $crate::Value::Array(vec![$($out),*]) };
    // Nested object element.
    ([ { $($obj:tt)* } $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::json!({ $($obj)* })])
    };
    // Nested array element.
    ([ [ $($arr:tt)* ] $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::json!([ $($arr)* ])])
    };
    // null element.
    ([ null $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::Value::Null])
    };
    // Expression element.
    ([ $head:expr $(, $($rest:tt)*)? ] -> [$($out:expr),*]) => {
        $crate::json_array!([ $($($rest)*)? ] -> [$($out,)* $crate::ToJson::to_json(&$head)])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Terminal: no fields left.
    ({} -> [$($out:expr),*]) => { $crate::Value::Object(vec![$($out),*]) };
    ({ $(,)? } -> [$($out:expr),*]) => { $crate::Value::Object(vec![$($out),*]) };
    // Key with nested object value.
    ({ $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::json!({ $($obj)* }))])
    };
    // Key with nested array value.
    ({ $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::json!([ $($arr)* ]))])
    };
    // Key with null value.
    ({ $key:literal : null $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::Value::Null)])
    };
    // Key with expression value.
    ({ $key:literal : $val:expr $(, $($rest:tt)*)? } -> [$($out:expr),*]) => {
        $crate::json_object!({ $($($rest)*)? } ->
            [$($out,)* ($key.to_string(), $crate::ToJson::to_json(&$val))])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_arrays_objects() {
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x"],
            "c": { "nested": true, "n": null },
            "d": vec![1.0f64, 2.0],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("2.5"));
        assert!(s.contains("\"nested\": true"));
        assert!(s.contains("null"));
    }

    #[test]
    fn numbers_print_integral_when_whole() {
        assert_eq!(to_string_pretty(&json!(3.0f64)).unwrap(), "3");
        assert_eq!(to_string_pretty(&json!(3.25f64)).unwrap(), "3.25");
    }

    #[test]
    fn strings_escape() {
        let s = to_string_pretty(&json!("a\"b\\c\n")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn collected_values_nest() {
        let parts: Vec<Value> = (0..3).map(|i| json!([i, i * 2])).collect();
        let v = json!({ "parts": parts });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('['));
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x\"y\\z"],
            "c": { "nested": true, "n": null },
            "neg": -3.5e-2,
        });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn accessors_navigate() {
        let v = from_str(r#"{"id": "x/y", "mean_ns": 1500000, "ok": true, "xs": [1, 2]}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("x/y"));
        assert_eq!(v.get("mean_ns").and_then(Value::as_f64), Some(1.5e6));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Value::as_array).map(Vec::len), Some(2));
        assert_eq!(v.as_object().map(Vec::len), Some(4));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1, 2,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_numbers_strictly_like_upstream() {
        // Valid JSON numbers.
        for ok in ["0", "-0", "10", "2.5", "-0.125", "1e3", "1.5E-2", "9e+2"] {
            assert!(from_str(ok).is_ok(), "`{ok}` is a valid JSON number");
        }
        // Rust-parseable but not JSON (upstream serde_json rejects these).
        for bad in ["+25", ".5", "1.", "01", "1e", "1e+", "inf", "NaN", "1e999"] {
            assert!(from_str(bad).is_err(), "`{bad}` must be rejected");
        }
    }
}
