//! Offline stand-in for the `rand` crate (API subset; see shims/README.md).
//!
//! `StdRng` here is a SplitMix64 generator: deterministic per seed, fast,
//! and statistically fine for synthetic data and target shuffling. It is
//! **not** stream-compatible with upstream `rand::rngs::StdRng`.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform-sampling primitive. The single blanket
/// [`SampleRange`] impl below ties the range's element type to the sampled
/// type, which is what lets inference flow the way upstream `rand`'s does
/// (e.g. `rng.gen_range(0.0..1.0) < some_f32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range");
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as $t / denom as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling helpers (blanket over every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Uniform draw of a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Standard generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::{RngCore, SampleRange};

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_one(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..5);
            assert!((-3..5).contains(&v));
            let f = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u = rng.gen_range(0u8..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..64).collect::<Vec<_>>(),
            "64 elements should not stay in place"
        );
    }
}
