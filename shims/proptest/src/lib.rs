//! Offline stand-in for the `proptest` crate (API subset; see
//! shims/README.md).
//!
//! Provides the strategy combinators and the `proptest!` macro used by this
//! workspace: seeded random case generation without shrinking. Failures
//! report the case index; re-running is deterministic (the RNG seed is a
//! hash of the test function name), so a failing case reproduces exactly.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Deterministic generator for test-case construction (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % span
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Upstream proptest strategies also know how to shrink;
/// this stand-in only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e12 - 1e12
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.uniform_u128(span) as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A: 0);
strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Length specifications accepted by [`vec()`]: a fixed length or a range.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// A `Vec` strategy with element strategy `elem` and length `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Box<dyn IntoLenRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy producing vectors of values from `elem`.
    #[must_use]
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: Box::new(len),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! The usual imports.
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let ( $($pat,)+ ) =
                        $crate::Strategy::generate(&( $($strat,)+ ), &mut __rng);
                    // The body runs per case; assertion macros carry the
                    // case index via the panic location only.
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("t");
        let s = (1usize..4, -5i32..5, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((-5..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn flat_map_and_collection_vec() {
        let mut rng = TestRng::from_name("t2");
        let s = (1usize..5).prop_flat_map(|n| collection::vec(any::<i8>(), n..n + 1));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(v in collection::vec(any::<u8>(), 0..8), x in 3u32..9) {
            prop_assert!(v.len() < 8);
            prop_assert!((3..9).contains(&x));
        }
    }
}
