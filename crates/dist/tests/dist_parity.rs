//! Distributed-vs-in-process parity and fault tolerance of the campaign
//! fabric.
//!
//! The contract under test: a campaign run over worker *processes* —
//! whatever the fleet size, however work is sharded, and even when a worker
//! dies mid-shard — produces `FiRecord`s, `baseline_accuracy` and
//! `total_inferences` **bit-identical** to the in-process
//! [`Campaign::run`]. Failure paths must be errors, never panics.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{Dataset, SynthCifar, SynthCifarConfig};
use nvfi_dist::wire::{self, Msg, WIRE_VERSION};
use nvfi_dist::{run_campaign, worker, DistError, FleetSpec, WireError};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// The `nvfi_worker` binary built alongside these tests.
fn worker_fleet() -> FleetSpec {
    FleetSpec {
        accept_timeout: Duration::from_secs(120),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    }
}

fn setup() -> (QuantModel, Dataset) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data.test)
}

fn base_spec() -> CampaignSpec {
    CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 0)],
            vec![MultId::new(1, 1), MultId::new(2, 2)],
            vec![MultId::new(7, 7)],
        ]),
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 10,
        threads: 2,
        ..Default::default()
    }
}

fn assert_identical(
    a: &nvfi::campaign::CampaignResult,
    b: &nvfi::campaign::CampaignResult,
    what: &str,
) {
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy, "{what}: baseline");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.total_inferences, b.total_inferences, "{what}: inferences");
}

/// Six work items over two worker processes: the outer work-item cursor
/// path. Records must be bit-identical to the in-process pool.
#[test]
fn two_worker_campaign_matches_in_process() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &worker_fleet()).unwrap();
    assert_identical(&in_process, &dist, "2-worker");
    assert!(dist.wall_seconds > 0.0);
}

/// One fault configuration, two workers: the work list is narrower than the
/// fleet, so the evaluation batch itself must shard *across workers* (the
/// inner level of the two-level scheduler) — and still merge identically.
#[test]
fn single_item_shards_across_workers_identically() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![MultId::new(3, 4)]]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 12,
        threads: 2,
        ..Default::default()
    };
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &worker_fleet()).unwrap();
    assert_identical(&in_process, &dist, "sharded single item");
}

/// Transient-window campaigns ship the window with each work item plus the
/// coordinator-built golden activation cache as a fourth content-addressed
/// artifact; workers restore golden prefixes from it and must stay
/// bit-identical.
#[test]
fn windowed_campaign_matches_in_process() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let total = nvfi::EmulationPlatform::assemble(&q, config)
        .unwrap()
        .accel()
        .total_mac_cycles()
        .unwrap();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![vec![MultId::new(0, 1)], vec![MultId::new(5, 6)]]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 5,
        threads: 2,
        fault_window: Some(total / 2..total * 3 / 4),
        ..Default::default()
    };
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &worker_fleet()).unwrap();
    assert_identical(&in_process, &dist, "windowed");
}

/// Worker-death fault tolerance: worker 0 is told (via the
/// `NVFI_WORKER_EXIT_AFTER` test hook) to die without replying when its
/// second shard arrives. The coordinator must requeue the lost shard onto
/// the surviving worker and the campaign must complete bit-identically.
#[test]
fn worker_death_mid_shard_is_requeued_bit_identically() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: vec![vec![(worker::ENV_EXIT_AFTER.into(), "1".into())]],
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "after worker death");
}

/// When *every* worker dies, the campaign must fail with a clear fleet-lost
/// error (not hang, not panic, not return partial records).
#[test]
fn losing_every_worker_is_a_clear_error() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let die_immediately = vec![(worker::ENV_EXIT_AFTER.to_string(), "0".to_string())];
    let fleet = FleetSpec {
        worker_env: vec![die_immediately.clone(), die_immediately],
        // Both workers are dead for good; no point granting the default 5 s
        // re-admission window before declaring the fleet lost.
        readmission_grace: Duration::from_millis(400),
        ..worker_fleet()
    };
    let spec = CampaignSpec {
        workers: 2,
        ..base_spec()
    };
    match run_campaign(&q, config, &spec, &eval, &fleet) {
        Err(DistError::FleetLost { incomplete }) => assert!(incomplete > 0),
        other => panic!("expected FleetLost, got {other:?}"),
    }
}

/// A worker whose hello speaks the wrong wire version must be rejected by
/// the coordinator with an error naming both versions — over a real socket.
#[test]
fn version_mismatched_hello_rejected_over_socket() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        wire::send(
            &mut s,
            &Msg::Hello {
                version: WIRE_VERSION + 7,
            },
        )
        .unwrap();
        // The coordinator must say why before closing.
        match wire::recv(&mut s) {
            Ok(Msg::WorkerErr { message }) => message,
            other => panic!("expected WorkerErr, got {other:?}"),
        }
    });
    let (mut stream, _) = listener.accept().unwrap();
    match wire::accept_hello(&mut stream) {
        Err(DistError::Wire(WireError::Version { peer, local })) => {
            assert_eq!(peer, WIRE_VERSION + 7);
            assert_eq!(local, WIRE_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
    let told = peer.join().unwrap();
    assert!(told.contains("mismatch"), "worker was told: {told}");
}

/// The worker side of the same check: a coordinator replying with a foreign
/// version makes `serve` fail cleanly.
#[test]
fn worker_rejects_version_mismatched_coordinator() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_coordinator = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let _ = wire::recv(&mut s).unwrap(); // the worker's hello
        wire::send(&mut s, &Msg::Hello { version: 999 }).unwrap();
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    match worker::serve(&mut stream) {
        Err(DistError::Wire(WireError::Version { peer: 999, .. })) => {}
        other => panic!("expected version error, got {other:?}"),
    }
    fake_coordinator.join().unwrap();
}

/// A frame that ends mid-payload (coordinator vanishes, link cut) must
/// surface as an I/O error on the worker — never a panic.
#[test]
fn truncated_frame_over_socket_is_an_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_coordinator = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let _ = wire::recv(&mut s).unwrap(); // the worker's hello
        wire::send(
            &mut s,
            &Msg::Hello {
                version: WIRE_VERSION,
            },
        )
        .unwrap();
        // Consume the worker's cache advertisement before hanging up:
        // closing a socket with unread received data sends RST, which
        // could discard the truncated frame below from the worker's
        // receive buffer and turn the asserted clean EOF into a reset.
        match wire::recv(&mut s) {
            Ok(Msg::HaveArtifacts { .. }) => {}
            other => panic!("expected the cache advertisement, got {other:?}"),
        }
        // Promise a 64-byte frame, deliver 3 bytes, hang up.
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        drop(s);
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    match worker::serve(&mut stream) {
        Err(DistError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        other => panic!("expected EOF error, got {other:?}"),
    }
    fake_coordinator.join().unwrap();
}

/// A free fixed port for external-attach tests (bind ephemeral, read, drop
/// — momentarily racy, which is fine for tests).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// The cross-host shape: long-lived `nvfi_worker <addr>` processes attach
/// to a coordinator listening on a **fixed** port, and keep serving across
/// *consecutive campaigns* of one experiment (fig2/fig3 run one campaign
/// per figure point over the same port) — session looping on the worker
/// side, rebind + re-accept on the coordinator side, records bit-identical
/// every time.
#[test]
fn external_workers_serve_consecutive_campaigns_on_a_fixed_port() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let addr = format!("127.0.0.1:{}", free_port());
    let mut children: Vec<std::process::Child> = (0..2)
        .map(|_| {
            std::process::Command::new(env!("CARGO_BIN_EXE_nvfi_worker"))
                .arg(&addr)
                .spawn()
                .unwrap()
        })
        .collect();
    let fleet = FleetSpec {
        listen: Some(addr),
        external_workers: 2,
        accept_timeout: Duration::from_secs(120),
        ..FleetSpec::self_exec()
    };
    let spec = base_spec(); // workers: 0 — the whole fleet attaches
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let first = run_campaign(&q, config, &spec, &eval, &fleet).unwrap();
    let second = run_campaign(&q, config, &spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &first, "external campaign 1");
    assert_identical(&in_process, &second, "external campaign 2");
    for c in &mut children {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// A worker that *stalls* (accepts a shard, never answers, never closes —
/// no socket error, so worker-death detection cannot see it) must be timed
/// out by `FleetSpec::task_timeout`, its shard requeued, and the campaign
/// still completed bit-identically by the healthy worker.
#[test]
fn stalled_worker_is_timed_out_and_shard_requeued() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let addr = format!("127.0.0.1:{}", free_port());
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_nvfi_worker"))
        .arg(&addr)
        .spawn()
        .unwrap();
    // The stalled peer: handshakes, consumes session setup, then sits on
    // its first Work frame forever.
    let stall_addr = addr.clone();
    std::thread::spawn(move || {
        let mut s = loop {
            match TcpStream::connect(&stall_addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        wire::client_hello(&mut s).unwrap();
        // An empty cache advertisement completes the v3 admission
        // handshake; everything after it is where this peer misbehaves.
        wire::send(
            &mut s,
            &Msg::HaveArtifacts {
                ident: 0xBAD_5EED,
                hashes: vec![],
            },
        )
        .unwrap();
        loop {
            match wire::recv(&mut s) {
                Ok(Msg::Work { .. }) => std::thread::sleep(Duration::from_secs(3600)),
                Ok(_) => {}
                Err(_) => return,
            }
        }
    });
    let fleet = FleetSpec {
        listen: Some(addr),
        external_workers: 2,
        accept_timeout: Duration::from_secs(120),
        task_timeout: Some(Duration::from_secs(3)),
        ..FleetSpec::self_exec()
    };
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let dist = run_campaign(&q, config, &spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "after stalled worker timeout");
    let _ = child.kill();
    let _ = child.wait();
}

/// `workers: 0` with no external fleet falls back to the in-process path.
#[test]
fn empty_fleet_falls_back_to_in_process() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fallback = run_campaign(&q, config, &spec, &eval, &worker_fleet()).unwrap();
    assert_identical(&in_process, &fallback, "fallback");
}
