//! The content-addressed session cache and the multiplexing campaign
//! server, end to end over real worker processes:
//!
//! * a **warm session** — a second campaign over unchanged plan / weights /
//!   evaluation set — re-ships **zero** artifact bytes and re-encodes
//!   nothing (the serialize-once probes prove both);
//! * a **repeat query** with an identical `(plan, fault config, eval set)`
//!   key is served from the server's result cache without dispatching a
//!   single shard;
//! * a **changed weight image** (an SEU in storage) changes the content
//!   hash, so the stale cached artifact is never reused — both campaigns
//!   stay bit-identical to their own in-process runs;
//! * **fair-share interleaving** — a small campaign submitted next to a
//!   large one finishes while the large one is still draining, instead of
//!   starving behind it.
//!
//! The serialization/shipping probes are process-wide counters, so every
//! test in this file takes one static lock: a sibling test's fleet traffic
//! must never pollute a probe delta.

use std::sync::Mutex;
use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{Dataset, SynthCifar, SynthCifarConfig};
use nvfi_dist::{wire, CampaignServer, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// Serializes the whole file: the wire probes are process-global.
static PROBE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PROBE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_fleet() -> FleetSpec {
    FleetSpec {
        accept_timeout: Duration::from_secs(120),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    }
}

fn setup_with_seed(seed: u64) -> (QuantModel, Dataset) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, seed);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data.test)
}

fn setup() -> (QuantModel, Dataset) {
    setup_with_seed(3)
}

fn spec_with_kinds(kinds: Vec<FaultKind>) -> CampaignSpec {
    CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 0)],
            vec![MultId::new(1, 1), MultId::new(2, 2)],
            vec![MultId::new(7, 7)],
        ]),
        kinds,
        eval_images: 8,
        threads: 1,
        ..Default::default()
    }
}

fn assert_identical(
    a: &nvfi::campaign::CampaignResult,
    b: &nvfi::campaign::CampaignResult,
    what: &str,
) {
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy, "{what}: baseline");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.total_inferences, b.total_inferences, "{what}: inferences");
}

/// A second campaign over the **same** plan / weight image / evaluation
/// set (only the fault kind differs, so the result key differs and the
/// fleet genuinely runs it) must re-encode nothing and re-ship zero
/// artifact bytes: the worker's content-addressed cache survives the
/// campaign switch. One worker, so the shipping assertion is exact.
#[test]
fn warm_session_reships_zero_artifact_bytes() {
    let _g = lock();
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let server = CampaignServer::start(&worker_fleet(), 1).unwrap();

    let spec_a = spec_with_kinds(vec![FaultKind::StuckAtZero]);
    let cold = server
        .submit(&q, config, &spec_a, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(
        &Campaign::new(&q, config).run(&spec_a, &eval).unwrap(),
        &cold,
        "cold session",
    );

    let plan0 = wire::plan_serializations();
    let weights0 = wire::weight_serializations();
    let eval0 = wire::eval_serializations();
    let shipped0 = wire::artifact_bytes_shipped();

    let spec_b = spec_with_kinds(vec![FaultKind::Constant(-1)]);
    let warm = server
        .submit(&q, config, &spec_b, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(
        &Campaign::new(&q, config).run(&spec_b, &eval).unwrap(),
        &warm,
        "warm session",
    );

    assert_eq!(
        wire::plan_serializations() - plan0,
        0,
        "a warm session must not re-encode the plan"
    );
    assert_eq!(
        wire::weight_serializations() - weights0,
        0,
        "a warm session must not re-encode the weight image"
    );
    assert_eq!(
        wire::eval_serializations() - eval0,
        0,
        "a warm session must not re-encode the evaluation set"
    );
    assert_eq!(
        wire::artifact_bytes_shipped() - shipped0,
        0,
        "a warm session over unchanged artifacts must re-ship zero bytes"
    );
    server.shutdown();
}

/// A repeat submission with an identical `(plan, fault config, eval set)`
/// result key must be answered from the result cache: same records, one
/// more cache hit, and **no** new shard dispatched to the fleet.
#[test]
fn repeat_query_is_served_from_the_result_cache() {
    let _g = lock();
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = spec_with_kinds(vec![FaultKind::StuckAtZero]);
    let server = CampaignServer::start(&worker_fleet(), 1).unwrap();

    let first = server
        .submit(&q, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    let stats_after_first = server.stats();
    assert_eq!(stats_after_first.cache_hits, 0, "first run is a miss");
    assert!(
        stats_after_first.tasks_dispatched > 0,
        "first run used the fleet"
    );

    let repeat = server
        .submit(&q, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    let stats_after_repeat = server.stats();

    assert_eq!(
        first.records, repeat.records,
        "cached records are the records"
    );
    assert_eq!(first.baseline_accuracy, repeat.baseline_accuracy);
    assert_eq!(first.total_inferences, repeat.total_inferences);
    assert_eq!(
        stats_after_repeat.cache_hits,
        stats_after_first.cache_hits + 1,
        "the repeat must hit the result cache"
    );
    assert_eq!(
        stats_after_repeat.tasks_dispatched, stats_after_first.tasks_dispatched,
        "a cache hit must not dispatch any fleet work"
    );
    assert_eq!(
        stats_after_repeat.campaigns_submitted,
        stats_after_first.campaigns_submitted + 1,
    );
    server.shutdown();
}

/// A changed weight image — the storage-SEU case: same architecture, same
/// plan, different weight bytes — changes the weight-image content hash, so
/// the worker's cached artifact is **invalidated**, a fresh image ships,
/// and both campaigns stay bit-identical to their own in-process runs
/// (reusing the stale image would corrupt the second campaign's records).
#[test]
fn changed_weights_invalidate_the_cached_artifact() {
    let _g = lock();
    let (q1, eval) = setup_with_seed(3);
    let (q2, _) = setup_with_seed(5);
    let config = PlatformConfig::default();
    let spec = spec_with_kinds(vec![FaultKind::StuckAtZero]);
    let server = CampaignServer::start(&worker_fleet(), 1).unwrap();

    let first = server
        .submit(&q1, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(
        &Campaign::new(&q1, config).run(&spec, &eval).unwrap(),
        &first,
        "original weights",
    );

    let weights0 = wire::weight_serializations();
    let shipped0 = wire::artifact_bytes_shipped();

    let second = server
        .submit(&q2, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(
        &Campaign::new(&q2, config).run(&spec, &eval).unwrap(),
        &second,
        "changed weights",
    );
    assert_ne!(
        first.records, second.records,
        "different weights must produce different records — identical ones \
         would mean the stale cached image was reused"
    );

    assert_eq!(
        wire::weight_serializations() - weights0,
        1,
        "a changed weight image is a new content hash: encoded once more"
    );
    assert!(
        wire::artifact_bytes_shipped() - shipped0 > 0,
        "the invalidated weight image must actually re-ship"
    );
    server.shutdown();
}

/// Fair-share interleaving: with a **single** worker and a large campaign
/// mid-drain, a small campaign submitted afterwards must complete while
/// the large one still has shards outstanding — the scheduler serves the
/// least-dispatched client first instead of draining queues FIFO.
#[test]
fn small_campaign_is_not_starved_by_a_large_one() {
    let _g = lock();
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let server = CampaignServer::start(&worker_fleet(), 1).unwrap();

    // 12 fault items + baseline = 13 shards of real inference work.
    let big_spec = CampaignSpec {
        selection: TargetSelection::Fixed((0..6).map(|i| vec![MultId::new(i, i)]).collect()),
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 8,
        threads: 1,
        ..Default::default()
    };
    let small_spec = spec_with_kinds(vec![FaultKind::StuckAtZero]);

    let big = server.submit(&q, config, &big_spec, &eval).unwrap();
    // Let the big campaign actually start draining before the small one
    // arrives, so the fair-share choice is real, not just submission order.
    let first = big
        .progress()
        .recv_timeout(Duration::from_secs(120))
        .expect("the big campaign must make progress");
    assert!(first.total > 4, "the big campaign must be genuinely large");

    let small = server.submit(&q, config, &small_spec, &eval).unwrap();
    let small_result = small.wait().unwrap();

    // The moment the small campaign finished, the big one must still have
    // shards outstanding — fair-share served the small client through.
    let mut big_done = first.done;
    for p in big.progress().try_iter() {
        big_done = p.done;
    }
    assert!(
        big_done < first.total,
        "the big campaign finished ({big_done}/{} shards) before the small \
         one completed — the small client starved in its queue",
        first.total
    );

    let big_result = big.wait().unwrap();
    assert_identical(
        &Campaign::new(&q, config).run(&small_spec, &eval).unwrap(),
        &small_result,
        "small client",
    );
    assert_identical(
        &Campaign::new(&q, config).run(&big_spec, &eval).unwrap(),
        &big_result,
        "big client",
    );
    server.shutdown();
}
