//! Byzantine drills: the fabric must survive workers that return **wrong
//! answers**, not just workers that crash or garble frames. Three adversaries,
//! each end to end over real sockets and worker processes:
//!
//! * a **self-consistent liar** — the `NVFI_WORKER_CORRUPT_AFTER` hook flips
//!   predictions *before* the attestation is computed, so the reply passes
//!   both the CRC trailer and the attestation check. Only the audit
//!   re-execution can catch it; arbitration must convict the right replica
//!   and quarantine the worker, with every concurrent client's result still
//!   bit-identical to the in-process run;
//! * a **transport liar** — the chaos `lie` verb mangles a `ShardDone` body
//!   *after* the worker computed its attestation and reseals the CRC, so the
//!   wire layer cannot catch it. The server's attestation recompute must:
//!   a named integrity reject, a requeue, and a clean final result;
//! * a **stutterer** — the chaos `ldup` verb re-emits a completed
//!   `ShardDone` frame later in the stream. The duplicate-completion dedup
//!   must absorb it without a single spurious requeue.

use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{Dataset, SynthCifar, SynthCifarConfig};
use nvfi_dist::chaos::ENV_CHAOS_PLAN;
use nvfi_dist::{worker, CampaignServer, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

fn worker_fleet() -> FleetSpec {
    FleetSpec {
        accept_timeout: Duration::from_secs(120),
        readmission_grace: Duration::from_millis(500),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    }
}

fn setup() -> (QuantModel, Dataset) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data.test)
}

/// Seven work items (baseline + 3 target sets × 2 kinds), one shard each.
fn spec_with_kinds(kinds: Vec<FaultKind>) -> CampaignSpec {
    CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 0)],
            vec![MultId::new(1, 1), MultId::new(2, 2)],
            vec![MultId::new(7, 7)],
        ]),
        kinds,
        eval_images: 10,
        threads: 2,
        ..Default::default()
    }
}

fn assert_identical(
    a: &nvfi::campaign::CampaignResult,
    b: &nvfi::campaign::CampaignResult,
    what: &str,
) {
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy, "{what}: baseline");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.total_inferences, b.total_inferences, "{what}: inferences");
}

/// Env for spawned worker 0 only, everyone else clean.
fn env_on_worker_0(key: &str, value: &str) -> Vec<Vec<(String, String)>> {
    vec![vec![(key.to_string(), value.to_string())]]
}

/// **Self-consistent liar.** Worker 0 serves two shards honestly, then
/// silently corrupts every later one — predictions flipped *before* the
/// attestation, so CRC and attestation both pass. With `audit_rate: 1.0`
/// every landed shard is silently re-run on the other worker; the first
/// mismatch is arbitrated by an authoritative in-process re-execution,
/// the liar is convicted and quarantined, and its unverified shards are
/// swept. Two concurrent clients both finish **bit-identical** to the
/// in-process run — the conviction is fatal only to the worker.
#[test]
fn corrupting_worker_is_convicted_and_quarantined() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec_a = spec_with_kinds(vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)]);
    let spec_b = spec_with_kinds(vec![FaultKind::StuckAtZero, FaultKind::Constant(1)]);
    let in_process_a = Campaign::new(&q, config).run(&spec_a, &eval).unwrap();
    let in_process_b = Campaign::new(&q, config).run(&spec_b, &eval).unwrap();

    let fleet = FleetSpec {
        worker_env: env_on_worker_0(worker::ENV_CORRUPT_AFTER, "2"),
        audit_rate: 1.0,
        ..worker_fleet()
    };
    let server = CampaignServer::start(&fleet, 2).unwrap();
    let handle_a = server.submit(&q, config, &spec_a, &eval).unwrap();
    let handle_b = server.submit(&q, config, &spec_b, &eval).unwrap();
    let dist_a = handle_a.wait().unwrap();
    let dist_b = handle_b.wait().unwrap();

    assert_identical(&in_process_a, &dist_a, "client A beside a liar");
    assert_identical(&in_process_b, &dist_b, "client B beside a liar");

    let stats = server.stats();
    assert!(
        stats.audits_dispatched > 0,
        "full-rate auditing must dispatch audits: {stats:?}"
    );
    assert!(
        stats.audit_mismatches >= 1,
        "the corrupted shard must surface as an audit mismatch: {stats:?}"
    );
    assert!(
        stats.workers_quarantined >= 1,
        "the convicted worker must be quarantined: {stats:?}"
    );
    assert_eq!(
        stats.integrity_rejects, 0,
        "a self-consistent lie passes attestation — only the audit may \
         catch it: {stats:?}"
    );
}

/// **Transport liar.** Worker 0's chaos plan mangles the first byte of the
/// attestation inside its first `ShardDone` *after* the payload was built
/// and reseals the CRC — the wire layer sees a perfectly valid frame. The
/// server's recompute of [`nvfi_dist::wire::shard_attestation`] over the
/// *assigned* session must reject it as a named integrity failure, requeue
/// the shard, and finish bit-identically (the lying frame never merges).
#[test]
fn post_crc_corruption_is_caught_by_attestation() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = spec_with_kinds(vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)]);
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();

    // lie:0:12:0 — worker 0's first ShardDone frame, payload offset
    // 5 + 12 = byte 13 of the payload: the attestation's first byte.
    let fleet = FleetSpec {
        worker_env: env_on_worker_0(ENV_CHAOS_PLAN, "lie:0:12:0"),
        ..worker_fleet()
    };
    let server = CampaignServer::start(&fleet, 2).unwrap();
    let dist = server
        .submit(&q, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(&in_process, &dist, "after a post-CRC mangled reply");

    let stats = server.stats();
    assert!(
        stats.integrity_rejects >= 1,
        "the resealed frame must fail the attestation recompute: {stats:?}"
    );
    assert_eq!(
        stats.workers_quarantined, 0,
        "one integrity strike suspends, it must not quarantine: {stats:?}"
    );
}

/// **Stutterer.** Worker 0's chaos plan captures its first post-handshake
/// frame — its first `ShardDone` — and re-emits it two frames later, while
/// the worker is already on another shard. The duplicate-completion dedup
/// must recognize the already-recorded `(client, shard)` key and drop the
/// replay: exactly one dispatch per task, no spurious requeue, records
/// bit-identical.
#[test]
fn late_duplicate_shard_done_is_deduplicated() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = spec_with_kinds(vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)]);
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();

    // ldup:2:2 — capture outgoing frame 2 (hello and the cache
    // advertisement are frames 0 and 1), replay it after two more frames.
    let fleet = FleetSpec {
        worker_env: env_on_worker_0(ENV_CHAOS_PLAN, "ldup:2:2"),
        ..worker_fleet()
    };
    let server = CampaignServer::start(&fleet, 2).unwrap();
    let dist = server
        .submit(&q, config, &spec, &eval)
        .unwrap()
        .wait()
        .unwrap();
    assert_identical(&in_process, &dist, "after a replayed completion");

    let stats = server.stats();
    // 7 work items, one shard each: a replayed completion absorbed by the
    // dedup costs zero extra dispatches; treating it as garbage would tear
    // the connection and requeue (tasks_dispatched > 7).
    assert_eq!(
        stats.tasks_dispatched, 7,
        "the replayed frame must be absorbed, not requeued: {stats:?}"
    );
    assert_eq!(stats.integrity_rejects, 0, "{stats:?}");
}
