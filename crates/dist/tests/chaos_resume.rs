//! Chaos hardening of the campaign fabric, end to end over real sockets and
//! worker processes: every injectable failure class — a corrupted frame, a
//! connection dropped mid-frame, a stalled shard, a worker crash with
//! reconnection and mid-campaign re-admission, a killed-and-restarted
//! coordinator — must leave the campaign records **bit-identical** to the
//! in-process [`Campaign::run`], or fail with a named error. Never a hang,
//! never a panic, never a silently wrong merge.
//!
//! Chaos is injected deterministically: worker processes get a
//! `NVFI_CHAOS_PLAN` (or `NVFI_CHAOS_SEED`) through `FleetSpec::worker_env`,
//! which arms the worker-side `ChaosStream` for its first session only —
//! the reconnected session runs clean, exactly like a real transient fault.

use std::path::PathBuf;
use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{Dataset, SynthCifar, SynthCifarConfig};
use nvfi_dist::chaos::{ENV_CHAOS_PLAN, ENV_CHAOS_SEED};
use nvfi_dist::{run_campaign, worker, Checkpoint, DistError, FleetSpec, OnFleetLost};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// The `nvfi_worker` binary built alongside these tests, with a short
/// re-admission grace so fleet-lost tests do not wait out the 5 s default.
fn worker_fleet() -> FleetSpec {
    FleetSpec {
        accept_timeout: Duration::from_secs(120),
        readmission_grace: Duration::from_millis(500),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    }
}

fn setup() -> (QuantModel, Dataset) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data.test)
}

/// Seven work items (baseline + 3 target sets × 2 kinds), one shard each.
fn base_spec() -> CampaignSpec {
    CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 0)],
            vec![MultId::new(1, 1), MultId::new(2, 2)],
            vec![MultId::new(7, 7)],
        ]),
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(-1)],
        eval_images: 10,
        threads: 2,
        ..Default::default()
    }
}

fn assert_identical(
    a: &nvfi::campaign::CampaignResult,
    b: &nvfi::campaign::CampaignResult,
    what: &str,
) {
    assert_eq!(a.baseline_accuracy, b.baseline_accuracy, "{what}: baseline");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.total_inferences, b.total_inferences, "{what}: inferences");
}

/// Env for spawned worker 0 only: one chaos plan, everyone else clean.
fn chaos_on_worker_0(plan: &str) -> Vec<Vec<(String, String)>> {
    vec![vec![(ENV_CHAOS_PLAN.to_string(), plan.to_string())]]
}

/// **Corrupt frame.** Worker 0 flips one bit of its third outgoing frame —
/// its first post-handshake frame (frames 0 and 1 are the hello and the v3
/// cache advertisement), i.e. its first shard reply or heartbeat. The
/// coordinator must diagnose the CRC failure, drop the connection, requeue
/// the shard — and the worker, seeing its session die, reconnects and is
/// re-admitted. Records stay bit-identical.
#[test]
fn corrupt_frame_is_requeued_and_worker_readmitted() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: chaos_on_worker_0("flip:2:9:3"),
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "after corrupt frame");
}

/// **Connection drop mid-frame.** Worker 0's link dies five bytes into its
/// first post-handshake outgoing frame — the coordinator sees a torn frame
/// and EOF, the worker sees a broken pipe, backs off, reconnects, and is
/// re-admitted mid-campaign. Records stay bit-identical.
#[test]
fn connection_drop_mid_frame_reconnects_and_readmits() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: chaos_on_worker_0("drop:2:5"),
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "after mid-frame drop");
}

/// **Stalled shard.** Worker 0 goes silent for 4 s before its first reply;
/// with a 2 s `task_timeout` the coordinator must declare the shard lost
/// and requeue it (a *heartbeating* worker would never trip this — silence
/// is what times out). Records stay bit-identical.
#[test]
fn stalled_shard_is_timed_out_and_requeued() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: chaos_on_worker_0("stall:2:4000"),
        task_timeout: Some(Duration::from_secs(2)),
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "after stalled shard");
}

/// **Seeded chaos.** `NVFI_CHAOS_SEED` derives the survivable-classes plan
/// (one bit flip, one sub-second stall, one mid-frame drop) the CI smoke
/// also uses; the campaign must absorb all three and stay bit-identical.
#[test]
fn seeded_chaos_plan_campaign_is_bit_identical() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: vec![vec![(ENV_CHAOS_SEED.to_string(), "7".to_string())]],
        task_timeout: Some(Duration::from_secs(10)),
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "under seeded chaos");
}

/// **Coordinator kill + resume.** Run 1 checkpoints three completed shards,
/// then loses its only worker (deliberate death) and fails with
/// `FleetLost`, leaving the checkpoint on disk — exactly the state a killed
/// coordinator leaves behind. Run 2, same spec and path, must resume:
/// re-ship artifacts to a fresh fleet and redo **only** the four unfinished
/// shards. The proof is in the worker budget: run 2's worker dies on its
/// *fifth* `Work` frame, so if the coordinator re-dispatched even one
/// already-checkpointed shard the fleet would be lost again. Records must
/// be bit-identical to an uninterrupted run and the checkpoint deleted on
/// completion.
#[test]
fn coordinator_kill_and_resume_redoes_only_unfinished_shards() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let dir = std::env::temp_dir().join(format!("nvfi-chaos-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt: PathBuf = dir.join("campaign.ckpt");
    let spec = CampaignSpec {
        workers: 1,
        checkpoint_path: Some(ckpt.clone()),
        ..base_spec()
    };
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();

    // Run 1: the sole worker completes 3 of the 7 shards, then dies.
    let fleet = FleetSpec {
        worker_env: vec![vec![(worker::ENV_EXIT_AFTER.to_string(), "3".to_string())]],
        ..worker_fleet()
    };
    match run_campaign(&q, config, &spec, &eval, &fleet) {
        Err(DistError::FleetLost { incomplete }) => assert_eq!(incomplete, 4),
        other => panic!("expected FleetLost, got {other:?}"),
    }
    let left_behind = Checkpoint::load(&ckpt).expect("interrupted run leaves a checkpoint");
    assert_eq!(left_behind.entries.len(), 3, "three shards were persisted");

    // Run 2: a fresh worker with budget for exactly the 4 unfinished shards.
    let fleet = FleetSpec {
        worker_env: vec![vec![(worker::ENV_EXIT_AFTER.to_string(), "4".to_string())]],
        ..worker_fleet()
    };
    let resumed = run_campaign(&q, config, &spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &resumed, "resumed campaign");
    assert!(
        Checkpoint::load(&ckpt).is_none(),
        "a completed campaign must remove its checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// **Graceful degradation.** With `OnFleetLost::Degrade`, losing every
/// worker must not fail the campaign: the coordinator falls back to the
/// in-process path and the records are bit-identical.
#[test]
fn fleet_lost_degrades_to_in_process_when_asked() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = CampaignSpec {
        workers: 1,
        ..base_spec()
    };
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: vec![vec![(worker::ENV_EXIT_AFTER.to_string(), "0".to_string())]],
        on_fleet_lost: OnFleetLost::Degrade,
        ..worker_fleet()
    };
    let degraded = run_campaign(&q, config, &spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &degraded, "degraded campaign");
}

/// **Versioned rejection.** With the re-admission cap at zero, worker 0's
/// chaos-dropped session may not rejoin: its reconnect must be answered
/// with a `Goodbye` (never TCP limbo), and the campaign must still complete
/// bit-identically on the surviving worker via requeue.
#[test]
fn reconnect_beyond_cap_is_turned_away_and_campaign_completes() {
    let (q, eval) = setup();
    let config = PlatformConfig::default();
    let spec = base_spec();
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    let fleet = FleetSpec {
        worker_env: chaos_on_worker_0("drop:2:5"),
        max_readmissions: 0,
        ..worker_fleet()
    };
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &fleet).unwrap();
    assert_identical(&in_process, &dist, "with re-admission capped at 0");
}
