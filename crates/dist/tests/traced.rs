//! The flight recorder must be a pure observer: a distributed campaign
//! traced end to end (coordinator phase spans, worker span summaries
//! shipped over the wire, audit events) produces **bit-identical** records
//! to the untraced in-process run, and the recorded timeline actually
//! contains the span taxonomy the dist README documents.
//!
//! Also covers the wire-level stats poll: `query_stats` against a live
//! server returns well-formed Prometheus text including the server's own
//! counters and the registry metrics.
//!
//! The recorder ring and enable bit are process-global, so this file holds
//! a single test (mirroring `dist_once.rs`).

use std::collections::BTreeSet;
use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_dist::{query_stats, CampaignServer, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_obs::trace;
use nvfi_quant::{quantize, QuantConfig};

#[test]
fn traced_distributed_campaign_is_bit_identical_and_timeline_is_complete() {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let q = quantize(
        &fold_resnet(&net, 32),
        &data.train.images,
        &QuantConfig::default(),
    )
    .unwrap();
    let config = PlatformConfig::default();
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 2,
            trials: 4,
            seed: 11,
        },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(1)],
        eval_images: 10,
        threads: 2,
        workers: 2,
        ..Default::default()
    };
    let fleet = FleetSpec {
        accept_timeout: Duration::from_secs(120),
        audit_rate: 0.5,
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    };

    // Untraced baseline first: the recorder must not perturb results.
    let untraced = Campaign::new(&q, config).run(&spec, &data.test).unwrap();

    trace::set_enabled(true);
    trace::clear();
    let server = CampaignServer::start(&fleet, spec.workers).unwrap();
    let traced = server
        .submit(&q, config, &spec, &data.test)
        .unwrap()
        .wait()
        .unwrap();

    assert_eq!(untraced.records, traced.records, "tracing changed results");
    assert_eq!(untraced.baseline_accuracy, traced.baseline_accuracy);
    assert_eq!(untraced.total_inferences, traced.total_inferences);

    // The wire stats poll, against the still-live server.
    let stats = query_stats(server.addr()).expect("stats query");
    for needle in [
        "nvfi_server_campaigns_submitted 1",
        "nvfi_server_tasks_dispatched",
        "nvfi_quantization_passes",
        "nvfi_wire_plan_serializations",
    ] {
        assert!(stats.contains(needle), "stats missing `{needle}`:\n{stats}");
    }

    server.shutdown();
    let events = trace::snapshot();
    trace::set_enabled(false);

    let names: BTreeSet<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    for required in [
        "server.dispatch",
        "shard.queue_wait",
        "shard.ship",
        "shard.execute",
        "shard.merge",
        "worker.execute",
        "audit.dispatch",
    ] {
        assert!(
            names.contains(required),
            "no `{required}` span in {names:?}"
        );
    }
    // Worker span summaries shipped over the wire land on one lane per
    // worker; two workers ran real shards, so two lanes must appear.
    let lanes: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "worker.execute")
        .map(|e| e.tid)
        .collect();
    assert!(
        lanes.len() >= 2,
        "expected worker.execute spans from >=2 worker lanes, got {lanes:?}"
    );
    trace::clear();
}
