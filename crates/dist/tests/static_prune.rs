//! Dead-fault pruning through the distributed coordinator.
//!
//! The contract: work items the static fault-reachability analysis proves
//! masked are never scheduled on the fleet — a campaign of *only* masked
//! items completes without even spawning workers — and everything reachable
//! stays bit-identical to the in-process run, with `masked_static` counted
//! the same on both paths.

use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{Dataset, SynthCifar, SynthCifarConfig};
use nvfi_dist::{run_campaign, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};

/// The `nvfi_worker` binary built alongside these tests.
fn worker_fleet() -> FleetSpec {
    FleetSpec {
        accept_timeout: Duration::from_secs(120),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    }
}

/// A single-stage width-2 net: channel counts are 3 (stem input) and 2
/// everywhere else, so multiplier lanes `j >= 3` are idle in every MAC op
/// and a stuck-at-zero fault on them is provably masked.
fn narrow_setup() -> (QuantModel, Dataset) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(2, &[1], 10, 3);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data.test)
}

/// Every fault item provably masked: the campaign must complete without
/// touching the fleet at all. The fleet spec points at a binary that does
/// not exist, so any spawn attempt would fail the run — success *is* the
/// proof that no worker was raised.
#[test]
fn all_masked_campaign_never_touches_the_fleet() {
    let (q, eval) = narrow_setup();
    let config = PlatformConfig::default();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 5)], // idle lane, stuck-at-zero: masked
            vec![],                  // no lanes selected: masked
        ]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 6,
        workers: 2,
        ..Default::default()
    };
    let unspawnable = FleetSpec::exe("/nonexistent/nvfi-worker-that-must-not-run");
    let result = run_campaign(&q, config, &spec, &eval, &unspawnable).unwrap();
    assert_eq!(result.masked_static, 2, "both items statically masked");
    assert_eq!(result.records.len(), 2);
    for r in &result.records {
        assert_eq!(r.outcomes.sdc, 0, "masked items are fully masked");
        assert_eq!(r.drop_pct, 0.0);
    }
    // Only the baseline pass ran.
    assert_eq!(result.total_inferences, 6);
}

/// Mixed reachable/masked work over a real two-worker fleet: only the
/// reachable item is scheduled, and the merged result — records, baseline,
/// inference count, `masked_static` — is bit-identical to in-process.
#[test]
fn partially_masked_campaign_matches_in_process() {
    let (q, eval) = narrow_setup();
    let config = PlatformConfig::default();
    let spec = CampaignSpec {
        selection: TargetSelection::Fixed(vec![
            vec![MultId::new(0, 0)], // live lane: must execute on the fleet
            vec![MultId::new(0, 5)], // idle lane: pruned
        ]),
        kinds: vec![FaultKind::StuckAtZero],
        eval_images: 10,
        threads: 2,
        ..Default::default()
    };
    let in_process = Campaign::new(&q, config).run(&spec, &eval).unwrap();
    assert_eq!(in_process.masked_static, 1);
    let dist_spec = CampaignSpec { workers: 2, ..spec };
    let dist = run_campaign(&q, config, &dist_spec, &eval, &worker_fleet()).unwrap();
    assert_eq!(dist.masked_static, in_process.masked_static, "masked count");
    assert_eq!(dist.baseline_accuracy, in_process.baseline_accuracy);
    assert_eq!(dist.records, in_process.records, "records bit-identical");
    assert_eq!(dist.total_inferences, in_process.total_inferences);
}

/// A no-op fault kind is rejected before any worker is spawned, on the
/// distributed path too.
#[test]
fn no_op_kind_is_rejected_before_spawning() {
    let (q, eval) = narrow_setup();
    let spec = CampaignSpec {
        kinds: vec![FaultKind::FlipBits { mask: 0 }],
        eval_images: 2,
        workers: 2,
        ..Default::default()
    };
    let unspawnable = FleetSpec::exe("/nonexistent/nvfi-worker-that-must-not-run");
    let err = run_campaign(&q, PlatformConfig::default(), &spec, &eval, &unspawnable)
        .expect_err("no-op kind must be rejected");
    assert!(
        err.to_string().contains("no-op"),
        "error names the rejection: {err}"
    );
}
