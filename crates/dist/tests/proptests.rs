//! Property tests of the `nvfi-dist` wire format: every message type
//! round-trips bit-exactly through encode/decode, no truncation of any
//! encoded message can panic the decoder, and no [`ChaosStream`] corruption
//! plan — bit flips, truncation, duplication, mid-frame drops, in any
//! combination — can panic the frame reader.

use nvfi_accel::FaultKind;
use nvfi_dist::chaos::{ChaosAction, ChaosPlan, ChaosStream};
use nvfi_dist::wire::{self, Msg, WireConfig, WireFault, WireSpan};
use nvfi_dist::WireError;
use proptest::prelude::*;

/// Encode → decode must reproduce the message exactly.
fn roundtrip(msg: &Msg) {
    let encoded = msg.encode();
    let decoded = Msg::decode(encoded).expect("well-formed message decodes");
    assert_eq!(&decoded, msg);
}

/// Every strict prefix of an encoded message must decode to an error — the
/// decoder's job on a truncated frame is to reject, never to panic or to
/// fabricate a message.
fn truncations_rejected(msg: &Msg) {
    let encoded = msg.encode();
    // Sample cuts densely for small payloads, sparsely for big ones.
    let step = (encoded.len() / 64).max(1);
    for cut in (0..encoded.len()).step_by(step) {
        let r = Msg::decode(encoded[..cut].to_vec());
        assert!(
            r.is_err(),
            "prefix of {cut}/{} bytes decoded to {r:?}",
            encoded.len()
        );
    }
}

fn exercise(msg: &Msg) {
    roundtrip(msg);
    truncations_rejected(msg);
}

fn mode_of(tag: u8) -> nvfi_accel::ExecMode {
    match tag % 3 {
        0 => nvfi_accel::ExecMode::Exact,
        1 => nvfi_accel::ExecMode::Fast,
        _ => nvfi_accel::ExecMode::Auto,
    }
}

fn kind_of(tag: u8, a: u32, b: u32) -> FaultKind {
    match tag % 4 {
        0 => FaultKind::StuckAtZero,
        1 => FaultKind::Constant(a as i32),
        2 => FaultKind::StuckBits { fsel: a, fdata: b },
        _ => FaultKind::FlipBits { mask: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hello_roundtrips(version in 0u32..u32::MAX) {
        exercise(&Msg::Hello { version });
    }

    #[test]
    fn plan_roundtrips(
        mode in 0u8..3,
        idle in 0u8..2,
        clock in 1.0f64..1e10,
        dram in 1u64..(1 << 40),
        batch in 1u64..256,
        shard in 0u64..256,
        devices in 1u32..64,
        words in collection::vec(any::<u32>(), 0..256usize),
    ) {
        exercise(&Msg::Plan {
            config: WireConfig {
                mode: mode_of(mode),
                idle_lanes: if idle == 0 {
                    nvfi_accel::IdleLanePolicy::ZeroFed
                } else {
                    nvfi_accel::IdleLanePolicy::Gated
                },
                clock_hz: clock,
                dram_capacity: dram,
                batch,
                shard_images: shard,
            },
            local_devices: devices,
            words,
        });
    }

    #[test]
    fn weights_roundtrip(
        addrs in collection::vec(0u64..(1 << 32), 0..8usize),
        payload in collection::vec(-128i32..128, 0..512usize),
    ) {
        // Regions of varying sizes carved from one payload pool.
        let bytes: Vec<i8> = payload.iter().map(|&v| v as i8).collect();
        let regions: Vec<(u64, Vec<i8>)> = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                let take = (bytes.len() / (i + 1)).min(bytes.len());
                (addr, bytes[..take].to_vec())
            })
            .collect();
        exercise(&Msg::Weights { regions });
    }

    #[test]
    fn eval_set_roundtrips(
        n in 0usize..5,
        c in 1usize..4,
        hw in 1usize..9,
        seed in any::<u32>(),
    ) {
        let data: Vec<i8> = (0..n * c * hw * hw)
            .map(|i| ((i as u32).wrapping_mul(seed) % 251) as i8)
            .collect();
        exercise(&Msg::EvalSet {
            n: n as u32,
            c: c as u32,
            h: hw as u32,
            w: hw as u32,
            data,
        });
    }

    #[test]
    fn work_roundtrips(
        work_id in 0u32..10_000,
        start in 0u32..10_000,
        len in 0u32..10_000,
        has_fault in 0u8..2,
        lanes in collection::vec(0u8..64, 0..64usize),
        kind_tag in any::<u8>(),
        ka in any::<u32>(),
        kb in any::<u32>(),
        has_window in 0u8..2,
        wstart in 0u64..(1 << 40),
        wlen in 0u64..(1 << 20),
    ) {
        exercise(&Msg::Work {
            work_id,
            start,
            end: start + len,
            fault: (has_fault == 1).then(|| WireFault {
                lanes,
                kind: kind_of(kind_tag, ka, kb),
            }),
            window: (has_window == 1).then(|| wstart..wstart + wlen),
        });
    }

    #[test]
    fn shard_done_roundtrips(
        work_id in any::<u32>(),
        start in 0u32..100_000,
        attest in any::<u64>(),
        preds in collection::vec(0u32..256, 0..512usize),
        spans in collection::vec(
            (0usize..4, 0u64..(1 << 40), 0u64..(1 << 30)),
            0..8usize,
        ),
    ) {
        let preds: Vec<u8> = preds.iter().map(|&p| p as u8).collect();
        let names = ["worker.wave", "worker.execute", "a", ""];
        let spans: Vec<WireSpan> = spans
            .iter()
            .map(|&(n, start_us, dur_us)| WireSpan {
                name: names[n].to_string(),
                start_us,
                dur_us,
            })
            .collect();
        exercise(&Msg::ShardDone {
            work_id,
            start,
            end: start + preds.len() as u32,
            attest,
            preds,
            spans,
        });
    }

    /// The stats poll pair (`StatsQuery` → `Stats`) round-trips for any
    /// Prometheus text payload, empty included.
    #[test]
    fn stats_query_and_reply_roundtrip(len in 0usize..300, seed in any::<u32>()) {
        exercise(&Msg::StatsQuery);
        let text: String = (0..len)
            .map(|i| char::from(b' ' + (((i as u32).wrapping_mul(seed)) % 94) as u8))
            .collect();
        exercise(&Msg::Stats { text });
    }

    #[test]
    fn worker_err_and_shutdown_roundtrip(len in 0usize..200, seed in any::<u32>()) {
        let message: String = (0..len)
            .map(|i| char::from(b'a' + (((i as u32).wrapping_mul(seed)) % 26) as u8))
            .collect();
        exercise(&Msg::WorkerErr { message });
        exercise(&Msg::Shutdown);
    }

    /// Bit flips in a frame must decode to an error or to a *different but
    /// well-formed* message — never panic.
    #[test]
    fn corrupted_frames_never_panic(
        byte in 0usize..64,
        bit in 0u8..8,
        lanes in collection::vec(0u8..64, 1..8usize),
    ) {
        let msg = Msg::Work {
            work_id: 1,
            start: 0,
            end: 4,
            fault: Some(WireFault { lanes, kind: FaultKind::StuckAtZero }),
            window: Some(5..1000),
        };
        let mut encoded = msg.encode();
        let idx = byte % encoded.len();
        encoded[idx] ^= 1 << bit;
        let _ = Msg::decode(encoded); // must return, not panic
    }

    #[test]
    fn heartbeats_and_goodbye_roundtrip_propwise(len in 0usize..120, seed in any::<u32>()) {
        exercise(&Msg::Ping);
        exercise(&Msg::Pong);
        let reason: String = (0..len)
            .map(|i| char::from(b'a' + (((i as u32).wrapping_mul(seed)) % 26) as u8))
            .collect();
        exercise(&Msg::Goodbye { reason });
    }

    /// The session-cache advertisement: any nonzero worker identity with
    /// any list of content hashes (zeros included — the decoder does not
    /// police advertisement values) round-trips, and truncation never
    /// panics. A zero identity is invalid on its face and rejected.
    #[test]
    fn have_artifacts_roundtrips(
        ident in 1u64..u64::MAX,
        hashes in collection::vec(any::<u64>(), 0..64usize),
    ) {
        exercise(&Msg::HaveArtifacts { ident, hashes: hashes.clone() });
        assert_eq!(
            Msg::decode(Msg::HaveArtifacts { ident: 0, hashes }.encode()),
            Err(WireError::Invalid("zero worker ident")),
        );
    }

    /// The v3 session switch: nonzero plan/weights/eval hashes, an optional
    /// golden hash, and any subset of the four ship bits (bit 3 only with a
    /// golden hash) round-trip; truncation never panics.
    #[test]
    fn artifact_delta_roundtrips(
        plan in 1u64..u64::MAX,
        weights in 1u64..u64::MAX,
        eval in 1u64..u64::MAX,
        golden in any::<u64>(),
        ship_bits in 0u8..16,
    ) {
        let ship = if golden == 0 { ship_bits & 0x07 } else { ship_bits };
        exercise(&Msg::ArtifactDelta { plan, weights, eval, golden, ship });
    }

    /// A well-formed golden activation cache (nonzero boundary, at least one
    /// surface, data sized exactly `stride × cached_images`) round-trips;
    /// truncation never panics.
    #[test]
    fn golden_roundtrips(
        boundary in 1u64..1_000,
        surfaces in collection::vec((0u64..(1 << 32), 1u64..64), 1..6usize),
        cached_images in 1u64..5,
        seed in any::<u32>(),
    ) {
        let stride: u64 = surfaces.iter().map(|&(_, bytes)| bytes).sum();
        let data: Vec<i8> = (0..stride * cached_images)
            .map(|i| ((i as u32).wrapping_mul(seed) % 251) as i8)
            .collect();
        exercise(&Msg::Golden { boundary, surfaces, data, cached_images });
    }

    /// Whatever corruption plan a [`ChaosStream`] applies to a frame
    /// sequence — bit flips, truncation, duplication, mid-frame connection
    /// drops, in any combination and order — the frame reader must only
    /// ever return `Ok(msg)` or a named error. Never a panic, never an
    /// unbounded allocation.
    #[test]
    fn chaos_mangled_streams_never_panic_the_reader(
        raw_actions in collection::vec(
            (0u8..6, 0u64..8, 0u64..96, 0u8..8),
            0..6usize,
        ),
        preds in collection::vec(0u32..256, 0..64usize),
    ) {
        let actions = raw_actions
            .iter()
            .map(|&(tag, frame, arg, bit)| match tag {
                0 => ChaosAction::FlipBit { frame, offset: arg, bit },
                1 => ChaosAction::Truncate { frame, keep: arg },
                2 => ChaosAction::Duplicate { frame },
                3 => ChaosAction::DropMidFrame { frame, keep: arg },
                4 => ChaosAction::ReplayFrame { frame, delay: bit as u64 },
                _ => ChaosAction::LieShardDone { nth: frame, offset: arg, bit: bit % 8 },
            })
            .collect();
        let msgs = vec![
            Msg::Hello { version: wire::WIRE_VERSION },
            Msg::Work {
                work_id: 3,
                start: 0,
                end: preds.len() as u32,
                fault: Some(WireFault { lanes: vec![0, 17], kind: FaultKind::StuckAtZero }),
                window: Some(10..200),
            },
            Msg::ShardDone {
                work_id: 3,
                start: 0,
                end: preds.len() as u32,
                attest: 0xDEAD_BEEF_F00D_CAFE,
                preds: preds.iter().map(|&p| p as u8).collect(),
                spans: vec![WireSpan {
                    name: "worker.execute".to_string(),
                    start_us: 0,
                    dur_us: 1234,
                }],
            },
            Msg::Ping,
            Msg::Shutdown,
        ];
        let mut mangler = ChaosStream::new(Vec::<u8>::new(), ChaosPlan { actions });
        for msg in &msgs {
            // A DropMidFrame plan makes later sends fail; that is the point.
            let _ = wire::send(&mut mangler, msg);
        }
        let bytes = mangler.get_ref().clone();
        let mut reader: &[u8] = &bytes;
        // Duplication at most doubles the frame count; past that the stream
        // is exhausted and recv must keep erroring, not spin.
        for _ in 0..2 * msgs.len() + 1 {
            if wire::recv(&mut reader).is_err() {
                break; // must return (Ok or Err) — never panic
            }
        }
    }
}

/// A fault targeting a lane outside the 64-multiplier array is invalid on
/// its face and must be rejected at decode time.
#[test]
fn out_of_range_lane_rejected() {
    let msg = Msg::Work {
        work_id: 0,
        start: 0,
        end: 1,
        fault: Some(WireFault {
            lanes: vec![64],
            kind: FaultKind::StuckAtZero,
        }),
        window: None,
    };
    assert_eq!(
        Msg::decode(msg.encode()),
        Err(WireError::Invalid("target lane out of range"))
    );
}
