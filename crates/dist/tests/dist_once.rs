//! The serialize-once guarantee of a distributed campaign session.
//!
//! One campaign = exactly **one** encode of the compiled plan, one of the
//! DRAM weight image and one of the quantized evaluation set — however many
//! workers the frames are replayed to and however many work items follow
//! (probes: `nvfi_dist::wire::{plan,weight,eval}_serializations`). This
//! file holds a single test so the process-wide counters are never raced by
//! a sibling test, mirroring `tests/quantize_once.rs` /
//! `tests/golden_once.rs`.

use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_dist::{run_campaign, wire, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig};

#[test]
fn plan_weights_and_eval_set_serialize_once_per_campaign() {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let q = quantize(
        &fold_resnet(&net, 32),
        &data.train.images,
        &QuantConfig::default(),
    )
    .unwrap();
    let config = PlatformConfig::default();
    // 8 work items across 2 workers: plenty of work frames per session.
    let spec = CampaignSpec {
        selection: TargetSelection::RandomSubsets {
            k: 2,
            trials: 4,
            seed: 11,
        },
        kinds: vec![FaultKind::StuckAtZero, FaultKind::Constant(1)],
        eval_images: 10,
        threads: 2,
        workers: 2,
        ..Default::default()
    };
    let fleet = FleetSpec {
        accept_timeout: Duration::from_secs(120),
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    };

    let plan0 = wire::plan_serializations();
    let weights0 = wire::weight_serializations();
    let eval0 = wire::eval_serializations();
    let dist = run_campaign(&q, config, &spec, &data.test, &fleet).unwrap();
    assert_eq!(
        wire::plan_serializations() - plan0,
        1,
        "one campaign must encode the plan exactly once, however many \
         workers replay the bytes"
    );
    assert_eq!(
        wire::weight_serializations() - weights0,
        1,
        "the DRAM weight image must be encoded exactly once per campaign"
    );
    assert_eq!(
        wire::eval_serializations() - eval0,
        1,
        "the evaluation set must be encoded exactly once per campaign"
    );

    // And the records of the probed run are still the in-process records.
    let in_process = Campaign::new(&q, config).run(&spec, &data.test).unwrap();
    assert_eq!(in_process.records, dist.records);
    assert_eq!(in_process.baseline_accuracy, dist.baseline_accuracy);
    assert_eq!(in_process.total_inferences, dist.total_inferences);
}
