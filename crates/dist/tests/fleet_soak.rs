//! Fleet soak: one **persistent** worker fleet multiplexing several
//! concurrent client campaigns — with a worker killed mid-soak.
//!
//! One `CampaignServer` over two `nvfi_worker` processes serves three
//! concurrently submitted campaigns (different fault configurations, so
//! none is a result-cache hit). Worker 0 is told (via the
//! `NVFI_WORKER_EXIT_AFTER` test hook) to die after its second shard —
//! mid-soak, while multiple clients are in flight. The server must requeue
//! only the dead worker's shard onto the survivor, and **every** client's
//! merged result must stay bit-identical to its own in-process
//! [`Campaign::run`]. This is the CI smoke for the multiplexing server:
//! one fleet, many clients, a chaos kill, zero divergence.

use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
use nvfi::PlatformConfig;
use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_dist::{worker, CampaignServer, FleetSpec};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig};

#[test]
fn persistent_fleet_soaks_three_concurrent_clients_through_a_worker_kill() {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 12,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(4, &[1, 1], 10, 3);
    let q = quantize(
        &fold_resnet(&net, 32),
        &data.train.images,
        &QuantConfig::default(),
    )
    .unwrap();
    let eval = data.test;
    let config = PlatformConfig::default();

    // Three distinct campaigns: different fault programs, so each has its
    // own result key and genuinely runs on the fleet.
    let specs: Vec<CampaignSpec> = vec![
        CampaignSpec {
            selection: TargetSelection::Fixed(vec![
                vec![MultId::new(0, 0)],
                vec![MultId::new(1, 1), MultId::new(2, 2)],
            ]),
            kinds: vec![FaultKind::StuckAtZero],
            eval_images: 8,
            threads: 2,
            ..Default::default()
        },
        CampaignSpec {
            selection: TargetSelection::Fixed(vec![
                vec![MultId::new(3, 4)],
                vec![MultId::new(7, 7)],
            ]),
            kinds: vec![FaultKind::Constant(-1)],
            eval_images: 8,
            threads: 2,
            ..Default::default()
        },
        CampaignSpec {
            selection: TargetSelection::Fixed(vec![vec![MultId::new(5, 6)]]),
            kinds: vec![FaultKind::FlipBits { mask: 1 }],
            eval_images: 8,
            threads: 2,
            ..Default::default()
        },
    ];

    // Worker 0 dies after two shards — mid-soak; worker 1 soaks on.
    let fleet = FleetSpec {
        accept_timeout: Duration::from_secs(120),
        worker_env: vec![vec![(worker::ENV_EXIT_AFTER.to_string(), "2".to_string())]],
        ..FleetSpec::exe(env!("CARGO_BIN_EXE_nvfi_worker"))
    };
    let server = CampaignServer::start(&fleet, 2).unwrap();

    // Submit all three before waiting on any: the fleet multiplexes them
    // concurrently, fair-share interleaved.
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| server.submit(&q, config, spec, &eval).unwrap())
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();

    for (i, (spec, dist)) in specs.iter().zip(&results).enumerate() {
        let in_process = Campaign::new(&q, config).run(spec, &eval).unwrap();
        assert_eq!(
            in_process.baseline_accuracy, dist.baseline_accuracy,
            "client {i}: baseline"
        );
        assert_eq!(in_process.records, dist.records, "client {i}: records");
        assert_eq!(
            in_process.total_inferences, dist.total_inferences,
            "client {i}: inferences"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.campaigns_submitted, 3);
    assert_eq!(
        stats.cache_hits, 0,
        "three distinct campaigns, no cache hit"
    );
    server.shutdown();
}
