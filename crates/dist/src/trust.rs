//! Per-worker reputation: the quarantine state machine.
//!
//! Every worker process announces a stable identity (see
//! [`crate::worker::worker_ident`]) in its `HaveArtifacts` greeting, and the
//! campaign server keeps one [`Trust`] record per identity — *not* per
//! connection — so a worker that reconnects after a crash or a drain inherits
//! its own history.
//!
//! The machine is deliberately small and one-directional under suspicion:
//!
//! ```text
//!            strike              strike / convict
//! Healthy ──────────▶ Suspect ──────────────────▶ Quarantined
//!    ▲                   │                             │
//!    │   audit passed    │                             │ readmit
//!    ├───────────────────┘                             ▼
//!    │              3 clean audits               Probation { clean }
//!    └───────────────────────────────────────────────┘
//! ```
//!
//! * A **strike** is recorded when a reply fails attestation
//!   ([`crate::codec::WireError::Integrity`]). One strike makes a worker
//!   `Suspect` (every subsequent shard is audited); a second convicts it.
//! * A **conviction** — an audit arbitration proving the worker returned a
//!   wrong answer — quarantines it immediately from any state.
//! * A quarantined worker is drained (told `Goodbye`) and its unfinished
//!   completed shards are re-verified. If the fleet's re-admission budget
//!   allows it back, it re-enters on **probation**: 100 % of its shards are
//!   audited until [`PROBATION_CLEAN`] consecutive audits pass, after which
//!   it is trusted again.
//!
//! Transitions never panic and never affect clients: conviction costs the
//! *worker* its seat, while the shards it touched are silently repaired.

/// Consecutive clean audits a probationary worker needs to regain trust.
pub const PROBATION_CLEAN: u32 = 3;

/// Reputation state of one worker identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Trust {
    /// No evidence of misbehaviour; audited at the fleet's sampling rate.
    #[default]
    Healthy,
    /// One integrity strike on record; every shard is audited until an audit
    /// passes (clearing the strike) or a second strike convicts.
    Suspect,
    /// Convicted or struck out. Drained from the fleet and refused work.
    Quarantined,
    /// Re-admitted after quarantine; every shard is audited until `clean`
    /// reaches [`PROBATION_CLEAN`].
    Probation {
        /// Consecutive clean audits since re-admission.
        clean: u32,
    },
}

impl Trust {
    /// Record an integrity strike (attestation mismatch on a reply).
    ///
    /// `Healthy` becomes `Suspect`; a `Suspect` or probationary worker is
    /// struck out to `Quarantined`. Striking a quarantined worker is a no-op.
    pub fn strike(&mut self) {
        *self = match *self {
            Trust::Healthy => Trust::Suspect,
            Trust::Suspect | Trust::Quarantined | Trust::Probation { .. } => Trust::Quarantined,
        };
    }

    /// Record a conviction: audit arbitration proved a wrong answer.
    /// Quarantines from any state.
    pub fn convict(&mut self) {
        *self = Trust::Quarantined;
    }

    /// Re-admit a quarantined worker on probation. States other than
    /// `Quarantined` are unchanged (a healthy reconnect is not a probation).
    pub fn readmit(&mut self) {
        if *self == Trust::Quarantined {
            *self = Trust::Probation { clean: 0 };
        }
    }

    /// Record a passed audit. Clears a `Suspect` strike; credits probation,
    /// restoring trust after [`PROBATION_CLEAN`] consecutive clean audits.
    pub fn audit_passed(&mut self) {
        *self = match *self {
            Trust::Healthy | Trust::Suspect => Trust::Healthy,
            Trust::Quarantined => Trust::Quarantined,
            Trust::Probation { clean } => {
                if clean + 1 >= PROBATION_CLEAN {
                    Trust::Healthy
                } else {
                    Trust::Probation { clean: clean + 1 }
                }
            }
        };
    }

    /// Whether every shard this worker completes must be audited regardless
    /// of the fleet's sampling rate.
    #[must_use]
    pub fn audits_all(self) -> bool {
        matches!(self, Trust::Suspect | Trust::Probation { .. })
    }

    /// Whether the worker is barred from receiving work.
    #[must_use]
    pub fn is_quarantined(self) -> bool {
        self == Trust::Quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy_and_sampled() {
        let t = Trust::default();
        assert_eq!(t, Trust::Healthy);
        assert!(!t.audits_all());
        assert!(!t.is_quarantined());
    }

    #[test]
    fn first_strike_suspends_second_convicts() {
        let mut t = Trust::Healthy;
        t.strike();
        assert_eq!(t, Trust::Suspect);
        assert!(t.audits_all());
        assert!(!t.is_quarantined());
        t.strike();
        assert_eq!(t, Trust::Quarantined);
        assert!(t.is_quarantined());
    }

    #[test]
    fn conviction_quarantines_from_any_state() {
        for start in [
            Trust::Healthy,
            Trust::Suspect,
            Trust::Quarantined,
            Trust::Probation { clean: 2 },
        ] {
            let mut t = start;
            t.convict();
            assert_eq!(t, Trust::Quarantined, "convict from {start:?}");
        }
    }

    #[test]
    fn clean_audit_clears_a_suspect_strike() {
        let mut t = Trust::Suspect;
        t.audit_passed();
        assert_eq!(t, Trust::Healthy);
    }

    #[test]
    fn audit_pass_keeps_healthy_healthy() {
        let mut t = Trust::Healthy;
        t.audit_passed();
        assert_eq!(t, Trust::Healthy);
    }

    #[test]
    fn readmission_enters_probation_only_from_quarantine() {
        let mut t = Trust::Quarantined;
        t.readmit();
        assert_eq!(t, Trust::Probation { clean: 0 });
        assert!(t.audits_all());
        assert!(!t.is_quarantined());
        for start in [
            Trust::Healthy,
            Trust::Suspect,
            Trust::Probation { clean: 1 },
        ] {
            let mut t = start;
            t.readmit();
            assert_eq!(t, start, "readmit must not touch {start:?}");
        }
    }

    #[test]
    fn probation_needs_three_consecutive_clean_audits() {
        let mut t = Trust::Quarantined;
        t.readmit();
        t.audit_passed();
        assert_eq!(t, Trust::Probation { clean: 1 });
        t.audit_passed();
        assert_eq!(t, Trust::Probation { clean: 2 });
        t.audit_passed();
        assert_eq!(t, Trust::Healthy);
    }

    #[test]
    fn strike_during_probation_strikes_out() {
        let mut t = Trust::Probation { clean: 2 };
        t.strike();
        assert_eq!(t, Trust::Quarantined);
    }

    #[test]
    fn audit_pass_never_frees_a_quarantined_worker() {
        let mut t = Trust::Quarantined;
        t.audit_passed();
        assert_eq!(t, Trust::Quarantined);
        t.strike();
        assert_eq!(t, Trust::Quarantined);
    }
}
