//! The worker side of the campaign fabric: serve coordinator sessions on a
//! connected socket, driving a local [`DevicePool`] built from
//! content-addressed artifacts the coordinator ships (and re-ships only
//! when they change).
//!
//! A worker process is raised one of three ways:
//!
//! * **self-exec** — the coordinator re-executes its own binary with
//!   [`ENV_CONNECT`] set; that binary's `main` starts with
//!   [`maybe_serve`], which hijacks the process into a serve/reconnect
//!   loop;
//! * the **`nvfi_worker` binary** of this crate, spawned locally or started
//!   by hand on another host (`nvfi_worker <coordinator-addr>`);
//! * any embedder calling [`serve`] on a stream it connected itself.
//!
//! # Session cache (wire v3)
//!
//! A worker keeps an [`ArtifactCache`] of the plans, weight images,
//! evaluation sets and golden activation caches it has been shipped, keyed
//! by content hash. Each new connection advertises the cached hashes in a
//! [`Msg::HaveArtifacts`] frame right after the hello exchange; the
//! coordinator activates campaigns with [`Msg::ArtifactDelta`] frames that
//! ship **only what the worker is missing** — a repeat campaign over
//! unchanged artifacts re-ships zero bytes, and switching between the
//! campaigns of a multiplexed server is a few-byte delta instead of a
//! weight image.
//!
//! Every socket-owning entry point wraps its stream in
//! [`crate::chaos::ChaosStream::wrap_env`], so the chaos env knobs
//! (`NVFI_CHAOS_SEED` / `NVFI_CHAOS_PLAN`) can perturb any worker session
//! without code changes. Transient session failures — the coordinator
//! restarting, a chaos-injected drop, a corrupted frame — make the worker
//! **reconnect with capped exponential backoff** and be re-admitted by the
//! coordinator's persistent listener, instead of dying and shrinking the
//! fleet for good.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nvfi::{DevicePool, EmulationPlatform, GoldenActivationCache, QuantizedEvalSet};
use nvfi_accel::FaultConfig;
use nvfi_obs::progress;
use nvfi_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaos::ChaosStream;
use crate::codec::WireError;
use crate::coordinator::DistError;
use crate::wire::{self, Msg, WireConfig, WireFault, WireSpan};

/// Environment variable carrying the coordinator address a worker process
/// must connect to (consumed by [`maybe_serve`] and the `nvfi_worker` bin).
pub const ENV_CONNECT: &str = "NVFI_WORKER_CONNECT";

/// Test hook: a worker with `NVFI_WORKER_EXIT_AFTER=n` serves `n` shards
/// normally, then **exits without replying** when shard `n + 1` arrives —
/// simulating a worker death mid-shard for the requeue fault-tolerance
/// tests. Unset (the default) means never.
pub const ENV_EXIT_AFTER: &str = "NVFI_WORKER_EXIT_AFTER";

/// How long (in seconds) a [`serve_forever`] worker idles without a
/// reachable coordinator before standing down. Unset or unparsable means
/// **unbounded**: a persistent-fleet worker waits for the next campaign
/// indefinitely, which is the point of a persistent fleet.
pub const ENV_IDLE_EXIT: &str = "NVFI_WORKER_IDLE_EXIT";

/// Byzantine test hook: a worker with `NVFI_WORKER_CORRUPT_AFTER=n` serves
/// `n` shards honestly, then **silently corrupts the predictions** of every
/// later shard — *before* the attestation is computed, so the reply is
/// self-consistent and sails through both the CRC trailer and the
/// attestation check. This is the adversary the coordinator's audit
/// re-execution exists to catch (a mangled-in-transit payload is already
/// caught by [`crate::wire::shard_attestation`]). Unset (the default) means
/// never.
pub const ENV_CORRUPT_AFTER: &str = "NVFI_WORKER_CORRUPT_AFTER";

/// Exit code of a deliberate [`ENV_EXIT_AFTER`] death (distinguishable from
/// a crash in test logs).
pub const EXIT_AFTER_CODE: i32 = 17;

/// Cached artifacts retained per kind across sessions. Eviction (oldest
/// first) happens only when a new connection advertises, so the set a
/// coordinator was told about never shrinks mid-connection.
const CACHE_CAP: usize = 8;

/// How a worker session ended cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEnd {
    /// The coordinator sent [`Msg::Shutdown`]: the session ran to the end
    /// of its campaign. Long-lived workers reconnect for the next one.
    Shutdown,
    /// The coordinator sent [`Msg::Goodbye`] — connected, versioned, and
    /// turned away with a reason (campaign already complete, re-admission
    /// cap reached). Not an error: the worker was *told*, not left hanging.
    Goodbye(String),
}

/// The worker's per-process identity, advertised in every
/// [`Msg::HaveArtifacts`]: random, nonzero, and **stable across
/// reconnects** of the same process, so the coordinator's audit/quarantine
/// reputation book follows a re-admitted worker instead of resetting with
/// each session.
#[must_use]
pub fn worker_ident() -> u64 {
    static IDENT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *IDENT.get_or_init(|| {
        let mut h = crate::checkpoint::Fnv64::new();
        h.write_u64(u64::from(std::process::id()));
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        h.write_u64(nanos);
        match h.finish() {
            0 => 1, // the wire format reserves ident 0 as invalid
            v => v,
        }
    })
}

/// Capped exponential backoff with equal jitter: attempt `n` sleeps
/// between half and all of `min(100ms << n, 5s)`. The jitter keeps a fleet
/// of workers that lost the same coordinator from reconnecting in
/// lockstep.
fn backoff_delay(attempt: u32, rng: &mut StdRng) -> Duration {
    let ceil_ms = (100u64 << attempt.min(10)).min(5_000);
    Duration::from_millis(ceil_ms / 2 + rng.gen_range(0..=ceil_ms / 2))
}

/// A cached plan artifact: the platform config, the local device count it
/// was programmed for, and the encoded plan words.
type PlanArtifact = (WireConfig, u32, Vec<u32>);

/// A cached DRAM weight image: shipped `(addr, bytes)` regions.
type WeightImage = Vec<(u64, Vec<i8>)>;

/// The content-addressed artifact store a worker keeps **across sessions**
/// (and across reconnects of the same process): everything a coordinator
/// has shipped, keyed by the content hash it was announced under. One
/// built [`DevicePool`] is kept alongside, keyed by its
/// `(plan, weights)` hash pair, so re-activating the same campaign skips
/// device programming entirely.
///
/// Entries are stored in insertion order; `ArtifactCache::advertise`
/// evicts beyond `CACHE_CAP` per kind (oldest first) and returns what
/// remains — the exact set the next coordinator may rely on.
#[derive(Default)]
pub struct ArtifactCache {
    /// Plan artifacts: `(config, local_devices, plan words)`.
    plans: Vec<(u64, PlanArtifact)>,
    /// DRAM weight images as shipped `(addr, bytes)` regions.
    weights: Vec<(u64, WeightImage)>,
    /// Quantized evaluation sets, reconstructed once at receive time.
    evals: Vec<(u64, QuantizedEvalSet)>,
    /// Golden activation caches for windowed campaigns.
    goldens: Vec<(u64, GoldenActivationCache)>,
    /// The one programmed device pool, keyed by `(plan, weights)` hashes.
    built: Option<((u64, u64), DevicePool)>,
}

fn cache_get<T>(entries: &[(u64, T)], hash: u64) -> Option<&T> {
    entries.iter().find(|(h, _)| *h == hash).map(|(_, v)| v)
}

fn cache_put<T>(entries: &mut Vec<(u64, T)>, hash: u64, value: T) {
    entries.retain(|(h, _)| *h != hash);
    entries.push((hash, value));
}

impl ArtifactCache {
    /// Trims each kind to `CACHE_CAP` (oldest first) and returns every
    /// retained hash — the connection-start advertisement. The built pool
    /// is dropped if either of its artifacts was evicted.
    fn advertise(&mut self) -> Vec<u64> {
        trim(&mut self.plans);
        trim(&mut self.weights);
        trim(&mut self.evals);
        trim(&mut self.goldens);
        if let Some(((p, w), _)) = &self.built {
            if cache_get(&self.plans, *p).is_none() || cache_get(&self.weights, *w).is_none() {
                self.built = None;
            }
        }
        let mut hashes = Vec::new();
        hashes.extend(self.plans.iter().map(|(h, _)| *h));
        hashes.extend(self.weights.iter().map(|(h, _)| *h));
        hashes.extend(self.evals.iter().map(|(h, _)| *h));
        hashes.extend(self.goldens.iter().map(|(h, _)| *h));
        hashes
    }

    /// Resolves the active session's artifacts, building (or reusing) the
    /// programmed device pool. Split borrows: the pool is the only mutable
    /// piece, the eval set and golden cache stay shared.
    fn parts(
        &mut self,
        session: &Session,
    ) -> Result<
        (
            &mut DevicePool,
            &QuantizedEvalSet,
            Option<&GoldenActivationCache>,
        ),
        DistError,
    > {
        let qset = cache_get(&self.evals, session.eval)
            .ok_or(DistError::Protocol("work before eval set"))?;
        let golden = if session.golden == 0 {
            None
        } else {
            Some(
                cache_get(&self.goldens, session.golden)
                    .ok_or(DistError::Protocol("work names a missing golden cache"))?,
            )
        };
        let pool = match &mut self.built {
            Some((key, pool)) if *key == (session.plan, session.weights) => pool,
            _ => return Err(DistError::Protocol("work before session activation")),
        };
        Ok((pool, qset, golden))
    }
}

fn trim<T>(entries: &mut Vec<(u64, T)>) {
    while entries.len() > CACHE_CAP {
        entries.remove(0);
    }
}

/// Self-exec hook: when [`ENV_CONNECT`] is set, the process is a spawned
/// worker — connect, serve sessions, and **exit** (status 0 on a clean
/// shutdown or goodbye, 1 on a deterministic error). When unset, returns
/// immediately. Call this first thing in `main` of any binary that
/// coordinates with [`crate::WorkerSpawn::SelfExec`].
///
/// A *transient* session failure (socket error, CRC-failed frame — the
/// coordinator restarting, or the chaos harness at work) does not kill the
/// process: the worker backs off and reconnects, up to a bounded number of
/// attempts, and the coordinator's persistent listener re-admits it
/// mid-campaign. The artifact cache survives reconnects, so a re-admitted
/// worker is re-activated by delta, not re-shipped from scratch.
pub fn maybe_serve() {
    let Ok(addr) = std::env::var(ENV_CONNECT) else {
        return;
    };
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
    let mut attempt = 0u32;
    let mut cache = ArtifactCache::default();
    loop {
        let result = connect_retry(&addr, Duration::from_secs(5)).and_then(|stream| {
            let mut stream = ChaosStream::wrap_env(stream);
            serve_with_cache(&mut stream, &mut cache)
        });
        match result {
            Ok(ServeEnd::Shutdown) => std::process::exit(0),
            Ok(ServeEnd::Goodbye(reason)) => {
                progress::note(format!(
                    "nvfi worker ({addr}): released by coordinator: {reason}"
                ));
                std::process::exit(0);
            }
            Err(DistError::Io(_) | DistError::Wire(WireError::Crc { .. })) if attempt < 16 => {
                attempt += 1;
                let delay = backoff_delay(attempt, &mut rng);
                progress::note(format!(
                    "nvfi worker ({addr}): transient session failure, \
                     reconnect attempt {attempt} in {delay:?}"
                ));
                std::thread::sleep(delay);
            }
            Err(e) => {
                progress::note(format!("nvfi worker ({addr}): {e}"));
                std::process::exit(1);
            }
        }
    }
}

/// Connects to a coordinator and serves one session (chaos-wrapped; see the
/// module docs).
///
/// # Errors
///
/// [`DistError::Spawn`] if the coordinator is unreachable; session errors
/// per [`serve`].
pub fn serve_addr(addr: &str) -> Result<ServeEnd, DistError> {
    // The coordinator binds before spawning, so the first attempt usually
    // lands; the retry window covers slow cross-host starts.
    let stream = connect_retry(addr, Duration::from_secs(5))?;
    let mut stream = ChaosStream::wrap_env(stream);
    serve(&mut stream)
}

/// Serves coordinator sessions **in a loop**: after a clean shutdown the
/// worker reconnects and waits for the next session, so one long-lived
/// `nvfi_worker` process can carry a whole multi-campaign experiment, its
/// artifact cache warm across all of them. With no coordinator reachable
/// the worker **idle-waits** — a persistent fleet must not stand down
/// between campaigns — unless [`ENV_IDLE_EXIT`] bounds the wait: after
/// that many coordinator-free seconds the loop ends, cleanly when at least
/// one session was served, with [`DistError::Spawn`] when none ever was.
///
/// Transient session failures (socket errors, CRC-failed frames) are
/// retried with capped exponential backoff — each retry logged with its
/// attempt count. A [`Msg::Goodbye`] is logged and followed by a reconnect
/// pause: for a per-campaign rejection (campaign complete, cap reached)
/// the next campaign of the same experiment may still want this worker.
///
/// # Errors
///
/// [`DistError::Spawn`] when an [`ENV_IDLE_EXIT`] deadline expires before
/// any session was served; deterministic session errors per [`serve`].
pub fn serve_forever(addr: &str) -> Result<(), DistError> {
    let idle_exit: Option<Duration> = std::env::var(ENV_IDLE_EXIT)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let mut sessions = 0u64;
    let mut attempt = 0u32;
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
    let mut cache = ArtifactCache::default();
    let mut idle_since = Instant::now();
    loop {
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    break s;
                }
                Err(e) => {
                    if let Some(limit) = idle_exit {
                        if idle_since.elapsed() >= limit {
                            return if sessions > 0 {
                                Ok(())
                            } else {
                                Err(DistError::Spawn(format!(
                                    "no coordinator at {addr} within the \
                                     {limit:?} idle deadline: {e}"
                                )))
                            };
                        }
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        };
        let mut stream = ChaosStream::wrap_env(stream);
        match serve_with_cache(&mut stream, &mut cache) {
            Ok(ServeEnd::Shutdown) => {
                sessions += 1;
                attempt = 0;
            }
            Ok(ServeEnd::Goodbye(reason)) => {
                attempt += 1;
                let delay = backoff_delay(attempt, &mut rng);
                progress::note(format!(
                    "nvfi worker ({addr}): turned away ({reason}); \
                     retrying for a later campaign in {delay:?}"
                ));
                std::thread::sleep(delay);
            }
            // Transient transport failure — the coordinator tearing down,
            // restarting, or the chaos harness at work. Back off and
            // reconnect; the idle deadline (if any) ends the loop once
            // nothing listens any more.
            Err(DistError::Io(_) | DistError::Wire(WireError::Crc { .. })) if attempt < 16 => {
                attempt += 1;
                let delay = backoff_delay(attempt, &mut rng);
                progress::note(format!(
                    "nvfi worker ({addr}): transient session failure, \
                     reconnect attempt {attempt} in {delay:?}"
                ));
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
        idle_since = Instant::now();
    }
}

/// Connects with retries spread over `window`.
fn connect_retry(addr: &str, window: Duration) -> Result<TcpStream, DistError> {
    let deadline = Instant::now() + window;
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(DistError::Spawn(format!(
                "could not reach coordinator at {addr}: {err}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The active campaign a connection is serving: the artifact hashes the
/// last [`Msg::ArtifactDelta`] named. All device state lives in the
/// [`ArtifactCache`]; a session is just the key set selecting it.
#[derive(Default)]
struct Session {
    /// Plan artifact hash (0 until the first delta).
    plan: u64,
    /// Weight-image artifact hash.
    weights: u64,
    /// Evaluation-set artifact hash.
    eval: u64,
    /// Golden-cache artifact hash, 0 when the campaign has none.
    golden: u64,
    /// Heartbeat wave: images computed between [`Msg::Pong`] heartbeats of
    /// a long shard (one full pass of the local pool).
    wave: usize,
}

/// Serves one coordinator session on `stream` with a **fresh** artifact
/// cache — the single-campaign entry point embedders and tests drive. See
/// [`serve_with_cache`] for the full protocol.
///
/// # Errors
///
/// As [`serve_with_cache`].
pub fn serve<S: Read + Write>(stream: &mut S) -> Result<ServeEnd, DistError> {
    serve_with_cache(stream, &mut ArtifactCache::default())
}

/// Serves one coordinator connection on `stream`: hello handshake, a
/// [`Msg::HaveArtifacts`] advertisement of `cache`'s content hashes, then
/// [`Msg::ArtifactDelta`] activations and [`Msg::Work`] frames until
/// shutdown. Deterministic failures (device errors, protocol violations)
/// are reported back as [`Msg::WorkerErr`] before the error is returned,
/// so the coordinator can distinguish them from a worker death.
///
/// During a shard the worker emits an **unsolicited [`Msg::Pong`]
/// heartbeat** after each compute wave (`local_devices × shard
/// granularity` images), so a coordinator `task_timeout` distinguishes a
/// stalled worker (silence) from a slow one (heartbeats keep arriving).
/// The shard itself is computed in those same waves; per-image inference
/// is independent and each wave is bit-identical to the corresponding
/// slice of a whole-shard run, so chunking never changes a prediction.
///
/// # Errors
///
/// [`DistError::Wire`] on a version mismatch or malformed frame,
/// [`DistError::Io`] when the coordinator goes away, [`DistError::Platform`]
/// on device errors.
pub fn serve_with_cache<S: Read + Write>(
    stream: &mut S,
    cache: &mut ArtifactCache,
) -> Result<ServeEnd, DistError> {
    wire::client_hello(stream)?;
    wire::send(
        stream,
        &Msg::HaveArtifacts {
            ident: worker_ident(),
            hashes: cache.advertise(),
        },
    )
    .map_err(DistError::Io)?;
    let exit_after: Option<u64> = std::env::var(ENV_EXIT_AFTER)
        .ok()
        .and_then(|v| v.parse().ok());
    let corrupt_after: Option<u64> = std::env::var(ENV_CORRUPT_AFTER)
        .ok()
        .and_then(|v| v.parse().ok());
    let mut served = 0u64;
    let mut session = Session::default();
    loop {
        match wire::recv(stream)? {
            Msg::Shutdown => return Ok(ServeEnd::Shutdown),
            Msg::Goodbye { reason } => return Ok(ServeEnd::Goodbye(reason)),
            Msg::Ping => {
                wire::send(stream, &Msg::Pong).map_err(DistError::Io)?;
            }
            Msg::ArtifactDelta {
                plan,
                weights,
                eval,
                golden,
                ship,
            } => {
                if let Err(e) = apply_delta(
                    cache,
                    &mut session,
                    stream,
                    plan,
                    weights,
                    eval,
                    golden,
                    ship,
                ) {
                    return report_and_fail(stream, e);
                }
            }
            Msg::Work { .. } if exit_after == Some(served) => {
                // Deliberate mid-shard death (test hook): the shard was
                // accepted but never answered, so the coordinator must
                // requeue it.
                std::process::exit(EXIT_AFTER_CODE);
            }
            Msg::Work {
                work_id,
                start,
                end,
                fault,
                window,
            } => {
                let corrupt = corrupt_after.is_some_and(|n| served >= n);
                match run_shard(
                    cache, &session, stream, work_id, start, end, fault, window, corrupt,
                ) {
                    Ok(reply) => {
                        wire::send(stream, &reply).map_err(DistError::Io)?;
                        served += 1;
                    }
                    Err(e) => return report_and_fail(stream, e),
                }
            }
            // Bare artifact frames only travel inside a delta in v3.
            Msg::Plan { .. } | Msg::Weights { .. } | Msg::EvalSet { .. } | Msg::Golden { .. } => {
                return report_and_fail(
                    stream,
                    DistError::Protocol("artifact frame outside a delta"),
                )
            }
            Msg::WorkerErr { message } => return Err(DistError::Worker(message)),
            Msg::Hello { .. }
            | Msg::ShardDone { .. }
            | Msg::Pong
            | Msg::HaveArtifacts { .. }
            | Msg::StatsQuery
            | Msg::Stats { .. } => {
                return report_and_fail(
                    stream,
                    DistError::Protocol("unexpected message for a worker"),
                )
            }
        }
    }
}

/// Reports a deterministic failure to the coordinator, then returns it.
fn report_and_fail<S: Read + Write>(stream: &mut S, e: DistError) -> Result<ServeEnd, DistError> {
    let _ = wire::send(
        stream,
        &Msg::WorkerErr {
            message: e.to_string(),
        },
    );
    Err(e)
}

/// Applies one [`Msg::ArtifactDelta`]: receives the shipped artifact
/// frames (in plan, weights, eval-set, golden order), verifies every
/// referenced hash is now cached, and activates the session — reusing the
/// already-programmed device pool when the `(plan, weights)` pair is
/// unchanged, rebuilding it otherwise.
#[allow(clippy::too_many_arguments)]
fn apply_delta<S: Read + Write>(
    cache: &mut ArtifactCache,
    session: &mut Session,
    stream: &mut S,
    plan: u64,
    weights: u64,
    eval: u64,
    golden: u64,
    ship: u8,
) -> Result<(), DistError> {
    for bit in 0..4u8 {
        if ship & (1 << bit) == 0 {
            continue;
        }
        match (bit, wire::recv(stream)?) {
            (
                0,
                Msg::Plan {
                    config,
                    local_devices,
                    words,
                },
            ) => cache_put(&mut cache.plans, plan, (config, local_devices, words)),
            (1, Msg::Weights { regions }) => cache_put(&mut cache.weights, weights, regions),
            (2, Msg::EvalSet { n, c, h, w, data }) => {
                let shape = Shape4::new(n as usize, c as usize, h as usize, w as usize);
                cache_put(
                    &mut cache.evals,
                    eval,
                    QuantizedEvalSet::from_tensor(Tensor::from_vec(shape, data)),
                );
            }
            (
                3,
                Msg::Golden {
                    boundary,
                    surfaces,
                    data,
                    cached_images,
                },
            ) => {
                let g = GoldenActivationCache::from_parts(
                    boundary as usize,
                    surfaces,
                    data,
                    cached_images as usize,
                )
                .ok_or(DistError::Protocol("inconsistent golden cache frame"))?;
                cache_put(&mut cache.goldens, golden, g);
            }
            _ => return Err(DistError::Protocol("unexpected frame inside a delta")),
        }
    }
    let (config, local_devices, words) = cache_get(&cache.plans, plan)
        .ok_or(DistError::Protocol("delta references an uncached plan"))?
        .clone();
    let regions = cache_get(&cache.weights, weights).ok_or(DistError::Protocol(
        "delta references an uncached weight image",
    ))?;
    if cache_get(&cache.evals, eval).is_none() {
        return Err(DistError::Protocol("delta references an uncached eval set"));
    }
    if golden != 0 && cache_get(&cache.goldens, golden).is_none() {
        return Err(DistError::Protocol(
            "delta references an uncached golden cache",
        ));
    }
    let platform_config: nvfi::PlatformConfig = config.into();
    match &mut cache.built {
        // Same programmed device: re-arm it instead of rebuilding.
        Some((key, pool)) if *key == (plan, weights) => {
            pool.clear_faults();
            pool.set_fault_window(None)?;
        }
        built => {
            let decoded = nvfi_compiler::plan::decode_words(&words)
                .map_err(|_| DistError::Protocol("plan words do not decode"))?;
            let mut device = EmulationPlatform::from_plan(decoded, platform_config)?;
            device
                .accel_mut()
                .import_weight_image(regions)
                .map_err(|e| DistError::Platform(e.into()))?;
            let pool = DevicePool::from_device(device, (local_devices as usize).max(1));
            *built = Some(((plan, weights), pool));
        }
    }
    session.plan = plan;
    session.weights = weights;
    session.eval = eval;
    session.golden = golden;
    session.wave = (local_devices as usize).max(1) * DevicePool::granularity(&platform_config);
    Ok(())
}

/// Computes one shard in heartbeat waves (see [`serve_with_cache`]),
/// returning the [`Msg::ShardDone`] reply. Windowed shards restore each
/// image's golden prefix from the session's shipped
/// [`GoldenActivationCache`] when one exists — bit-identical to the
/// recompute path, just cheaper.
///
/// The reply is **attested**: [`wire::shard_attestation`] over the artifact
/// hashes of the session this shard actually ran under, the shard key, and
/// the predictions. With `corrupt` set (the [`ENV_CORRUPT_AFTER`] byzantine
/// hook) the predictions are flipped *before* the attestation is computed —
/// a self-consistent lie only the coordinator's audit re-execution can
/// catch.
#[allow(clippy::too_many_arguments)]
fn run_shard<S: Read + Write>(
    cache: &mut ArtifactCache,
    session: &Session,
    stream: &mut S,
    work_id: u32,
    start: u32,
    end: u32,
    fault: Option<WireFault>,
    window: Option<std::ops::Range<u64>>,
    corrupt: bool,
) -> Result<Msg, DistError> {
    let (pool, qset, golden) = cache.parts(session)?;
    let (start, end) = (start as usize, end as usize);
    if end > qset.len() {
        return Err(DistError::Protocol("shard range outside the eval set"));
    }
    pool.clear_faults();
    if let Some(f) = &fault {
        pool.inject(&FaultConfig::new(f.targets(), f.kind));
    }
    // Always (re)set the window: a windowed shard must not leak its window
    // into the next, window-free shard of a multiplexed session.
    pool.set_fault_window(window.clone())?;
    let windowed = window.is_some();
    let wave = session.wave.max(1);
    let mut preds = Vec::with_capacity(end - start);
    let mut at = start;
    // Measure each compute wave; the shard reply piggybacks the timings as
    // a compact, shard-relative span summary (advisory, never attested).
    let shard_t0 = std::time::Instant::now();
    let mut spans = Vec::new();
    while at < end {
        let stop = (at + wave).min(end);
        let wave_off = shard_t0.elapsed().as_micros() as u64;
        preds.extend(if windowed {
            pool.classify_i8_golden_range(qset, at..stop, golden)?
        } else {
            pool.classify_i8_range(qset, at..stop)?
        });
        if spans.len() + 1 < wire::MAX_SHARD_SPANS {
            spans.push(WireSpan {
                name: "worker.wave".into(),
                start_us: wave_off,
                dur_us: (shard_t0.elapsed().as_micros() as u64).saturating_sub(wave_off),
            });
        }
        at = stop;
        if at < end {
            // Heartbeat between waves: proof of life, not completion. The
            // coordinator's reply loop absorbs any number of these.
            wire::send(stream, &Msg::Pong).map_err(DistError::Io)?;
        }
    }
    pool.clear_faults();
    pool.set_fault_window(None)?;
    spans.push(WireSpan {
        name: "worker.execute".into(),
        start_us: 0,
        dur_us: shard_t0.elapsed().as_micros() as u64,
    });
    if corrupt {
        // Byzantine hook: flip every prediction's low bit, keeping the
        // reply well-formed and (below) self-consistently attested.
        for p in &mut preds {
            *p ^= 1;
        }
    }
    let attest = wire::shard_attestation(
        (session.plan, session.weights, session.eval, session.golden),
        work_id,
        start as u32,
        end as u32,
        &preds,
    );
    Ok(Msg::ShardDone {
        work_id,
        start: start as u32,
        end: end as u32,
        attest,
        preds,
        spans,
    })
}
