//! The worker side of the campaign fabric: serve one coordinator session on
//! a connected socket, driving a local [`DevicePool`] built from the
//! shipped plan + weight image.
//!
//! A worker process is raised one of three ways:
//!
//! * **self-exec** — the coordinator re-executes its own binary with
//!   [`ENV_CONNECT`] set; that binary's `main` starts with
//!   [`maybe_serve`], which hijacks the process into [`serve_addr`];
//! * the **`nvfi_worker` binary** of this crate, spawned locally or started
//!   by hand on another host (`nvfi_worker <coordinator-addr>`);
//! * any embedder calling [`serve`] on a stream it connected itself.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nvfi::{DevicePool, EmulationPlatform, QuantizedEvalSet};
use nvfi_accel::FaultConfig;
use nvfi_tensor::{Shape4, Tensor};

use crate::coordinator::DistError;
use crate::wire::{self, Msg};

/// Environment variable carrying the coordinator address a worker process
/// must connect to (consumed by [`maybe_serve`] and the `nvfi_worker` bin).
pub const ENV_CONNECT: &str = "NVFI_WORKER_CONNECT";

/// Test hook: a worker with `NVFI_WORKER_EXIT_AFTER=n` serves `n` shards
/// normally, then **exits without replying** when shard `n + 1` arrives —
/// simulating a worker death mid-shard for the requeue fault-tolerance
/// tests. Unset (the default) means never.
pub const ENV_EXIT_AFTER: &str = "NVFI_WORKER_EXIT_AFTER";

/// Exit code of a deliberate [`ENV_EXIT_AFTER`] death (distinguishable from
/// a crash in test logs).
pub const EXIT_AFTER_CODE: i32 = 17;

/// Self-exec hook: when [`ENV_CONNECT`] is set, the process is a spawned
/// worker — connect, serve the session, and **exit** (status 0 on a clean
/// shutdown, 1 on error). When unset, returns immediately. Call this first
/// thing in `main` of any binary that coordinates with
/// [`crate::WorkerSpawn::SelfExec`].
pub fn maybe_serve() {
    let Ok(addr) = std::env::var(ENV_CONNECT) else {
        return;
    };
    match serve_addr(&addr) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("nvfi worker ({addr}): {e}");
            std::process::exit(1);
        }
    }
}

/// Connects to a coordinator and serves one session.
///
/// # Errors
///
/// [`DistError::Spawn`] if the coordinator is unreachable; session errors
/// per [`serve`].
pub fn serve_addr(addr: &str) -> Result<(), DistError> {
    // The coordinator binds before spawning, so the first attempt usually
    // lands; the retry window covers slow cross-host starts.
    let mut stream = connect_retry(addr, Duration::from_secs(5))?;
    serve(&mut stream)
}

/// Serves coordinator sessions **in a loop**: after a clean shutdown the
/// worker reconnects and waits for the next session, so one long-lived
/// `nvfi_worker` process can carry a whole multi-campaign experiment (fig2
/// runs one campaign per `(k, injected value)` point — each is its own
/// session). The loop ends cleanly when the coordinator stays unreachable
/// for the reconnect window after at least one served session (experiment
/// over); an unreachable coordinator *before* any session is an error.
///
/// # Errors
///
/// [`DistError::Spawn`] if the first session never connects; session
/// errors per [`serve`].
pub fn serve_forever(addr: &str) -> Result<(), DistError> {
    let mut sessions = 0u64;
    loop {
        match connect_retry(addr, Duration::from_secs(60)) {
            Ok(mut stream) => match serve(&mut stream) {
                Ok(()) => sessions += 1,
                // An I/O failure after a served session is the coordinator
                // tearing down (e.g. we reconnected into a dying listener's
                // TCP backlog and the socket died before the handshake) —
                // retry; once nothing listens any more, connect_retry's
                // window ends the loop cleanly.
                Err(DistError::Io(_)) if sessions > 0 => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            },
            Err(e) => {
                return if sessions > 0 { Ok(()) } else { Err(e) };
            }
        }
    }
}

/// Connects with retries spread over `window`.
fn connect_retry(addr: &str, window: Duration) -> Result<TcpStream, DistError> {
    let deadline = std::time::Instant::now() + window;
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => e,
        };
        if std::time::Instant::now() >= deadline {
            return Err(DistError::Spawn(format!(
                "could not reach coordinator at {addr}: {err}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The per-session device state a worker accumulates as the coordinator's
/// setup frames arrive (hello → plan → weights → eval set), after which
/// [`Msg::Work`] frames are served until [`Msg::Shutdown`].
#[derive(Default)]
struct Session {
    /// The plan-programmed device, until the pool absorbs it.
    device: Option<EmulationPlatform>,
    /// Local pool size requested by the coordinator.
    local_devices: usize,
    /// The local device pool (built when the eval set arrives).
    pool: Option<DevicePool>,
    /// The shipped, already-quantized evaluation set.
    qset: Option<QuantizedEvalSet>,
}

/// Serves one coordinator session on `stream`: handshake, session setup,
/// then work frames until shutdown. Deterministic failures (device errors,
/// protocol violations) are reported back as [`Msg::WorkerErr`] before the
/// error is returned, so the coordinator can distinguish them from a worker
/// death.
///
/// # Errors
///
/// [`DistError::Wire`] on a version mismatch or malformed frame,
/// [`DistError::Io`] when the coordinator goes away, [`DistError::Platform`]
/// on device errors.
pub fn serve<S: Read + Write>(stream: &mut S) -> Result<(), DistError> {
    wire::client_hello(stream)?;
    let exit_after: Option<u64> = std::env::var(ENV_EXIT_AFTER)
        .ok()
        .and_then(|v| v.parse().ok());
    let mut served = 0u64;
    let mut session = Session::default();
    loop {
        let msg = wire::recv(stream)?;
        let step = match msg {
            Msg::Shutdown => return Ok(()),
            Msg::Work { .. } if exit_after == Some(served) => {
                // Deliberate mid-shard death (test hook): the shard was
                // accepted but never answered, so the coordinator must
                // requeue it.
                std::process::exit(EXIT_AFTER_CODE);
            }
            msg => handle(&mut session, msg),
        };
        match step {
            Ok(Some(reply)) => {
                wire::send(stream, &reply).map_err(DistError::Io)?;
                served += 1;
            }
            Ok(None) => {}
            Err(e) => {
                let _ = wire::send(
                    stream,
                    &Msg::WorkerErr {
                        message: e.to_string(),
                    },
                );
                return Err(e);
            }
        }
    }
}

/// Applies one coordinator frame to the session, returning the reply to
/// send (only [`Msg::Work`] has one).
fn handle(session: &mut Session, msg: Msg) -> Result<Option<Msg>, DistError> {
    match msg {
        Msg::Plan {
            config,
            local_devices,
            words,
        } => {
            let plan = nvfi_compiler::plan::decode_words(&words)
                .map_err(|_| DistError::Protocol("plan words do not decode"))?;
            session.device = Some(EmulationPlatform::from_plan(plan, config.into())?);
            session.local_devices = local_devices as usize;
            session.pool = None;
            session.qset = None;
            Ok(None)
        }
        Msg::Weights { regions } => {
            let device = session
                .device
                .as_mut()
                .ok_or(DistError::Protocol("weights before plan"))?;
            device
                .accel_mut()
                .import_weight_image(&regions)
                .map_err(|e| DistError::Platform(e.into()))?;
            Ok(None)
        }
        Msg::EvalSet { n, c, h, w, data } => {
            let device = session
                .device
                .take()
                .ok_or(DistError::Protocol("eval set before plan"))?;
            let shape = Shape4::new(n as usize, c as usize, h as usize, w as usize);
            session.qset = Some(QuantizedEvalSet::from_tensor(Tensor::from_vec(shape, data)));
            session.pool = Some(DevicePool::from_device(
                device,
                session.local_devices.max(1),
            ));
            Ok(None)
        }
        Msg::Work {
            work_id,
            start,
            end,
            fault,
            window,
        } => {
            let pool = session
                .pool
                .as_mut()
                .ok_or(DistError::Protocol("work before session setup"))?;
            let qset = session
                .qset
                .as_ref()
                .ok_or(DistError::Protocol("work before eval set"))?;
            let (start, end) = (start as usize, end as usize);
            if end > qset.len() {
                return Err(DistError::Protocol("shard range outside the eval set"));
            }
            pool.clear_faults();
            if let Some(f) = &fault {
                pool.inject(&FaultConfig::new(f.targets(), f.kind));
            }
            if window.is_some() {
                pool.set_fault_window(window)?;
            }
            let preds = pool.classify_i8_range(qset, start..end)?;
            pool.clear_faults();
            Ok(Some(Msg::ShardDone {
                work_id,
                start: start as u32,
                end: end as u32,
                preds,
            }))
        }
        Msg::Hello { .. } | Msg::ShardDone { .. } | Msg::Shutdown => {
            Err(DistError::Protocol("unexpected message for a worker"))
        }
        Msg::WorkerErr { message } => Err(DistError::Worker(message)),
    }
}
