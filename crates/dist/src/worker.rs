//! The worker side of the campaign fabric: serve one coordinator session on
//! a connected socket, driving a local [`DevicePool`] built from the
//! shipped plan + weight image.
//!
//! A worker process is raised one of three ways:
//!
//! * **self-exec** — the coordinator re-executes its own binary with
//!   [`ENV_CONNECT`] set; that binary's `main` starts with
//!   [`maybe_serve`], which hijacks the process into a serve/reconnect
//!   loop;
//! * the **`nvfi_worker` binary** of this crate, spawned locally or started
//!   by hand on another host (`nvfi_worker <coordinator-addr>`);
//! * any embedder calling [`serve`] on a stream it connected itself.
//!
//! Every socket-owning entry point wraps its stream in
//! [`crate::chaos::ChaosStream::wrap_env`], so the chaos env knobs
//! (`NVFI_CHAOS_SEED` / `NVFI_CHAOS_PLAN`) can perturb any worker session
//! without code changes. Transient session failures — the coordinator
//! restarting, a chaos-injected drop, a corrupted frame — make the worker
//! **reconnect with capped exponential backoff** and be re-admitted by the
//! coordinator's persistent listener, instead of dying and shrinking the
//! fleet for good.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nvfi::{DevicePool, EmulationPlatform, QuantizedEvalSet};
use nvfi_accel::FaultConfig;
use nvfi_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaos::ChaosStream;
use crate::codec::WireError;
use crate::coordinator::DistError;
use crate::wire::{self, Msg, WireFault};

/// Environment variable carrying the coordinator address a worker process
/// must connect to (consumed by [`maybe_serve`] and the `nvfi_worker` bin).
pub const ENV_CONNECT: &str = "NVFI_WORKER_CONNECT";

/// Test hook: a worker with `NVFI_WORKER_EXIT_AFTER=n` serves `n` shards
/// normally, then **exits without replying** when shard `n + 1` arrives —
/// simulating a worker death mid-shard for the requeue fault-tolerance
/// tests. Unset (the default) means never.
pub const ENV_EXIT_AFTER: &str = "NVFI_WORKER_EXIT_AFTER";

/// Exit code of a deliberate [`ENV_EXIT_AFTER`] death (distinguishable from
/// a crash in test logs).
pub const EXIT_AFTER_CODE: i32 = 17;

/// How a worker session ended cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEnd {
    /// The coordinator sent [`Msg::Shutdown`]: the session ran to the end
    /// of its campaign. Long-lived workers reconnect for the next one.
    Shutdown,
    /// The coordinator sent [`Msg::Goodbye`] — connected, versioned, and
    /// turned away with a reason (campaign already complete, re-admission
    /// cap reached). Not an error: the worker was *told*, not left hanging.
    Goodbye(String),
}

/// Capped exponential backoff with equal jitter: attempt `n` sleeps
/// between half and all of `min(100ms << n, 5s)`. The jitter keeps a fleet
/// of workers that lost the same coordinator from reconnecting in
/// lockstep.
fn backoff_delay(attempt: u32, rng: &mut StdRng) -> Duration {
    let ceil_ms = (100u64 << attempt.min(10)).min(5_000);
    Duration::from_millis(ceil_ms / 2 + rng.gen_range(0..=ceil_ms / 2))
}

/// Self-exec hook: when [`ENV_CONNECT`] is set, the process is a spawned
/// worker — connect, serve sessions, and **exit** (status 0 on a clean
/// shutdown or goodbye, 1 on a deterministic error). When unset, returns
/// immediately. Call this first thing in `main` of any binary that
/// coordinates with [`crate::WorkerSpawn::SelfExec`].
///
/// A *transient* session failure (socket error, CRC-failed frame — the
/// coordinator restarting, or the chaos harness at work) does not kill the
/// process: the worker backs off and reconnects, up to a bounded number of
/// attempts, and the coordinator's persistent listener re-admits it
/// mid-campaign.
pub fn maybe_serve() {
    let Ok(addr) = std::env::var(ENV_CONNECT) else {
        return;
    };
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
    let mut attempt = 0u32;
    loop {
        let result = connect_retry(&addr, Duration::from_secs(5)).and_then(|stream| {
            let mut stream = ChaosStream::wrap_env(stream);
            serve(&mut stream)
        });
        match result {
            Ok(ServeEnd::Shutdown) => std::process::exit(0),
            Ok(ServeEnd::Goodbye(reason)) => {
                eprintln!("nvfi worker ({addr}): released by coordinator: {reason}");
                std::process::exit(0);
            }
            Err(DistError::Io(_) | DistError::Wire(WireError::Crc { .. })) if attempt < 16 => {
                attempt += 1;
                let delay = backoff_delay(attempt, &mut rng);
                eprintln!(
                    "nvfi worker ({addr}): transient session failure, \
                     reconnect attempt {attempt} in {delay:?}"
                );
                std::thread::sleep(delay);
            }
            Err(e) => {
                eprintln!("nvfi worker ({addr}): {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Connects to a coordinator and serves one session (chaos-wrapped; see the
/// module docs).
///
/// # Errors
///
/// [`DistError::Spawn`] if the coordinator is unreachable; session errors
/// per [`serve`].
pub fn serve_addr(addr: &str) -> Result<ServeEnd, DistError> {
    // The coordinator binds before spawning, so the first attempt usually
    // lands; the retry window covers slow cross-host starts.
    let stream = connect_retry(addr, Duration::from_secs(5))?;
    let mut stream = ChaosStream::wrap_env(stream);
    serve(&mut stream)
}

/// Serves coordinator sessions **in a loop**: after a clean shutdown the
/// worker reconnects and waits for the next session, so one long-lived
/// `nvfi_worker` process can carry a whole multi-campaign experiment (fig2
/// runs one campaign per `(k, injected value)` point — each is its own
/// session). The loop ends cleanly when the coordinator stays unreachable
/// for the reconnect window after at least one served session (experiment
/// over); an unreachable coordinator *before* any session is an error.
///
/// Transient session failures (socket errors, CRC-failed frames) are
/// retried with capped exponential backoff — each retry logged with its
/// attempt count — instead of the former tight 100 ms loop, so a dead
/// coordinator does not spin a hot core during teardown. A [`Msg::Goodbye`]
/// is logged and followed by a reconnect pause: for a per-campaign
/// rejection (campaign complete, cap reached) the next campaign of the same
/// experiment may still want this worker, and the loop's normal
/// connect-window exit ends it once nothing listens any more.
///
/// # Errors
///
/// [`DistError::Spawn`] if the first session never connects; deterministic
/// session errors per [`serve`].
pub fn serve_forever(addr: &str) -> Result<(), DistError> {
    let mut sessions = 0u64;
    let mut attempt = 0u32;
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));
    loop {
        match connect_retry(addr, Duration::from_secs(60)) {
            Ok(stream) => {
                let mut stream = ChaosStream::wrap_env(stream);
                match serve(&mut stream) {
                    Ok(ServeEnd::Shutdown) => {
                        sessions += 1;
                        attempt = 0;
                    }
                    Ok(ServeEnd::Goodbye(reason)) => {
                        attempt += 1;
                        let delay = backoff_delay(attempt, &mut rng);
                        eprintln!(
                            "nvfi worker ({addr}): turned away ({reason}); \
                             retrying for a later campaign in {delay:?}"
                        );
                        std::thread::sleep(delay);
                    }
                    // Transient transport failure — the coordinator tearing
                    // down, restarting, or the chaos harness at work. Back
                    // off and reconnect (even on the very first session: the
                    // chaos harness can kill that one too); once nothing
                    // listens any more, connect_retry's window ends the loop
                    // cleanly.
                    Err(DistError::Io(_) | DistError::Wire(WireError::Crc { .. }))
                        if attempt < 16 =>
                    {
                        attempt += 1;
                        let delay = backoff_delay(attempt, &mut rng);
                        eprintln!(
                            "nvfi worker ({addr}): transient session failure, \
                             reconnect attempt {attempt} in {delay:?}"
                        );
                        std::thread::sleep(delay);
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(e) => {
                return if sessions > 0 { Ok(()) } else { Err(e) };
            }
        }
    }
}

/// Connects with retries spread over `window`.
fn connect_retry(addr: &str, window: Duration) -> Result<TcpStream, DistError> {
    let deadline = std::time::Instant::now() + window;
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => e,
        };
        if std::time::Instant::now() >= deadline {
            return Err(DistError::Spawn(format!(
                "could not reach coordinator at {addr}: {err}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The per-session device state a worker accumulates as the coordinator's
/// setup frames arrive (hello → plan → weights → eval set), after which
/// [`Msg::Work`] frames are served until [`Msg::Shutdown`].
#[derive(Default)]
struct Session {
    /// The plan-programmed device, until the pool absorbs it.
    device: Option<EmulationPlatform>,
    /// Local pool size requested by the coordinator.
    local_devices: usize,
    /// The local device pool (built when the eval set arrives).
    pool: Option<DevicePool>,
    /// The shipped, already-quantized evaluation set.
    qset: Option<QuantizedEvalSet>,
    /// Heartbeat wave: images computed between [`Msg::Pong`] heartbeats of
    /// a long shard (one full pass of the local pool).
    wave: usize,
}

/// Serves one coordinator session on `stream`: handshake, session setup,
/// then work frames until shutdown. Deterministic failures (device errors,
/// protocol violations) are reported back as [`Msg::WorkerErr`] before the
/// error is returned, so the coordinator can distinguish them from a worker
/// death.
///
/// During a shard the worker emits an **unsolicited [`Msg::Pong`]
/// heartbeat** after each compute wave (`local_devices × shard
/// granularity` images), so a coordinator `task_timeout` distinguishes a
/// stalled worker (silence) from a slow one (heartbeats keep arriving).
/// The shard itself is computed in those same waves; per-image inference
/// is independent and each wave is bit-identical to the corresponding
/// slice of a whole-shard run, so chunking never changes a prediction.
///
/// # Errors
///
/// [`DistError::Wire`] on a version mismatch or malformed frame,
/// [`DistError::Io`] when the coordinator goes away, [`DistError::Platform`]
/// on device errors.
pub fn serve<S: Read + Write>(stream: &mut S) -> Result<ServeEnd, DistError> {
    wire::client_hello(stream)?;
    let exit_after: Option<u64> = std::env::var(ENV_EXIT_AFTER)
        .ok()
        .and_then(|v| v.parse().ok());
    let mut served = 0u64;
    let mut session = Session::default();
    loop {
        match wire::recv(stream)? {
            Msg::Shutdown => return Ok(ServeEnd::Shutdown),
            Msg::Goodbye { reason } => return Ok(ServeEnd::Goodbye(reason)),
            Msg::Ping => {
                wire::send(stream, &Msg::Pong).map_err(DistError::Io)?;
            }
            Msg::Work { .. } if exit_after == Some(served) => {
                // Deliberate mid-shard death (test hook): the shard was
                // accepted but never answered, so the coordinator must
                // requeue it.
                std::process::exit(EXIT_AFTER_CODE);
            }
            Msg::Work {
                work_id,
                start,
                end,
                fault,
                window,
            } => match run_shard(&mut session, stream, work_id, start, end, fault, window) {
                Ok(reply) => {
                    wire::send(stream, &reply).map_err(DistError::Io)?;
                    served += 1;
                }
                Err(e) => return report_and_fail(stream, e),
            },
            msg => {
                if let Err(e) = handle(&mut session, msg) {
                    return report_and_fail(stream, e);
                }
            }
        }
    }
}

/// Reports a deterministic failure to the coordinator, then returns it.
fn report_and_fail<S: Read + Write>(stream: &mut S, e: DistError) -> Result<ServeEnd, DistError> {
    let _ = wire::send(
        stream,
        &Msg::WorkerErr {
            message: e.to_string(),
        },
    );
    Err(e)
}

/// Computes one shard in heartbeat waves (see [`serve`]), returning the
/// [`Msg::ShardDone`] reply.
fn run_shard<S: Read + Write>(
    session: &mut Session,
    stream: &mut S,
    work_id: u32,
    start: u32,
    end: u32,
    fault: Option<WireFault>,
    window: Option<std::ops::Range<u64>>,
) -> Result<Msg, DistError> {
    let pool = session
        .pool
        .as_mut()
        .ok_or(DistError::Protocol("work before session setup"))?;
    let qset = session
        .qset
        .as_ref()
        .ok_or(DistError::Protocol("work before eval set"))?;
    let (start, end) = (start as usize, end as usize);
    if end > qset.len() {
        return Err(DistError::Protocol("shard range outside the eval set"));
    }
    pool.clear_faults();
    if let Some(f) = &fault {
        pool.inject(&FaultConfig::new(f.targets(), f.kind));
    }
    if window.is_some() {
        pool.set_fault_window(window)?;
    }
    let wave = session.wave.max(1);
    let mut preds = Vec::with_capacity(end - start);
    let mut at = start;
    while at < end {
        let stop = (at + wave).min(end);
        preds.extend(pool.classify_i8_range(qset, at..stop)?);
        at = stop;
        if at < end {
            // Heartbeat between waves: proof of life, not completion. The
            // coordinator's reply loop absorbs any number of these.
            wire::send(stream, &Msg::Pong).map_err(DistError::Io)?;
        }
    }
    pool.clear_faults();
    Ok(Msg::ShardDone {
        work_id,
        start: start as u32,
        end: end as u32,
        preds,
    })
}

/// Applies one coordinator *setup* frame to the session ([`Msg::Work`],
/// heartbeats and session-ending frames are handled in [`serve`] itself).
fn handle(session: &mut Session, msg: Msg) -> Result<(), DistError> {
    match msg {
        Msg::Plan {
            config,
            local_devices,
            words,
        } => {
            let plan = nvfi_compiler::plan::decode_words(&words)
                .map_err(|_| DistError::Protocol("plan words do not decode"))?;
            let platform_config: nvfi::PlatformConfig = config.into();
            session.wave =
                (local_devices as usize).max(1) * DevicePool::granularity(&platform_config);
            session.device = Some(EmulationPlatform::from_plan(plan, platform_config)?);
            session.local_devices = local_devices as usize;
            session.pool = None;
            session.qset = None;
            Ok(())
        }
        Msg::Weights { regions } => {
            let device = session
                .device
                .as_mut()
                .ok_or(DistError::Protocol("weights before plan"))?;
            device
                .accel_mut()
                .import_weight_image(&regions)
                .map_err(|e| DistError::Platform(e.into()))?;
            Ok(())
        }
        Msg::EvalSet { n, c, h, w, data } => {
            let device = session
                .device
                .take()
                .ok_or(DistError::Protocol("eval set before plan"))?;
            let shape = Shape4::new(n as usize, c as usize, h as usize, w as usize);
            session.qset = Some(QuantizedEvalSet::from_tensor(Tensor::from_vec(shape, data)));
            session.pool = Some(DevicePool::from_device(
                device,
                session.local_devices.max(1),
            ));
            Ok(())
        }
        Msg::Hello { .. }
        | Msg::ShardDone { .. }
        | Msg::Pong
        | Msg::Shutdown
        | Msg::Ping
        | Msg::Goodbye { .. }
        | Msg::Work { .. } => Err(DistError::Protocol("unexpected message for a worker")),
        Msg::WorkerErr { message } => Err(DistError::Worker(message)),
    }
}
