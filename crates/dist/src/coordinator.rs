//! The coordinator façade: fleet/raise configuration ([`FleetSpec`]), the
//! fabric's error type ([`DistError`]), and the one-shot [`run_campaign`]
//! entry point — raise a fleet, run one campaign, tear the fleet down.
//!
//! Since wire v3 the machinery behind [`run_campaign`] is the persistent
//! multiplexing [`CampaignServer`]: this
//! function is now sugar for *start a server, submit one campaign, wait,
//! shut down*. Everything it guaranteed still holds — scheduling reuses
//! the two-level shape of the in-process campaign loop
//! ([`Campaign::pool_layout`] × [`DevicePool::shard_plan`](nvfi::DevicePool::shard_plan)), predictions
//! merge by `(work item, shard range)` rather than arrival order, and the
//! result is **bit-identical** to the in-process [`Campaign::run`] for
//! every fleet size. Callers that run *many* campaigns should hold a
//! [`CampaignServer`] instead: workers then
//! keep their programmed plan / weight image / quantized evaluation set
//! across campaigns (content-addressed session cache), so repeat
//! campaigns re-ship zero artifact bytes.
//!
//! # Failure model
//!
//! The fabric assumes a **hostile transport** and, since wire v4, hostile
//! *workers* too — a worker may return wrong answers, not just crash:
//!
//! * a broken socket, a timed-out shard, a CRC-failed frame, or an
//!   out-of-lifecycle message costs one **requeue** — the connection is
//!   dropped and the shard goes back on the owning client's queue;
//! * a reply whose [`wire::shard_attestation`](crate::wire::shard_attestation)
//!   does not match the assigned session (stale cached artifacts, post-CRC
//!   corruption) is a named [`WireError::Integrity`] — rejected, requeued,
//!   and a trust strike against the worker; a **self-consistent lie** is
//!   caught by audit re-execution ([`FleetSpec::audit_rate`]; the baseline
//!   shard is always sampled), arbitrated by an authoritative in-process
//!   re-run, and punished by quarantining the convicted worker
//!   ([`Trust`](crate::trust::Trust)) while its unverified shards are
//!   re-checked — conviction is fatal only to the worker, never a client;
//! * the listener stays open for the whole campaign: a late or
//!   *reconnecting* worker is **re-admitted** mid-flight (handshake +
//!   cache advertisement, then a session delta ships only what it lacks),
//!   or turned away with a versioned [`Msg::Goodbye`](crate::wire::Msg)
//!   once the re-admission cap is reached — never left hanging in TCP
//!   limbo;
//! * losing **every** worker, for longer than
//!   [`FleetSpec::readmission_grace`], ends the distributed attempt:
//!   [`DistError::FleetLost`], or — with
//!   [`OnFleetLost::Degrade`] — a bit-identical in-process fallback run;
//! * with a checkpoint path ([`CampaignSpec::checkpoint_path`]), completed
//!   shards are persisted as they land, and a **restarted coordinator
//!   resumes**: artifacts are re-shipped, finished shards are replayed
//!   from the checkpoint, only unfinished ones are redone;
//! * a worker-*reported* error ([`Msg::WorkerErr`](crate::wire::Msg))
//!   stays **fatal**: it is deterministic and would reproduce on any
//!   other worker.

use std::path::PathBuf;
use std::time::Duration;

use nvfi::campaign::{Campaign, CampaignResult, CampaignSpec};
use nvfi::{PlatformConfig, PlatformError};
use nvfi_dataset::Dataset;
use nvfi_obs::progress;
use nvfi_quant::QuantModel;

use crate::codec::WireError;
use crate::server::{self, CampaignServer, Prepared};

/// Errors of the distributed campaign fabric.
#[derive(Debug)]
pub enum DistError {
    /// Socket/process I/O failed.
    Io(std::io::Error),
    /// A frame failed to decode (or the peer speaks the wrong version).
    Wire(WireError),
    /// A platform/device error (compile, DRAM, window validation).
    Platform(PlatformError),
    /// A worker *reported* an error — deterministic, so not retried.
    Worker(String),
    /// A message arrived outside the session lifecycle.
    Protocol(&'static str),
    /// Spawning or attaching workers failed.
    Spawn(String),
    /// Every worker died with tasks still outstanding.
    FleetLost {
        /// Tasks that never completed.
        incomplete: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist i/o error: {e}"),
            DistError::Wire(e) => write!(f, "dist wire error: {e}"),
            DistError::Platform(e) => write!(f, "dist platform error: {e}"),
            DistError::Worker(m) => write!(f, "worker reported: {m}"),
            DistError::Protocol(what) => write!(f, "protocol violation: {what}"),
            DistError::Spawn(m) => write!(f, "could not raise worker fleet: {m}"),
            DistError::FleetLost { incomplete } => {
                write!(f, "every worker died with {incomplete} task(s) outstanding")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<PlatformError> for DistError {
    fn from(e: PlatformError) -> Self {
        DistError::Platform(e)
    }
}

impl From<nvfi_accel::AccelError> for DistError {
    fn from(e: nvfi_accel::AccelError) -> Self {
        DistError::Platform(PlatformError::Accel(e))
    }
}

/// How worker processes are spawned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerSpawn {
    /// Re-execute the **current binary** with `NVFI_WORKER_CONNECT` set.
    /// The binary must call [`worker::maybe_serve`](crate::worker::maybe_serve)
    /// first thing in `main`
    /// (the examples and benches do) — the re-executed copy then serves a
    /// worker session and exits instead of running `main` proper.
    SelfExec,
    /// Spawn an explicit worker executable (e.g. the `nvfi_worker` bin),
    /// passing the coordinator address as `NVFI_WORKER_CONNECT`.
    Exe(PathBuf),
}

/// What the coordinator does when every worker is lost with tasks still
/// outstanding (after [`FleetSpec::readmission_grace`] has passed with no
/// reconnection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnFleetLost {
    /// Return [`DistError::FleetLost`] (the default): the caller decides.
    #[default]
    Fail,
    /// Degrade gracefully: fall back to the in-process [`Campaign::run`],
    /// whose merged records are **bit-identical** to what the fleet would
    /// have produced — the campaign finishes slower instead of failing.
    Degrade,
}

/// How the worker fleet is raised for one campaign (or one
/// [`CampaignServer`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Spawn method for the [`CampaignSpec::workers`] local processes.
    pub spawn: WorkerSpawn,
    /// Devices of each worker's local `DevicePool`. `0` (the default)
    /// spreads the campaign's `threads` budget evenly over the fleet
    /// (`max(1, threads / workers)`), so `threads` keeps meaning "total
    /// device budget" in both execution models.
    pub local_devices: usize,
    /// Explicit coordinator bind address (e.g. `0.0.0.0:7070`) for
    /// cross-host workers; `None` binds an ephemeral localhost port.
    pub listen: Option<String>,
    /// Cross-host workers expected to attach (`nvfi_worker <addr>`) in
    /// addition to the spawned ones.
    pub external_workers: usize,
    /// Extra environment for spawned worker `i` (`worker_env[i]`; missing
    /// entries mean no extra environment). Used by fault-tolerance tests to
    /// make one specific worker die mid-campaign.
    pub worker_env: Vec<Vec<(String, String)>>,
    /// How long to wait for the full fleet to connect and shake hands.
    pub accept_timeout: Duration,
    /// Upper bound on **silence** during one shard: after sending `Work`,
    /// every received frame (the worker's [`Msg::Pong`](crate::wire::Msg)
    /// heartbeats between compute waves included) restarts the window, so a
    /// *slow* shard that keeps heartbeating never times out — only a
    /// genuinely stalled worker does, and its shard is requeued. `None`
    /// (the default) waits forever; set this when the network can stall
    /// silently (cross-host fleets behind flaky links).
    pub task_timeout: Option<Duration>,
    /// Fleet-lost policy (fail the campaign or degrade to in-process).
    pub on_fleet_lost: OnFleetLost,
    /// How long the coordinator keeps the campaign alive with **zero**
    /// connected workers before declaring the fleet lost — the window a
    /// crashed-and-backing-off worker has to reconnect and be re-admitted.
    pub readmission_grace: Duration,
    /// Upper bound on mid-campaign (re-)admissions; a worker connecting
    /// beyond it is turned away with a [`Msg::Goodbye`](crate::wire::Msg).
    /// Caps the worst case of a crash-looping worker being re-admitted
    /// forever.
    pub max_readmissions: usize,
    /// Fraction (`0.0..=1.0`) of completed shards the server silently
    /// **audits** by re-dispatching them to a different worker and
    /// comparing replies byte-for-byte; a mismatch is arbitrated by an
    /// authoritative in-process re-execution that decides which replica
    /// lied. Sampling is deterministic per `(client, shard)` (hash-based,
    /// not random) so a rerun audits the same shards. The baseline shard
    /// (work item 0) is **always** audited whatever the rate — every
    /// record's fault-free reference deserves the double-check. Suspect
    /// and probationary workers are audited at 100 % regardless.
    /// Default `0.0` (baseline-only).
    pub audit_rate: f64,
    /// Whether audit convictions and attestation failures feed the
    /// per-worker [`Trust`](crate::trust::Trust) state machine, draining
    /// convicted workers from the fleet and putting re-admitted ones on
    /// probation. Default `true`; disable only to measure a hostile fleet
    /// without defending against it.
    pub quarantine: bool,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            spawn: WorkerSpawn::SelfExec,
            local_devices: 0,
            listen: None,
            external_workers: 0,
            worker_env: Vec::new(),
            accept_timeout: Duration::from_secs(60),
            task_timeout: None,
            on_fleet_lost: OnFleetLost::Fail,
            readmission_grace: Duration::from_secs(5),
            max_readmissions: 64,
            audit_rate: 0.0,
            quarantine: true,
        }
    }
}

impl FleetSpec {
    /// Self-exec'd local workers (the caller's `main` must start with
    /// [`worker::maybe_serve`](crate::worker::maybe_serve)).
    #[must_use]
    pub fn self_exec() -> Self {
        FleetSpec::default()
    }

    /// Workers spawned from an explicit executable.
    #[must_use]
    pub fn exe(path: impl Into<PathBuf>) -> Self {
        FleetSpec {
            spawn: WorkerSpawn::Exe(path.into()),
            ..FleetSpec::default()
        }
    }
}

/// Runs `spec` as a distributed campaign: [`CampaignSpec::workers`] local
/// worker processes (spawned per [`FleetSpec::spawn`]) plus
/// [`FleetSpec::external_workers`] cross-host ones, each session
/// programmed by content-addressed artifact delta (compiled plan + DRAM
/// weight image + quantized evaluation set, plus the golden activation
/// cache for windowed campaigns), then fed `(work item, image shard)`
/// tasks until the work list is drained. Predictions are merged by
/// `(work item, shard range)` — never by arrival order — so the result is
/// **bit-identical** to the in-process [`Campaign::run`] for every fleet
/// size, whatever faults the transport injects (see the module docs for
/// the failure model).
///
/// One-shot sugar for [`CampaignServer`]:
/// start, submit, wait, shut down. Hold a server yourself to amortize the
/// fleet and its artifact caches over many campaigns.
///
/// With an empty fleet (`spec.workers == 0` and no external workers) this
/// simply delegates to the in-process path.
///
/// # Errors
///
/// [`DistError::Spawn`] if the fleet cannot be raised,
/// [`DistError::Worker`] if a worker reports a deterministic error,
/// [`DistError::FleetLost`] if every worker stays gone past the
/// re-admission grace (unless [`OnFleetLost::Degrade`] turns that into an
/// in-process run); platform and socket errors propagate as their
/// variants.
///
/// # Panics
///
/// Panics on the same spec violations as [`Campaign::run`] (no kinds, zero
/// evaluation images, empty expanded work list).
pub fn run_campaign(
    model: &QuantModel,
    config: PlatformConfig,
    spec: &CampaignSpec,
    eval: &Dataset,
    fleet: &FleetSpec,
) -> Result<CampaignResult, DistError> {
    let total_workers = spec.workers + fleet.external_workers;
    if total_workers == 0 {
        return Ok(Campaign::new(model, config).run(spec, eval)?);
    }
    let local_devices = if fleet.local_devices > 0 {
        fleet.local_devices
    } else {
        (spec.threads / total_workers).max(1)
    };
    // Prepare (compile, verify, prune, hash, shard) before raising any
    // fleet: an all-masked campaign must never spawn a process.
    let prepared = match server::prepare(model, config, spec, eval, total_workers, local_devices)? {
        Prepared::Immediate(result) => return Ok(result),
        Prepared::Scheduled(p) => p,
    };
    let srv = CampaignServer::start(fleet, spec.workers)?;
    let outcome = srv.submit_prepared(*prepared).wait();
    srv.shutdown();
    match outcome {
        Err(DistError::FleetLost { incomplete }) if fleet.on_fleet_lost == OnFleetLost::Degrade => {
            // FleetLost left the checkpoint (if any) on disk; the in-process
            // fallback finishes the campaign, so retire it afterwards.
            if spec.verbose {
                progress::emit(&progress::Event::FleetDegraded { incomplete });
            }
            let result = Campaign::new(model, config).run(spec, eval)?;
            if let Some(path) = &spec.checkpoint_path {
                crate::checkpoint::Checkpoint::remove(path);
            }
            Ok(result)
        }
        other => other,
    }
}
