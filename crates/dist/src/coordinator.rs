//! The coordinator: raises a worker fleet, ships the session payloads once,
//! schedules `(work item × image shard)` tasks over the fleet, and merges
//! the predictions into a [`CampaignResult`] bit-identical to the
//! in-process [`Campaign::run`].
//!
//! Scheduling reuses the two-level shape of the in-process campaign loop:
//! an outer cursor over the expanded `(targets, kind)` work list, and —
//! whenever the work list is narrower than the worker fleet — inner
//! sharding of each item's evaluation range across several workers
//! ([`Campaign::pool_layout`] decides how many, [`DevicePool::shard_plan`]
//! cuts the ranges, exactly as the in-process pool does). Each worker then
//! fans its assigned range out over its *local* device pool, so total
//! parallel capacity is `workers × local devices`. Because per-image
//! inference is independent and every device is a clone of the same
//! plan-programmed prototype, any task-to-worker assignment yields the same
//! merged predictions — which is what makes worker-death requeue safe.
//!
//! # Failure model
//!
//! The fabric assumes a **hostile transport** and a trustworthy workload:
//!
//! * a broken socket, a timed-out shard, a CRC-failed frame, or an
//!   out-of-lifecycle message costs one **requeue** — the connection is
//!   dropped and the shard goes back on the shared queue;
//! * the listener stays open for the whole campaign: a late or
//!   *reconnecting* worker is **re-admitted** mid-flight (handshake, the
//!   same pre-encoded session frames, then the shared queue), or turned
//!   away with a versioned [`Msg::Goodbye`] once the re-admission cap is
//!   reached — never left hanging in TCP limbo;
//! * losing **every** worker, for longer than
//!   [`FleetSpec::readmission_grace`], ends the distributed attempt:
//!   [`DistError::FleetLost`], or — with
//!   [`OnFleetLost::Degrade`] — a bit-identical in-process fallback run;
//! * with a checkpoint path ([`CampaignSpec::checkpoint_path`]), completed
//!   shards are persisted as they land, and a **restarted coordinator
//!   resumes**: artifacts are re-shipped, finished shards are replayed from
//!   the checkpoint, only unfinished ones are redone;
//! * a worker-*reported* error ([`Msg::WorkerErr`]) stays **fatal**: it is
//!   deterministic and would reproduce on any other worker.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nvfi::campaign::{
    fault_provably_masked, run_plan_verifier, validate_fault_kinds, Campaign, CampaignResult,
    CampaignSpec, FiRecord, VerifyMode,
};
use nvfi::{DevicePool, EmulationPlatform, PlatformConfig, PlatformError, QuantizedEvalSet};
use nvfi_accel::{FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::Dataset;
use nvfi_quant::QuantModel;

use crate::checkpoint::{Checkpoint, CheckpointEntry, Fnv64};
use crate::codec::{crc32, WireError};
use crate::wire::{self, Msg, WireFault};
use crate::worker;

/// Errors of the distributed campaign fabric.
#[derive(Debug)]
pub enum DistError {
    /// Socket/process I/O failed.
    Io(std::io::Error),
    /// A frame failed to decode (or the peer speaks the wrong version).
    Wire(WireError),
    /// A platform/device error (compile, DRAM, window validation).
    Platform(PlatformError),
    /// A worker *reported* an error — deterministic, so not retried.
    Worker(String),
    /// A message arrived outside the session lifecycle.
    Protocol(&'static str),
    /// Spawning or attaching workers failed.
    Spawn(String),
    /// Every worker died with tasks still outstanding.
    FleetLost {
        /// Tasks that never completed.
        incomplete: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist i/o error: {e}"),
            DistError::Wire(e) => write!(f, "dist wire error: {e}"),
            DistError::Platform(e) => write!(f, "dist platform error: {e}"),
            DistError::Worker(m) => write!(f, "worker reported: {m}"),
            DistError::Protocol(what) => write!(f, "protocol violation: {what}"),
            DistError::Spawn(m) => write!(f, "could not raise worker fleet: {m}"),
            DistError::FleetLost { incomplete } => {
                write!(f, "every worker died with {incomplete} task(s) outstanding")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<PlatformError> for DistError {
    fn from(e: PlatformError) -> Self {
        DistError::Platform(e)
    }
}

impl From<nvfi_accel::AccelError> for DistError {
    fn from(e: nvfi_accel::AccelError) -> Self {
        DistError::Platform(PlatformError::Accel(e))
    }
}

/// How worker processes are spawned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerSpawn {
    /// Re-execute the **current binary** with `NVFI_WORKER_CONNECT` set.
    /// The binary must call [`worker::maybe_serve`] first thing in `main`
    /// (the examples and benches do) — the re-executed copy then serves a
    /// worker session and exits instead of running `main` proper.
    SelfExec,
    /// Spawn an explicit worker executable (e.g. the `nvfi_worker` bin),
    /// passing the coordinator address as `NVFI_WORKER_CONNECT`.
    Exe(PathBuf),
}

/// What the coordinator does when every worker is lost with tasks still
/// outstanding (after [`FleetSpec::readmission_grace`] has passed with no
/// reconnection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnFleetLost {
    /// Return [`DistError::FleetLost`] (the default): the caller decides.
    #[default]
    Fail,
    /// Degrade gracefully: fall back to the in-process [`Campaign::run`],
    /// whose merged records are **bit-identical** to what the fleet would
    /// have produced — the campaign finishes slower instead of failing.
    Degrade,
}

/// How the worker fleet is raised for one campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Spawn method for the [`CampaignSpec::workers`] local processes.
    pub spawn: WorkerSpawn,
    /// Devices of each worker's local [`DevicePool`]. `0` (the default)
    /// spreads the campaign's `threads` budget evenly over the fleet
    /// (`max(1, threads / workers)`), so `threads` keeps meaning "total
    /// device budget" in both execution models.
    pub local_devices: usize,
    /// Explicit coordinator bind address (e.g. `0.0.0.0:7070`) for
    /// cross-host workers; `None` binds an ephemeral localhost port.
    pub listen: Option<String>,
    /// Cross-host workers expected to attach (`nvfi_worker <addr>`) in
    /// addition to the spawned ones.
    pub external_workers: usize,
    /// Extra environment for spawned worker `i` (`worker_env[i]`; missing
    /// entries mean no extra environment). Used by fault-tolerance tests to
    /// make one specific worker die mid-campaign.
    pub worker_env: Vec<Vec<(String, String)>>,
    /// How long to wait for the full fleet to connect and shake hands.
    pub accept_timeout: Duration,
    /// Upper bound on **silence** during one shard: after sending `Work`,
    /// every received frame (the worker's [`Msg::Pong`] heartbeats between
    /// compute waves included) restarts the window, so a *slow* shard that
    /// keeps heartbeating never times out — only a genuinely stalled worker
    /// does, and its shard is requeued. `None` (the default) waits forever;
    /// set this when the network can stall silently (cross-host fleets
    /// behind flaky links).
    pub task_timeout: Option<Duration>,
    /// Fleet-lost policy (fail the campaign or degrade to in-process).
    pub on_fleet_lost: OnFleetLost,
    /// How long the coordinator keeps the campaign alive with **zero**
    /// connected workers before declaring the fleet lost — the window a
    /// crashed-and-backing-off worker has to reconnect and be re-admitted.
    pub readmission_grace: Duration,
    /// Upper bound on mid-campaign (re-)admissions; a worker connecting
    /// beyond it is turned away with a [`Msg::Goodbye`]. Caps the worst
    /// case of a crash-looping worker being re-admitted forever.
    pub max_readmissions: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            spawn: WorkerSpawn::SelfExec,
            local_devices: 0,
            listen: None,
            external_workers: 0,
            worker_env: Vec::new(),
            accept_timeout: Duration::from_secs(60),
            task_timeout: None,
            on_fleet_lost: OnFleetLost::Fail,
            readmission_grace: Duration::from_secs(5),
            max_readmissions: 64,
        }
    }
}

impl FleetSpec {
    /// Self-exec'd local workers (the caller's `main` must start with
    /// [`worker::maybe_serve`]).
    #[must_use]
    pub fn self_exec() -> Self {
        FleetSpec::default()
    }

    /// Workers spawned from an explicit executable.
    #[must_use]
    pub fn exe(path: impl Into<PathBuf>) -> Self {
        FleetSpec {
            spawn: WorkerSpawn::Exe(path.into()),
            ..FleetSpec::default()
        }
    }
}

/// One schedulable unit: an image shard of one work item.
#[derive(Clone, Debug)]
struct Task {
    /// Index into the work list (0 = baseline).
    work_id: usize,
    /// Image range of the evaluation set.
    range: Range<usize>,
}

/// Reaps (and on early exit, kills) the spawned worker processes.
struct FleetGuard {
    children: Vec<Child>,
}

impl Drop for FleetGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            // A cleanly shut-down worker has already exited; kill is a no-op
            // race loser then. Either way, wait() reaps.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The checkpoint file plus its in-memory image, persisted (atomically,
/// whole-file) after every completed shard.
struct CkptState {
    path: PathBuf,
    cp: Mutex<Checkpoint>,
}

impl CkptState {
    fn record(&self, task: &Task, preds: &[u8]) {
        let mut cp = self.cp.lock().unwrap();
        cp.entries.push(CheckpointEntry {
            work_id: task.work_id as u32,
            start: task.range.start as u32,
            end: task.range.end as u32,
            preds: preds.to_vec(),
        });
        if let Err(e) = cp.store(&self.path) {
            // A failing checkpoint must not fail the campaign — it only
            // weakens a future resume.
            eprintln!(
                "nvfi coordinator: checkpoint write to {} failed: {e}",
                self.path.display()
            );
        }
    }
}

/// Everything the per-connection worker threads and the acceptor share.
/// All fields are references into `run_campaign`'s stack frame, so the
/// struct is `Copy` and moves freely into scoped threads.
#[derive(Clone, Copy)]
struct Shared<'a> {
    tasks: &'a [Task],
    work: &'a [Option<(Vec<MultId>, FaultKind)>],
    spec: &'a CampaignSpec,
    queue: &'a Mutex<Vec<usize>>,
    results: &'a [Mutex<Option<Vec<u8>>>],
    fatal: &'a Mutex<Option<DistError>>,
    abort: &'a AtomicBool,
    done: &'a AtomicUsize,
    /// Currently connected workers (initial fleet + re-admissions − losses).
    active: &'a AtomicUsize,
    task_timeout: Option<Duration>,
    ckpt: Option<&'a CkptState>,
}

/// Runs `spec` as a distributed campaign: [`CampaignSpec::workers`] local
/// worker processes (spawned per [`FleetSpec::spawn`]) plus
/// [`FleetSpec::external_workers`] cross-host ones, each session programmed
/// once with the compiled plan + DRAM weight image + quantized evaluation
/// set, then fed `(work item, image shard)` tasks until the work list is
/// drained. Predictions are merged by `(work item, shard range)` — never by
/// arrival order — so the result is **bit-identical** to the in-process
/// [`Campaign::run`] for every fleet size, whatever faults the transport
/// injects (see the module docs for the failure model).
///
/// With an empty fleet (`spec.workers == 0` and no external workers) this
/// simply delegates to the in-process path.
///
/// # Errors
///
/// [`DistError::Spawn`] if the fleet cannot be raised,
/// [`DistError::Worker`] if a worker reports a deterministic error,
/// [`DistError::FleetLost`] if every worker stays gone past the
/// re-admission grace (unless [`OnFleetLost::Degrade`] turns that into an
/// in-process run); platform and socket errors propagate as their
/// variants.
///
/// # Panics
///
/// Panics on the same spec violations as [`Campaign::run`] (no kinds, zero
/// evaluation images, empty expanded work list).
pub fn run_campaign(
    model: &QuantModel,
    config: PlatformConfig,
    spec: &CampaignSpec,
    eval: &Dataset,
    fleet: &FleetSpec,
) -> Result<CampaignResult, DistError> {
    let total_workers = spec.workers + fleet.external_workers;
    if total_workers == 0 {
        return Ok(Campaign::new(model, config).run(spec, eval)?);
    }
    assert!(
        !spec.kinds.is_empty(),
        "campaign needs at least one fault kind"
    );
    assert!(spec.eval_images > 0, "campaign needs evaluation images");
    validate_fault_kinds(&spec.kinds).map_err(DistError::Platform)?;
    let targets = Campaign::expand_targets(&spec.selection);
    assert!(
        !targets.is_empty(),
        "campaign target selection expands to no target sets"
    );
    // Work item 0 is the fault-free baseline; 1.. are the fault programs in
    // the same deterministic order as the in-process work list.
    let mut work: Vec<Option<(Vec<MultId>, FaultKind)>> = vec![None];
    for t in &targets {
        for k in &spec.kinds {
            work.push(Some((t.clone(), *k)));
        }
    }
    let eval = eval.take(spec.eval_images);
    let start = Instant::now();

    // One quantization pass per campaign, exactly like the in-process path;
    // the bytes ship to every worker, no worker re-quantizes.
    let qset = QuantizedEvalSet::build(model, &eval.images);

    // The prototype compiles the plan once, validates the window before any
    // work is scheduled, and donates the DRAM weight image.
    let mut proto = EmulationPlatform::assemble(model, config)?;
    if let Some(w) = &spec.fault_window {
        proto.accel().validate_fault_window(w)?;
    }
    // Static verification at plan load, then fault reachability over the
    // work list: provably-masked items are never scheduled on the fleet —
    // their records fold the fault-free predictions against themselves
    // after the merge (bit-identical to running them, by soundness of the
    // analysis). The baseline (item 0) is always executed.
    run_plan_verifier(proto.plan(), spec.verify).map_err(DistError::Platform)?;
    let gated = config.accel.idle_lanes == IdleLanePolicy::Gated;
    let masked: Vec<bool> = work
        .iter()
        .map(|item| match item {
            Some((targets, kind)) if spec.verify != VerifyMode::Off => fault_provably_masked(
                proto.plan(),
                targets,
                *kind,
                gated,
                spec.fault_window.as_ref(),
            ),
            _ => false,
        })
        .collect();
    let masked_static = masked.iter().filter(|&&m| m).count();
    if masked_static == work.len() - 1 {
        // Every fault item is provably masked: the whole campaign is the
        // baseline pass, so run in-process (which prunes identically) and
        // never raise — or even spawn — the fleet.
        if spec.verbose {
            eprintln!(
                "  all {masked_static} work item(s) provably masked; \
                 fleet not raised"
            );
        }
        let result = Campaign::new(model, config).run(spec, &eval)?;
        if let Some(path) = &spec.checkpoint_path {
            Checkpoint::remove(path);
        }
        return Ok(result);
    }
    let plan_words = nvfi_compiler::plan::encode_words(proto.plan());
    let weight_image = proto.accel_mut().export_weight_image()?;

    // Ship-once session payloads: each encoded ONCE, the same bytes replayed
    // to every worker — initial fleet and mid-campaign re-admissions alike
    // (the wire probes assert the "once").
    let local_devices = if fleet.local_devices > 0 {
        fleet.local_devices
    } else {
        (spec.threads / total_workers).max(1)
    };
    let shape = qset.shape();
    let frames = [
        Msg::Plan {
            config: config.into(),
            local_devices: local_devices as u32,
            words: plan_words,
        }
        .encode(),
        Msg::Weights {
            regions: weight_image,
        }
        .encode(),
        // Encoded straight from the borrowed pixel slice: no owned copy of
        // the (large) evaluation set just to build a `Msg`.
        wire::encode_eval_set(
            shape.n as u32,
            shape.c as u32,
            shape.h as u32,
            shape.w as u32,
            qset.images().as_slice(),
        ),
    ];

    // The task list: each work item cut into as many contiguous shards as
    // the two-level layout gives its scheduling slot — all 1s when the work
    // list is at least as wide as the fleet (pure item-level parallelism),
    // wider shard fan-out when the fleet outnumbers the items.
    let layout = Campaign::pool_layout(total_workers, work.len(), 0);
    let granularity = DevicePool::granularity(&config);
    let mut tasks: Vec<Task> = Vec::new();
    for i in 0..work.len() {
        if masked[i] {
            continue; // provably masked: no shards, no fleet time
        }
        let shards = layout[i % layout.len()];
        for range in DevicePool::shard_plan(eval.len(), shards, granularity) {
            tasks.push(Task { work_id: i, range });
        }
    }

    // Scheduling state: a queue of pending task indices (popped by worker
    // threads, pushed back on worker loss) and one result slot per task.
    let results: Vec<Mutex<Option<Vec<u8>>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    let mut prefilled = 0usize;

    // Checkpoint/resume: replay completed shards of a previous (killed)
    // coordinator whose campaign fingerprint matches this one, then keep
    // persisting as new shards land.
    let ckpt: Option<CkptState> = spec.checkpoint_path.as_ref().map(|path| {
        let fingerprint = campaign_fingerprint(&frames, &tasks, &work, spec);
        let mut cp = Checkpoint::new(fingerprint);
        if let Some(prev) = Checkpoint::load(path) {
            if prev.fingerprint == fingerprint {
                let by_key: HashMap<(u32, u32, u32), usize> = tasks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        (
                            (t.work_id as u32, t.range.start as u32, t.range.end as u32),
                            i,
                        )
                    })
                    .collect();
                for entry in prev.entries {
                    let key = (entry.work_id, entry.start, entry.end);
                    if let Some(&idx) = by_key.get(&key) {
                        let mut slot = results[idx].lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(entry.preds.clone());
                            prefilled += 1;
                            cp.entries.push(entry);
                        }
                    }
                }
                if spec.verbose && prefilled > 0 {
                    eprintln!(
                        "  resuming from {}: {}/{} shards already done",
                        path.display(),
                        prefilled,
                        tasks.len()
                    );
                }
            } else if spec.verbose {
                eprintln!(
                    "  checkpoint {} belongs to a different campaign; starting fresh",
                    path.display()
                );
            }
        }
        CkptState {
            path: path.to_path_buf(),
            cp: Mutex::new(cp),
        }
    });

    if prefilled < tasks.len() {
        run_fleet(
            spec,
            fleet,
            total_workers,
            &frames,
            &tasks,
            &work,
            &results,
            prefilled,
            ckpt.as_ref(),
        )?;
        // FleetLost (with the checkpoint, if any, left on disk for a
        // restart) either propagates or degrades to the in-process run.
        let incomplete = results
            .iter()
            .filter(|r| r.lock().unwrap().is_none())
            .count();
        if incomplete > 0 {
            match fleet.on_fleet_lost {
                OnFleetLost::Fail => return Err(DistError::FleetLost { incomplete }),
                OnFleetLost::Degrade => {
                    if spec.verbose {
                        eprintln!(
                            "  fleet lost with {incomplete} task(s) outstanding; \
                             degrading to the in-process campaign"
                        );
                    }
                    let result = Campaign::new(model, config).run(spec, &eval)?;
                    if let Some(ck) = &ckpt {
                        Checkpoint::remove(&ck.path);
                    }
                    return Ok(result);
                }
            }
        }
    }

    // Merge: concatenate each work item's shards in range order (the task
    // list is already ordered that way), then fold into records exactly as
    // the in-process loop does.
    let mut per_item: Vec<Vec<u8>> = vec![Vec::new(); work.len()];
    for (task, result) in tasks.iter().zip(&results) {
        per_item[task.work_id].extend(result.lock().unwrap().take().unwrap());
    }
    // Provably-masked items produce exactly the fault-free predictions: give
    // them the baseline's, and the shared record fold below does the rest.
    let clean_preds: Vec<u8> = per_item[0].clone();
    for (item, is_masked) in per_item.iter_mut().zip(&masked) {
        if *is_masked {
            item.clone_from(&clean_preds);
        }
    }
    let clean_preds = &clean_preds;
    let baseline_accuracy = nvfi::campaign::prediction_accuracy(clean_preds, &eval.labels);
    let mut records = Vec::with_capacity(work.len() - 1);
    for (item, preds) in work.iter().zip(&per_item).skip(1) {
        let (targets, kind) = item.as_ref().expect("non-baseline items carry a fault");
        // The shared fold of nvfi::campaign — bit-identity with the
        // in-process path is structural, not a re-implementation.
        records.push(FiRecord::from_preds(
            targets.clone(),
            *kind,
            preds,
            clean_preds,
            &eval.labels,
            baseline_accuracy,
        ));
    }
    // The campaign is complete: a finished run's checkpoint must not donate
    // shards to an unrelated later campaign at the same path.
    if let Some(ck) = &ckpt {
        Checkpoint::remove(&ck.path);
    }
    let executed = records.len() - masked_static;
    let total_inferences = (executed as u64 + 1) * eval.len() as u64;
    Ok(CampaignResult {
        baseline_accuracy,
        records,
        masked_static,
        total_inferences,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Hashes everything that determines the schedule and its answers: the
/// wire + checkpoint format versions (via [`Fnv64::campaign_seed`], so a
/// protocol bump invalidates every older checkpoint), the encoded session
/// frames (plan, weights, evaluation set — config and quantized pixels
/// included), the task list, and each work item's full fault program as it
/// would go on the wire. Two campaigns share a fingerprint iff their
/// checkpointed shards are interchangeable.
fn campaign_fingerprint(
    frames: &[Vec<u8>; 3],
    tasks: &[Task],
    work: &[Option<(Vec<MultId>, FaultKind)>],
    spec: &CampaignSpec,
) -> u64 {
    let mut h = Fnv64::campaign_seed();
    for frame in frames {
        h.write_u64(u64::from(crc32(frame)));
    }
    h.write_u64(tasks.len() as u64);
    for t in tasks {
        h.write_u64(t.work_id as u64);
        h.write_u64(t.range.start as u64);
        h.write_u64(t.range.end as u64);
    }
    for (work_id, item) in work.iter().enumerate() {
        let fault = item
            .as_ref()
            .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
        let window = if fault.is_some() {
            spec.fault_window.clone()
        } else {
            None
        };
        h.write(
            &Msg::Work {
                work_id: work_id as u32,
                start: 0,
                end: 0,
                fault,
                window,
            }
            .encode(),
        );
    }
    h.finish()
}

/// Raises the fleet and drives the shared queue dry (or loses the fleet —
/// the caller inspects the result slots). The listener stays open for the
/// whole campaign: a dedicated acceptor thread re-admits reconnecting or
/// late workers mid-flight and watches for total fleet loss.
#[allow(clippy::too_many_arguments)]
fn run_fleet(
    spec: &CampaignSpec,
    fleet: &FleetSpec,
    total_workers: usize,
    frames: &[Vec<u8>; 3],
    tasks: &[Task],
    work: &[Option<(Vec<MultId>, FaultKind)>],
    results: &[Mutex<Option<Vec<u8>>>],
    prefilled: usize,
    ckpt: Option<&CkptState>,
) -> Result<(), DistError> {
    // Raise the fleet. A fixed listen address may sit in TIME_WAIT for a
    // moment after a previous campaign of the same experiment (fig2/fig3
    // run one campaign per figure point over the same coordinator port), so
    // AddrInUse is retried within the accept budget rather than failing the
    // experiment mid-way.
    let bind_addr = fleet.listen.as_deref().unwrap_or("127.0.0.1:0");
    let bind_deadline = Instant::now() + fleet.accept_timeout;
    let listener = loop {
        match TcpListener::bind(bind_addr) {
            Ok(l) => break l,
            Err(e)
                if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < bind_deadline =>
            {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(DistError::Spawn(format!("bind {bind_addr}: {e}"))),
        }
    };
    let local = listener
        .local_addr()
        .map_err(|e| DistError::Spawn(e.to_string()))?;
    // Spawned (same-host) workers connect to loopback when the listener is
    // on loopback or a wildcard; a concrete non-loopback bind (cross-host
    // listen combined with local spawns) is handed to them verbatim.
    let connect_addr = if local.ip().is_unspecified() || local.ip().is_loopback() {
        format!("127.0.0.1:{}", local.port())
    } else {
        local.to_string()
    };
    let mut guard = FleetGuard {
        children: Vec::new(),
    };
    for i in 0..spec.workers {
        let exe = match &fleet.spawn {
            WorkerSpawn::SelfExec => std::env::current_exe()
                .map_err(|e| DistError::Spawn(format!("current_exe: {e}")))?,
            WorkerSpawn::Exe(p) => p.clone(),
        };
        let mut cmd = Command::new(&exe);
        cmd.env(worker::ENV_CONNECT, &connect_addr);
        for (k, v) in fleet.worker_env.get(i).map_or(&[][..], Vec::as_slice) {
            cmd.env(k, v);
        }
        guard.children.push(
            cmd.spawn()
                .map_err(|e| DistError::Spawn(format!("spawn {}: {e}", exe.display())))?,
        );
    }
    let mut streams = accept_fleet(&listener, total_workers, fleet.accept_timeout)?;

    for stream in &mut streams {
        for frame in frames {
            wire::write_frame(stream, frame)?;
        }
    }

    let queue: Mutex<Vec<usize>> = Mutex::new(
        (0..tasks.len())
            .rev()
            .filter(|&i| results[i].lock().unwrap().is_none())
            .collect(),
    );
    let fatal: Mutex<Option<DistError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let done = AtomicUsize::new(prefilled);
    let active = AtomicUsize::new(streams.len());
    let shared = Shared {
        tasks,
        work,
        spec,
        queue: &queue,
        results,
        fatal: &fatal,
        abort: &abort,
        done: &done,
        active: &active,
        task_timeout: fleet.task_timeout,
        ckpt,
    };

    std::thread::scope(|scope| {
        for (worker_id, stream) in streams.into_iter().enumerate() {
            scope.spawn(move || worker_thread(shared, worker_id, stream));
        }
        // The acceptor: keeps the listener open for the life of the
        // campaign, re-admitting late/reconnecting workers (handshake +
        // the same pre-encoded session frames, then the shared queue) and
        // declaring the fleet lost if it stays empty past the grace.
        let listener = &listener;
        let fleet = &fleet;
        scope.spawn(move || {
            let mut admitted = 0usize;
            let mut empty_since: Option<Instant> = None;
            loop {
                if shared.abort.load(Ordering::Relaxed)
                    || shared.done.load(Ordering::Relaxed) == shared.tasks.len()
                {
                    break;
                }
                if shared.active.load(Ordering::SeqCst) == 0 {
                    let since = *empty_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= fleet.readmission_grace {
                        // Nobody is left and nobody came back: end the
                        // campaign attempt. The result slots decide between
                        // FleetLost and (policy) degradation upstream.
                        shared.abort.store(true, Ordering::SeqCst);
                        break;
                    }
                } else {
                    empty_since = None;
                }
                match listener.accept() {
                    Ok((mut s, _)) => {
                        if s.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                        if wire::accept_hello(&mut s).is_err() {
                            continue;
                        }
                        if admitted >= fleet.max_readmissions {
                            // Versioned, explicit rejection *after* the
                            // handshake: the worker's serve loop reads a
                            // clean `Goodbye` and stands down, instead of
                            // hanging in TCP limbo or misreading the frame.
                            let _ = wire::send(
                                &mut s,
                                &Msg::Goodbye {
                                    reason: format!(
                                        "re-admission cap ({}) reached",
                                        fleet.max_readmissions
                                    ),
                                },
                            );
                            continue;
                        }
                        if s.set_read_timeout(None).is_err() {
                            continue;
                        }
                        if frames
                            .iter()
                            .try_for_each(|f| wire::write_frame(&mut s, f))
                            .is_err()
                        {
                            continue;
                        }
                        admitted += 1;
                        shared.active.fetch_add(1, Ordering::SeqCst);
                        empty_since = None;
                        let worker_id = total_workers + admitted;
                        if shared.spec.verbose {
                            eprintln!("  worker {worker_id} admitted mid-campaign");
                        }
                        scope.spawn(move || worker_thread(shared, worker_id, s));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
    });
    drop(guard);

    if let Some(e) = fatal.into_inner().unwrap() {
        return Err(e);
    }
    Ok(())
}

/// Drives one worker connection: pop a task, run it, repeat — requeueing on
/// loss, probing liveness while idle, and releasing the worker with
/// [`Msg::Shutdown`] when the campaign completes.
fn worker_thread(shared: Shared<'_>, worker_id: usize, mut stream: TcpStream) {
    let mut last_done: Option<(u32, u32, u32)> = None;
    let mut last_ping = Instant::now();
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let popped = shared.queue.lock().unwrap().pop();
        let Some(task_idx) = popped else {
            if shared.done.load(Ordering::Relaxed) == shared.tasks.len() {
                // Everything completed: release the worker, then drain to
                // EOF so the *worker* closes first — keeping TIME_WAIT off
                // the coordinator's side, which matters when a fixed listen
                // port is re-bound by the experiment's next campaign.
                let _ = wire::send(&mut stream, &Msg::Shutdown);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let mut sink = [0u8; 256];
                while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
                break;
            }
            // Queue empty but tasks still in flight elsewhere: a lost worker
            // may yet requeue one, so stay available — and probe liveness
            // about once a second (fire-and-forget; the Pong reply is
            // absorbed by the next task's reply loop) so a dead socket is
            // noticed while idle, not when a requeue finally lands on it.
            if last_ping.elapsed() >= Duration::from_secs(1) {
                last_ping = Instant::now();
                if wire::send(&mut stream, &Msg::Ping).is_err() {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let task = &shared.tasks[task_idx];
        match run_task(
            &mut stream,
            task,
            shared.work,
            shared.spec,
            shared.task_timeout,
            &mut last_done,
        ) {
            Ok(preds) => {
                // Persist before counting done: a coordinator killed right
                // here resumes with this shard already checkpointed.
                if let Some(ck) = shared.ckpt {
                    ck.record(task, &preds);
                }
                *shared.results[task_idx].lock().unwrap() = Some(preds);
                last_ping = Instant::now();
                if shared.spec.verbose {
                    // stderr lock held across count + write => strictly
                    // monotonic done/total lines, with per-worker
                    // attribution for debuggability.
                    let mut err = std::io::stderr().lock();
                    let finished = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
                    let _ = writeln!(
                        err,
                        "  fi {}/{} [worker {}]: item {} images {}..{}",
                        finished,
                        shared.tasks.len(),
                        worker_id,
                        task.work_id,
                        task.range.start,
                        task.range.end,
                    );
                } else {
                    shared.done.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(TaskError::WorkerLost(e)) => {
                // The shard is requeued for a surviving (or re-admitted)
                // worker; this connection is done.
                shared.queue.lock().unwrap().push(task_idx);
                if shared.spec.verbose {
                    eprintln!(
                        "  worker {worker_id} lost mid-shard \
                         (item {} images {}..{}): {e}; requeued",
                        task.work_id, task.range.start, task.range.end,
                    );
                }
                break;
            }
            Err(TaskError::Fatal(e)) => {
                // Deterministic failure: no point retrying it on another
                // worker. Stop the fleet.
                let mut slot = shared.fatal.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(e);
                }
                shared.abort.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Why one task attempt ended.
enum TaskError {
    /// The connection is no longer trustworthy — the worker died, stalled
    /// past the timeout, or the transport corrupted a frame. Requeue the
    /// shard; a reconnecting worker gets re-admitted.
    WorkerLost(std::io::Error),
    /// A deterministic error that retrying elsewhere would reproduce.
    Fatal(DistError),
}

/// Sends one task to a worker and awaits its predictions, absorbing
/// [`Msg::Pong`] heartbeats (each restarts the `task_timeout` silence
/// window — a slow worker that keeps heartbeating never times out) and
/// chaos-duplicated replays of the previously completed shard. With a
/// `task_timeout`, a reply that never comes (stalled worker, silently
/// partitioned link — no RST, so not a socket error) surfaces as a
/// timed-out read and the worker is treated as lost, instead of blocking
/// the campaign forever.
fn run_task(
    stream: &mut TcpStream,
    task: &Task,
    work: &[Option<(Vec<MultId>, FaultKind)>],
    spec: &CampaignSpec,
    task_timeout: Option<Duration>,
    last_done: &mut Option<(u32, u32, u32)>,
) -> Result<Vec<u8>, TaskError> {
    let fault = work[task.work_id]
        .as_ref()
        .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
    // The baseline stays window-free, exactly like the in-process path.
    let window = if fault.is_some() {
        spec.fault_window.clone()
    } else {
        None
    };
    let msg = Msg::Work {
        work_id: task.work_id as u32,
        start: task.range.start as u32,
        end: task.range.end as u32,
        fault,
        window,
    };
    wire::send(stream, &msg).map_err(TaskError::WorkerLost)?;
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(task_timeout);
    }
    let result = loop {
        match wire::recv(stream) {
            // Heartbeat (or a stale idle-probe reply): proof of life. The
            // per-recv timeout restarts, which is exactly the liveness
            // contract — silence times out, progress does not.
            Ok(Msg::Pong) => continue,
            Ok(Msg::ShardDone {
                work_id,
                start,
                end,
                preds,
            }) => {
                let key = (work_id, start, end);
                if *last_done == Some(key) {
                    // A chaos-duplicated replay of the previous completion:
                    // already merged, skip it.
                    continue;
                }
                if work_id as usize == task.work_id
                    && start as usize == task.range.start
                    && end as usize == task.range.end
                {
                    *last_done = Some(key);
                    break Ok(preds);
                }
                // A completion for a shard this connection doesn't own: the
                // stream is out of step (dropped/duplicated frames). Drop
                // the connection and requeue — never merge it.
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "shard reply does not match the assigned task",
                )));
            }
            Ok(Msg::WorkerErr { message }) => {
                break Err(TaskError::Fatal(DistError::Worker(message)))
            }
            Ok(_) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "message outside the session lifecycle",
                )))
            }
            Err(DistError::Io(e)) => break Err(TaskError::WorkerLost(e)),
            // A CRC-failed frame is transport corruption, not a worker bug:
            // drop the connection, requeue, let re-admission replace it.
            Err(DistError::Wire(e @ WireError::Crc { .. })) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                )))
            }
            Err(e) => break Err(TaskError::Fatal(e)),
        }
    };
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(None);
    }
    result
}

/// Accepts and handshakes `n` workers within `timeout` (the initial fleet
/// raise; afterwards the acceptor thread owns the listener, which it leaves
/// in the non-blocking mode set here).
fn accept_fleet(
    listener: &TcpListener,
    n: usize,
    timeout: Duration,
) -> Result<Vec<TcpStream>, DistError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DistError::Spawn(e.to_string()))?;
    let deadline = Instant::now() + timeout;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| DistError::Spawn(e.to_string()))?;
                let _ = stream.set_nodelay(true);
                // The handshake read is bounded by the remaining accept
                // deadline: a connected-but-silent peer (half-open link,
                // port scanner, stalled worker) must time the fleet out,
                // not hang the coordinator on a blocking recv forever.
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                stream
                    .set_read_timeout(Some(remaining))
                    .map_err(|e| DistError::Spawn(e.to_string()))?;
                wire::accept_hello(&mut stream)?;
                stream
                    .set_read_timeout(None)
                    .map_err(|e| DistError::Spawn(e.to_string()))?;
                streams.push(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(DistError::Spawn(format!(
                        "only {}/{} workers connected within {:?}",
                        streams.len(),
                        n,
                        timeout
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(DistError::Spawn(format!("accept: {e}"))),
        }
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A peer that connects but never sends its hello must make the fleet
    /// accept *time out with an error* — not hang the coordinator forever
    /// on a blocking handshake read.
    #[test]
    fn silent_peer_times_the_fleet_accept_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _silent = TcpStream::connect(addr).unwrap();
        let t = Instant::now();
        let r = accept_fleet(&listener, 1, Duration::from_millis(300));
        assert!(r.is_err(), "a silent peer must not count as a worker");
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "accept must observe the deadline instead of blocking"
        );
    }
}
