//! Deterministic fault injection for the fabric itself: [`ChaosStream`]
//! wraps any `Read + Write` session stream and perturbs it according to a
//! seeded [`ChaosPlan`] — the same discipline the paper applies to the
//! emulated accelerator, turned on the campaign fabric's own transport.
//!
//! The injectable failure classes mirror what long cloud campaigns actually
//! see (DeepStrike-style hours-long runs on shared infrastructure):
//!
//! * **connection drop mid-frame** ([`ChaosAction::DropMidFrame`]) — the
//!   peer sees a truncated frame then EOF;
//! * **read/write stalls** ([`ChaosAction::StallWrite`],
//!   [`ChaosAction::StallRead`]) — silence without a socket error;
//! * **payload bit-flips** ([`ChaosAction::FlipBit`]) — caught by the v2
//!   per-frame CRC as a named [`crate::codec::WireError::Crc`];
//! * **truncation** ([`ChaosAction::Truncate`]) — a frame shorter than its
//!   length prefix promises, with the connection left open (only a
//!   `task_timeout` can unstick the peer — which is the point);
//! * **duplicated frames** ([`ChaosAction::Duplicate`]) — the same frame
//!   delivered twice;
//! * **late duplicated frames** ([`ChaosAction::ReplayFrame`], `ldup`) — a
//!   valid frame re-delivered *after* later frames, the reordered-duplicate
//!   case the coordinator's completion dedup must absorb;
//! * **byzantine payload corruption** ([`ChaosAction::LieShardDone`],
//!   `lie`) — a `ShardDone` payload mangled and its CRC trailer
//!   **re-sealed**, so the wire layer provably cannot catch it; only the
//!   v4 shard attestation can.
//!
//! Write-side actions are **frame-indexed**: the wire layer flushes exactly
//! once per frame ([`crate::wire::write_frame`]), so the wrapper counts
//! flushes to know frame boundaries without parsing the protocol. Read-side
//! actions are byte-offset-indexed.
//!
//! # Env knobs
//!
//! Worker session entry points ([`crate::worker::maybe_serve`],
//! [`crate::worker::serve_addr`], [`crate::worker::serve_forever`]) wrap
//! their sockets via [`ChaosStream::wrap_env`]:
//!
//! * [`ENV_CHAOS_PLAN`] (`NVFI_CHAOS_PLAN`) — an explicit plan, e.g.
//!   `flip:2:8:3,stall:3:500,drop:4` (see [`ChaosPlan::parse`]);
//! * [`ENV_CHAOS_SEED`] (`NVFI_CHAOS_SEED`) — a u64 seed from which
//!   [`ChaosPlan::from_seed`] derives one corrupt frame, one stalled
//!   frame and one connection drop, at seed-determined positions.
//!
//! An env-supplied plan **arms exactly once per process**: the first
//! wrapped session gets the chaos, every later session (after the worker's
//! reconnect/recovery path kicks in) runs clean — so an injected fault is
//! something the fabric must *recover from*, not an endless storm.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Env var naming an explicit chaos plan (see [`ChaosPlan::parse`]).
pub const ENV_CHAOS_PLAN: &str = "NVFI_CHAOS_PLAN";

/// Env var carrying a u64 seed for [`ChaosPlan::from_seed`]. Ignored when
/// [`ENV_CHAOS_PLAN`] is also set.
pub const ENV_CHAOS_SEED: &str = "NVFI_CHAOS_SEED";

/// One injectable transport fault. Write-side actions name the index of an
/// **outgoing frame** (0 = the first frame the wrapped endpoint sends —
/// for a worker, its `Hello`); read-side actions name a byte offset into
/// the incoming stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// XOR bit `bit` of payload byte `offset` (modulo the frame's
    /// payload+CRC region — the length prefix is never touched, so the
    /// peer's framing survives to *detect* the corruption) of outgoing
    /// frame `frame`.
    FlipBit {
        /// Outgoing frame index.
        frame: u64,
        /// Byte offset into the frame's payload+CRC region.
        offset: u64,
        /// Bit to flip (taken modulo 8).
        bit: u8,
    },
    /// Send only the first `keep` bytes of outgoing frame `frame`, then
    /// carry on as if it had been sent whole. The connection stays open:
    /// the peer blocks awaiting the promised bytes — undetectable without
    /// a `task_timeout`.
    Truncate {
        /// Outgoing frame index.
        frame: u64,
        /// Bytes of the frame actually delivered.
        keep: u64,
    },
    /// Send outgoing frame `frame` twice.
    Duplicate {
        /// Outgoing frame index.
        frame: u64,
    },
    /// Send the first `keep` bytes of outgoing frame `frame`, then kill the
    /// connection (every later read/write on this wrapper fails). `keep: 0`
    /// drops *before* the frame; `0 < keep < len` drops **mid-frame**.
    DropMidFrame {
        /// Outgoing frame index.
        frame: u64,
        /// Bytes delivered before the drop.
        keep: u64,
    },
    /// Sleep `millis` before sending outgoing frame `frame` (a stalled
    /// shard, as the peer sees it).
    StallWrite {
        /// Outgoing frame index.
        frame: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Sleep `millis` once, before the first read at or past incoming byte
    /// `after_bytes`.
    StallRead {
        /// Incoming byte offset that triggers the stall.
        after_bytes: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Kill the connection once `after_bytes` incoming bytes have been
    /// delivered.
    DropRead {
        /// Incoming bytes delivered before the drop.
        after_bytes: u64,
    },
    /// Re-emit outgoing frame `frame` (as actually delivered) after `delay`
    /// further frames have been sent — a **late duplicate**, arriving when
    /// the session has long moved on. Unlike [`ChaosAction::Duplicate`] the
    /// copy is not adjacent, so it exercises the receiver's
    /// already-recorded-completion dedup rather than its in-order one.
    ReplayFrame {
        /// Outgoing frame index to capture.
        frame: u64,
        /// Frames to wait before re-emitting the copy.
        delay: u64,
    },
    /// Byzantine corruption: XOR bit `bit` of a body byte of the `nth`
    /// outgoing [`Msg::ShardDone`](crate::wire::Msg) frame (counted among
    /// ShardDone frames only, not all frames), then **recompute and re-seal
    /// the CRC trailer** over the corrupted payload. The frame arrives
    /// CRC-valid: the wire layer provably cannot catch it, which is exactly
    /// the fault class the v4 shard attestation exists for. `offset` skips
    /// the tag byte, so the frame still decodes as a ShardDone.
    LieShardDone {
        /// Index among outgoing ShardDone frames (0 = the first).
        nth: u64,
        /// Byte offset into the payload past the tag byte (modulo its
        /// length).
        offset: u64,
        /// Bit to flip (taken modulo 8).
        bit: u8,
    },
}

impl ChaosAction {
    /// The outgoing-frame index this action triggers on, if write-side.
    fn write_frame_index(&self) -> Option<u64> {
        match self {
            ChaosAction::FlipBit { frame, .. }
            | ChaosAction::Truncate { frame, .. }
            | ChaosAction::Duplicate { frame }
            | ChaosAction::DropMidFrame { frame, .. }
            | ChaosAction::StallWrite { frame, .. }
            | ChaosAction::ReplayFrame { frame, .. } => Some(*frame),
            ChaosAction::StallRead { .. }
            | ChaosAction::DropRead { .. }
            | ChaosAction::LieShardDone { .. } => None,
        }
    }
}

/// A deterministic schedule of transport faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The scheduled faults. Each fires at most once.
    pub actions: Vec<ChaosAction>,
}

impl ChaosPlan {
    /// The empty plan: a [`ChaosStream`] carrying it is a transparent
    /// passthrough.
    #[must_use]
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// No faults scheduled?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Derives the CI smoke plan from a seed: **one corrupt frame** (a
    /// payload bit-flip the CRC must catch), **one stalled frame**
    /// (0.3–1 s), and **one connection drop mid-frame** (a worker death,
    /// as the coordinator sees it), each at a seed-determined outgoing
    /// frame in `1..=5` (never frame 0 — the `Hello` must land so the
    /// fleet raises). Deterministic per seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let flip = ChaosAction::FlipBit {
            frame: 1 + rng.gen_range(0u64..5),
            offset: rng.gen_range(0u64..64),
            bit: rng.gen_range(0u8..8),
        };
        let stall = ChaosAction::StallWrite {
            frame: 1 + rng.gen_range(0u64..5),
            millis: 300 + rng.gen_range(0u64..700),
        };
        let drop = ChaosAction::DropMidFrame {
            frame: 1 + rng.gen_range(0u64..5),
            keep: rng.gen_range(0u64..16),
        };
        ChaosPlan {
            actions: vec![flip, stall, drop],
        }
    }

    /// Parses a plan from the [`ENV_CHAOS_PLAN`] mini-grammar: actions
    /// separated by commas/whitespace, fields by colons —
    ///
    /// ```text
    /// flip:FRAME:OFFSET:BIT    payload bit-flip in outgoing frame FRAME
    /// trunc:FRAME:KEEP         truncate outgoing frame FRAME to KEEP bytes
    /// dup:FRAME                duplicate outgoing frame FRAME
    /// drop:FRAME[:KEEP]        send KEEP bytes (default 0), kill the link
    /// stall:FRAME:MS           sleep MS ms before outgoing frame FRAME
    /// rstall:BYTES:MS          sleep MS ms at incoming byte BYTES
    /// rdrop:BYTES              kill the link after BYTES incoming bytes
    /// ldup:FRAME:DELAY         re-emit frame FRAME after DELAY more frames
    /// lie:NTH:OFFSET:BIT       corrupt the NTH ShardDone body, re-seal CRC
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut actions = Vec::new();
        for token in text.split([',', ' ']).filter(|t| !t.is_empty()) {
            let mut parts = token.split(':');
            let kind = parts.next().unwrap_or("");
            let mut num = |what: &str| -> Result<u64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("chaos action `{token}`: missing {what}"))?
                    .parse::<u64>()
                    .map_err(|e| format!("chaos action `{token}`: bad {what}: {e}"))
            };
            let action = match kind {
                "flip" => ChaosAction::FlipBit {
                    frame: num("frame")?,
                    offset: num("offset")?,
                    bit: (num("bit")? % 8) as u8,
                },
                "trunc" => ChaosAction::Truncate {
                    frame: num("frame")?,
                    keep: num("keep")?,
                },
                "dup" => ChaosAction::Duplicate {
                    frame: num("frame")?,
                },
                "drop" => ChaosAction::DropMidFrame {
                    frame: num("frame")?,
                    keep: num("keep").unwrap_or(0),
                },
                "stall" => ChaosAction::StallWrite {
                    frame: num("frame")?,
                    millis: num("ms")?,
                },
                "rstall" => ChaosAction::StallRead {
                    after_bytes: num("bytes")?,
                    millis: num("ms")?,
                },
                "rdrop" => ChaosAction::DropRead {
                    after_bytes: num("bytes")?,
                },
                "ldup" => ChaosAction::ReplayFrame {
                    frame: num("frame")?,
                    delay: num("delay")?,
                },
                "lie" => ChaosAction::LieShardDone {
                    nth: num("nth")?,
                    offset: num("offset")?,
                    bit: (num("bit")? % 8) as u8,
                },
                other => return Err(format!("unknown chaos action kind `{other}` in `{token}`")),
            };
            actions.push(action);
        }
        Ok(ChaosPlan { actions })
    }

    /// The env-supplied plan, **armed at most once per process**:
    /// [`ENV_CHAOS_PLAN`] (parsed) wins over [`ENV_CHAOS_SEED`]
    /// (derived); the first call consumes the arming, every later call
    /// returns the empty plan. A malformed env plan panics — a chaos test
    /// asking for faults must never silently run clean.
    ///
    /// # Panics
    ///
    /// Panics when `NVFI_CHAOS_PLAN` does not parse or `NVFI_CHAOS_SEED`
    /// is not a u64.
    #[must_use]
    pub fn from_env() -> Self {
        static ARMED: AtomicBool = AtomicBool::new(false);
        let configured =
            std::env::var(ENV_CHAOS_PLAN).is_ok() || std::env::var(ENV_CHAOS_SEED).is_ok();
        if !configured || ARMED.swap(true, Ordering::SeqCst) {
            return ChaosPlan::none();
        }
        if let Ok(text) = std::env::var(ENV_CHAOS_PLAN) {
            return ChaosPlan::parse(&text)
                .unwrap_or_else(|e| panic!("{ENV_CHAOS_PLAN} does not parse: {e}"));
        }
        let seed = std::env::var(ENV_CHAOS_SEED)
            .expect("checked above")
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("{ENV_CHAOS_SEED} must be a u64: {e}"));
        ChaosPlan::from_seed(seed)
    }
}

/// A `Read + Write` wrapper that injects the faults of a [`ChaosPlan`]
/// into the wrapped stream. With an empty plan it is a transparent
/// passthrough (no buffering, no overhead).
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: ChaosPlan,
    /// Outgoing frames completed (flush count).
    frames_written: u64,
    /// Outgoing `ShardDone` frames completed (the `lie` verb's index).
    shard_frames: u64,
    /// Incoming bytes delivered.
    bytes_read: u64,
    /// The outgoing frame currently being assembled (between flushes).
    wbuf: Vec<u8>,
    /// Captured frames awaiting late re-emission: `(emit once
    /// frames_written reaches this, bytes)`.
    replay: Vec<(u64, Vec<u8>)>,
    /// Set once a drop action fires; every later I/O call fails.
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: ChaosPlan) -> Self {
        ChaosStream {
            inner,
            plan,
            frames_written: 0,
            shard_frames: 0,
            bytes_read: 0,
            wbuf: Vec::new(),
            replay: Vec::new(),
            dead: false,
        }
    }

    /// Wraps `inner` under the (once-armed) env plan — the hook the worker
    /// session entry points use. See [`ChaosPlan::from_env`].
    pub fn wrap_env(inner: S) -> Self {
        ChaosStream::new(inner, ChaosPlan::from_env())
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn dead_err() -> io::Error {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "chaos: connection deliberately dropped",
        )
    }

    /// Pops every write-side action scheduled for the current frame.
    fn take_write_actions(&mut self) -> Vec<ChaosAction> {
        let frame = self.frames_written;
        let mut hit = Vec::new();
        self.plan.actions.retain(|a| {
            if a.write_frame_index() == Some(frame) {
                hit.push(a.clone());
                false
            } else {
                true
            }
        });
        hit
    }

    /// Applies a pending [`ChaosAction::LieShardDone`] if `frame` is the
    /// targeted outgoing `ShardDone` frame: flips one body bit past the tag
    /// byte, then **recomputes the CRC trailer** so the corruption survives
    /// the wire layer's integrity check.
    fn apply_lie(&mut self, frame: &mut [u8]) {
        // frame := len:u32 | payload (tag + body) | crc:u32
        if frame.len() < 9 || frame[4] != crate::wire::TAG_SHARD_DONE {
            return;
        }
        let nth = self.shard_frames;
        self.shard_frames += 1;
        let mut fired: Option<(u64, u8)> = None;
        self.plan.actions.retain(|a| match *a {
            ChaosAction::LieShardDone {
                nth: n,
                offset,
                bit,
            } if n == nth => {
                fired = Some((offset, bit));
                false
            }
            _ => true,
        });
        let Some((offset, bit)) = fired else {
            return;
        };
        let payload_len = frame.len() - 8;
        if payload_len < 2 {
            return;
        }
        // Skip the tag byte: the frame must still decode as a ShardDone for
        // the lie to reach the attestation check rather than a BadTag.
        let idx = 5 + (offset as usize % (payload_len - 1));
        frame[idx] ^= 1 << (bit % 8);
        let crc = crate::codec::crc32(&frame[4..4 + payload_len]);
        let at = frame.len() - 4;
        frame[at..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Emits captured [`ChaosAction::ReplayFrame`] copies that have waited
    /// out their delay.
    fn emit_due_replays(&mut self) -> io::Result<()>
    where
        S: Write,
    {
        let now = self.frames_written;
        let mut due: Vec<Vec<u8>> = Vec::new();
        self.replay.retain_mut(|(at, bytes)| {
            if *at <= now {
                due.push(std::mem::take(bytes));
                false
            } else {
                true
            }
        });
        for bytes in due {
            self.inner.write_all(&bytes)?;
        }
        Ok(())
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_err());
        }
        if self.plan.is_empty() && self.wbuf.is_empty() {
            return self.inner.write(buf);
        }
        // Assemble the frame; faults are applied at the flush boundary.
        self.wbuf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        let actions = self.take_write_actions();
        let mut frame = std::mem::take(&mut self.wbuf);
        self.frames_written += 1;
        // Tag-predicated, not frame-indexed: fires on the Nth ShardDone.
        self.apply_lie(&mut frame);
        if actions.is_empty() && self.replay.is_empty() {
            if !frame.is_empty() {
                self.inner.write_all(&frame)?;
            }
            return self.inner.flush();
        }
        let mut keep = frame.len();
        let mut drop_after = false;
        let mut copies = 1usize;
        let mut replay_delay: Option<u64> = None;
        for action in actions {
            match action {
                ChaosAction::StallWrite { millis, .. } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                ChaosAction::FlipBit { offset, bit, .. } => {
                    // Corrupt payload or CRC bytes, never the 4-byte length
                    // prefix: a lying length would hang the peer instead of
                    // letting its CRC check *detect* the corruption.
                    if frame.len() > 4 {
                        let span = frame.len() - 4;
                        let idx = 4 + (offset as usize % span);
                        frame[idx] ^= 1 << (bit % 8);
                    }
                }
                ChaosAction::Truncate { keep: k, .. } => keep = keep.min(k as usize),
                ChaosAction::DropMidFrame { keep: k, .. } => {
                    keep = keep.min(k as usize);
                    drop_after = true;
                }
                ChaosAction::Duplicate { .. } => copies = 2,
                ChaosAction::ReplayFrame { delay, .. } => replay_delay = Some(delay),
                ChaosAction::StallRead { .. }
                | ChaosAction::DropRead { .. }
                | ChaosAction::LieShardDone { .. } => {}
            }
        }
        if drop_after {
            let _ = self.inner.write_all(&frame[..keep]);
            let _ = self.inner.flush();
            self.dead = true;
            return Err(Self::dead_err());
        }
        for _ in 0..copies {
            self.inner.write_all(&frame[..keep])?;
        }
        if let Some(delay) = replay_delay {
            // Capture the frame as delivered; re-emitted once `delay` more
            // frames have been flushed.
            self.replay
                .push((self.frames_written + delay, frame[..keep].to_vec()));
        }
        self.emit_due_replays()?;
        self.inner.flush()
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_err());
        }
        let pos = self.bytes_read;
        // Fire at most one read-side action per call, earliest-offset first.
        let mut stall: Option<u64> = None;
        let mut drop_now = false;
        self.plan.actions.retain(|a| match *a {
            ChaosAction::StallRead {
                after_bytes,
                millis,
            } if pos >= after_bytes => {
                stall = Some(millis);
                false
            }
            ChaosAction::DropRead { after_bytes } if pos >= after_bytes => {
                drop_now = true;
                false
            }
            _ => true,
        });
        if let Some(millis) = stall {
            std::thread::sleep(Duration::from_millis(millis));
        }
        if drop_now {
            self.dead = true;
            return Err(Self::dead_err());
        }
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex: reads from a transcript, records writes.
    #[derive(Default)]
    struct Mem {
        wrote: Vec<u8>,
    }
    impl Write for Mem {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.wrote.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Read for Mem {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }

    fn frames(plan: ChaosPlan, payloads: &[&[u8]]) -> (Vec<u8>, Option<io::Error>) {
        let mut s = ChaosStream::new(Mem::default(), plan);
        for p in payloads {
            if let Err(e) = crate::wire::write_frame(&mut s, p) {
                return (s.inner.wrote, Some(e));
            }
        }
        (s.inner.wrote, None)
    }

    #[test]
    fn empty_plan_is_a_passthrough() {
        let (wrote, err) = frames(ChaosPlan::none(), &[b"abc", b"defg"]);
        assert!(err.is_none());
        let mut clean = Vec::new();
        crate::wire::write_frame(&mut clean, b"abc").unwrap();
        crate::wire::write_frame(&mut clean, b"defg").unwrap();
        assert_eq!(wrote, clean);
    }

    #[test]
    fn flip_corrupts_exactly_one_bit_of_the_target_frame() {
        let plan = ChaosPlan::parse("flip:1:2:7").unwrap();
        let (wrote, err) = frames(plan, &[b"aaaa", b"bbbb"]);
        assert!(err.is_none());
        let mut clean = Vec::new();
        crate::wire::write_frame(&mut clean, b"aaaa").unwrap();
        crate::wire::write_frame(&mut clean, b"bbbb").unwrap();
        let diff: Vec<usize> = (0..clean.len()).filter(|&i| clean[i] != wrote[i]).collect();
        assert_eq!(diff.len(), 1, "exactly one byte differs");
        assert!(diff[0] >= clean.len() - 8, "the flip lands in frame 1");
        assert_eq!(clean[diff[0]] ^ wrote[diff[0]], 1 << 7);
    }

    #[test]
    fn drop_mid_frame_kills_the_stream() {
        let plan = ChaosPlan::parse("drop:1:3").unwrap();
        let (wrote, err) = frames(plan, &[b"aaaa", b"bbbb", b"cccc"]);
        assert_eq!(err.unwrap().kind(), io::ErrorKind::BrokenPipe);
        let mut clean = Vec::new();
        crate::wire::write_frame(&mut clean, b"aaaa").unwrap();
        // Frame 0 whole, then exactly 3 bytes of frame 1, nothing else.
        assert_eq!(wrote.len(), clean.len() + 3);
        assert_eq!(&wrote[..clean.len()], &clean[..]);
    }

    #[test]
    fn duplicate_delivers_the_frame_twice() {
        let plan = ChaosPlan::parse("dup:0").unwrap();
        let (wrote, err) = frames(plan, &[b"xy"]);
        assert!(err.is_none());
        let mut clean = Vec::new();
        crate::wire::write_frame(&mut clean, b"xy").unwrap();
        assert_eq!(wrote.len(), clean.len() * 2);
        assert_eq!(&wrote[..clean.len()], &clean[..]);
        assert_eq!(&wrote[clean.len()..], &clean[..]);
    }

    #[test]
    fn truncate_keeps_the_stream_open() {
        let plan = ChaosPlan::parse("trunc:0:5").unwrap();
        let (wrote, err) = frames(plan, &[b"aaaa", b"bbbb"]);
        assert!(err.is_none(), "truncation must not kill the connection");
        let mut clean = Vec::new();
        crate::wire::write_frame(&mut clean, b"bbbb").unwrap();
        assert_eq!(&wrote[5..], &clean[..], "frame 1 follows the stump");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_survivable_classes_only() {
        for seed in 0..64u64 {
            let a = ChaosPlan::from_seed(seed);
            assert_eq!(a, ChaosPlan::from_seed(seed));
            assert_eq!(a.actions.len(), 3);
            let mut kinds = [false; 3];
            for action in &a.actions {
                match action {
                    ChaosAction::FlipBit { frame, .. } => {
                        assert!(*frame >= 1);
                        kinds[0] = true;
                    }
                    ChaosAction::StallWrite { frame, millis } => {
                        assert!(*frame >= 1 && *millis < 1000);
                        kinds[1] = true;
                    }
                    ChaosAction::DropMidFrame { frame, .. } => {
                        assert!(*frame >= 1);
                        kinds[2] = true;
                    }
                    other => panic!("seeded plans must stay survivable, got {other:?}"),
                }
            }
            assert_eq!(kinds, [true; 3]);
        }
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(ChaosPlan::parse("flip:1:2:3,dup:0").is_ok());
        assert!(ChaosPlan::parse("explode:1").is_err());
        assert!(ChaosPlan::parse("flip:1").is_err());
        assert!(ChaosPlan::parse("stall:one:2").is_err());
        assert_eq!(ChaosPlan::parse("").unwrap(), ChaosPlan::none());
    }

    #[test]
    fn lie_reseals_the_crc_so_the_wire_layer_cannot_catch_it() {
        let done = crate::wire::Msg::ShardDone {
            work_id: 4,
            start: 0,
            end: 3,
            attest: crate::wire::shard_attestation((1, 2, 3, 0), 4, 0, 3, &[1, 2, 3]),
            preds: vec![1, 2, 3],
            spans: Vec::new(),
        };
        let mut s = ChaosStream::new(Mem::default(), ChaosPlan::parse("lie:0:12:0").unwrap());
        // A non-ShardDone frame first: the lie must skip it.
        crate::wire::send(&mut s, &crate::wire::Msg::Ping).unwrap();
        crate::wire::send(&mut s, &done).unwrap();
        let wrote = s.inner.wrote;
        let mut cursor = io::Cursor::new(wrote);
        assert_eq!(
            crate::wire::recv(&mut cursor).unwrap(),
            crate::wire::Msg::Ping
        );
        // The mangled ShardDone still decodes cleanly — CRC was re-sealed —
        // but the message differs from what the worker sent.
        let lied = crate::wire::recv(&mut cursor).unwrap();
        assert_ne!(lied, done, "payload must have been mangled");
        match lied {
            crate::wire::Msg::ShardDone { attest, preds, .. } => {
                // Offset 12 lands on the attestation field, so the preds are
                // intact but the attestation no longer matches them... or the
                // recomputation over the delivered session tuple.
                assert_eq!(preds, vec![1, 2, 3]);
                assert_ne!(
                    attest,
                    crate::wire::shard_attestation((1, 2, 3, 0), 4, 0, 3, &preds)
                );
            }
            other => panic!("still a ShardDone, got {other:?}"),
        }
    }

    #[test]
    fn ldup_reemits_the_captured_frame_after_the_delay() {
        let plan = ChaosPlan::parse("ldup:0:2").unwrap();
        let (wrote, err) = frames(plan, &[b"aa", b"bb", b"cc"]);
        assert!(err.is_none());
        let mut f = Vec::new();
        for p in [&b"aa"[..], b"bb", b"cc"] {
            crate::wire::write_frame(&mut f, p).unwrap();
        }
        let one = f.len() / 3;
        // Delivery order: frame 0, 1, 2, then the late duplicate of frame 0.
        assert_eq!(wrote.len(), f.len() + one);
        assert_eq!(&wrote[..f.len()], &f[..]);
        assert_eq!(&wrote[f.len()..], &f[..one], "late duplicate of frame 0");
    }

    #[test]
    fn read_drop_fires_at_the_byte_offset() {
        struct Endless;
        impl Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(7);
                Ok(buf.len())
            }
        }
        impl Write for Endless {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = ChaosStream::new(Endless, ChaosPlan::parse("rdrop:8").unwrap());
        let mut buf = [0u8; 8];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
