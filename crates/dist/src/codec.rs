//! Checked little-endian encode/decode primitives of the wire format.
//!
//! [`Enc`] and [`Dec`] wrap the `bytes` shim's [`BytesMut`]/[`Bytes`] with
//! the two guarantees a network decoder needs on top of the shim's `try_*`
//! accessors:
//!
//! * **no panics on bad input** — every read returns a [`WireError`]
//!   instead of panicking on underflow;
//! * **length checks before allocation** — variable-length fields carry a
//!   `u64` element count that is validated against the bytes actually
//!   remaining in the frame *before* any buffer is allocated, so a corrupt
//!   count cannot OOM the process.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A malformed wire payload (distinct from socket I/O errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a fixed-size field.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A variable-length field claims more elements than the frame holds.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed byte length.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Unknown message or enum tag.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// The peer speaks a different wire version.
    Version {
        /// The peer's version (from its `Hello`).
        peer: u32,
        /// This side's [`crate::wire::WIRE_VERSION`].
        local: u32,
    },
    /// The peer's `Hello` magic is wrong (not an `nvfi-dist` endpoint).
    BadMagic(u32),
    /// A field failed validation.
    Invalid(&'static str),
    /// The payload has trailing bytes after a complete message.
    TrailingBytes(usize),
    /// The frame's CRC32 trailer does not match its payload: bits flipped
    /// in transit (or the peer pre-dates the checksummed v2 frame layout).
    Crc {
        /// The CRC stored in the frame trailer.
        stored: u32,
        /// The CRC computed over the received payload.
        computed: u32,
    },
    /// A shard reply's attestation does not match what the coordinator
    /// computes over the assigned session artifacts and the delivered
    /// predictions (wire v4). Unlike [`WireError::Crc`] this survives a
    /// valid CRC trailer: it names a peer that *executed* against the wrong
    /// artifacts (a stale cached plan or weight image) or whose payload was
    /// corrupted after the CRC was sealed.
    Integrity {
        /// The attestation the coordinator expects for this shard.
        expected: u64,
        /// The attestation the reply carried.
        got: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "frame truncated while decoding {what}"),
            WireError::BadLength {
                what,
                claimed,
                remaining,
            } => write!(
                f,
                "{what} claims {claimed} bytes but only {remaining} remain in the frame"
            ),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#x}"),
            WireError::Version { peer, local } => write!(
                f,
                "wire version mismatch: peer speaks v{peer}, this side speaks v{local} \
                 (rebuild the older endpoint)"
            ),
            WireError::BadMagic(m) => {
                write!(f, "bad hello magic {m:#010x}: not an nvfi-dist endpoint")
            }
            WireError::Invalid(what) => write!(f, "invalid wire field: {what}"),
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete message")
            }
            WireError::Crc { stored, computed } => write!(
                f,
                "frame CRC mismatch: trailer says {stored:#010x}, payload hashes to \
                 {computed:#010x} (bits flipped in transit, or a pre-v2 peer)"
            ),
            WireError::Integrity { expected, got } => write!(
                f,
                "shard attestation mismatch: expected {expected:#018x}, reply attests \
                 {got:#018x} (worker executed against stale artifacts, or the payload \
                 was corrupted after the CRC was sealed)"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// The CRC32 lookup table (IEEE 802.3 reflected polynomial `0xEDB88320`),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // nvfi-lint: allow(decode-panic) — i < 256 loop bound, const-eval
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3, the zlib/Ethernet polynomial) of `bytes` — the
/// per-frame integrity check of the v2 wire format, hand-rolled because the
/// fabric takes no external dependencies.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // nvfi-lint: allow(decode-panic) — index masked to 0..256
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Encoder: a growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct Enc {
    buf: BytesMut,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.into_vec()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian i32.
    pub fn i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends an f64 as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a length-prefixed i8 slice (count + raw bytes).
    pub fn i8_slice(&mut self, v: &[i8]) {
        self.buf.put_u64_le(v.len() as u64);
        // i8 -> u8 is a bit-pattern reinterpretation; chunk through a small
        // stack buffer to avoid a full-size temporary copy.
        let mut chunk = [0u8; 4096];
        for part in v.chunks(chunk.len()) {
            for (dst, &src) in chunk.iter_mut().zip(part) {
                *dst = src as u8;
            }
            // nvfi-lint: allow(decode-panic) — part.len() <= chunk.len() by chunks()
            self.buf.put_slice(&chunk[..part.len()]);
        }
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn u8_slice(&mut self, v: &[u8]) {
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed u32 word list.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.buf.put_u64_le(v.len() as u64);
        for &w in v {
            self.buf.put_u32_le(w);
        }
    }

    /// Appends a length-prefixed u64 list (content hashes on the wire).
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.buf.put_u64_le(v.len() as u64);
        for &w in v {
            self.buf.put_u64_le(w);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v.as_bytes());
    }
}

/// Decoder: a checked little-endian read cursor over one frame payload.
#[derive(Debug)]
pub struct Dec {
    buf: Bytes,
}

impl Dec {
    /// Wraps a frame payload.
    #[must_use]
    pub fn new(payload: Vec<u8>) -> Self {
        Dec {
            buf: Bytes::from_vec(payload),
        }
    }

    /// Bytes left to decode.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        self.buf.try_get_u8().ok_or(WireError::Truncated { what })
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        self.buf
            .try_get_u32_le()
            .ok_or(WireError::Truncated { what })
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        self.buf
            .try_get_u64_le()
            .ok_or(WireError::Truncated { what })
    }

    /// Reads a little-endian i32.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        self.buf
            .try_get_i32_le()
            .ok_or(WireError::Truncated { what })
    }

    /// Reads a little-endian i64.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        self.buf
            .try_get_i64_le()
            .ok_or(WireError::Truncated { what })
    }

    /// Reads an f64 from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        self.u64(what).map(f64::from_bits)
    }

    /// Reads a `u64` element count for `elem_bytes`-sized elements,
    /// validating it against the bytes remaining **before** anything is
    /// allocated.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on underflow, [`WireError::BadLength`] if
    /// the claimed payload exceeds the remaining frame.
    fn checked_len(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u64(what)?;
        let claimed = count.saturating_mul(elem_bytes as u64);
        if claimed > self.remaining() as u64 {
            return Err(WireError::BadLength {
                what,
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(count as usize)
    }

    /// Reads a length-prefixed i8 slice.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`] on a short or
    /// lying frame.
    pub fn i8_slice(&mut self, what: &'static str) -> Result<Vec<i8>, WireError> {
        let n = self.checked_len(what, 1)?;
        let raw = self
            .buf
            .try_take_bytes(n)
            .ok_or(WireError::Truncated { what })?;
        Ok(raw.iter().map(|&b| b as i8).collect())
    }

    /// Reads a length-prefixed raw byte slice.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`] on a short or
    /// lying frame.
    pub fn u8_slice(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.checked_len(what, 1)?;
        let raw = self
            .buf
            .try_take_bytes(n)
            .ok_or(WireError::Truncated { what })?;
        Ok(raw.to_vec())
    }

    /// Reads a length-prefixed u32 word list.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`] on a short or
    /// lying frame.
    pub fn u32_slice(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.checked_len(what, 4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed u64 list.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`] on a short or
    /// lying frame.
    pub fn u64_slice(&mut self, what: &'static str) -> Result<Vec<u64>, WireError> {
        let n = self.checked_len(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string (lossy on invalid UTF-8 — error
    /// messages must never fail to decode).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`] on a short or
    /// lying frame.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.checked_len(what, 1)?;
        let raw = self
            .buf
            .try_take_bytes(n)
            .ok_or(WireError::Truncated { what })?;
        Ok(String::from_utf8_lossy(raw).into_owned())
    }

    /// Asserts the payload was fully consumed — a frame must parse exactly.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i32(-12);
        e.i64(i64::MIN);
        e.f64(187.5e6);
        let mut d = Dec::new(e.into_vec());
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(d.i32("d").unwrap(), -12);
        assert_eq!(d.i64("e").unwrap(), i64::MIN);
        assert_eq!(d.f64("f").unwrap(), 187.5e6);
        d.finish().unwrap();
    }

    #[test]
    fn slices_roundtrip() {
        let mut e = Enc::new();
        e.i8_slice(&[-128, -1, 0, 1, 127]);
        e.u32_slice(&[1, 2, 3]);
        e.str("hello worker");
        let mut d = Dec::new(e.into_vec());
        assert_eq!(d.i8_slice("a").unwrap(), vec![-128, -1, 0, 1, 127]);
        assert_eq!(d.u32_slice("b").unwrap(), vec![1, 2, 3]);
        assert_eq!(d.str("c").unwrap(), "hello worker");
        d.finish().unwrap();
    }

    #[test]
    fn large_i8_slice_roundtrips_across_chunks() {
        // Exercise the 4 KiB chunked encode path with a non-aligned length.
        let big: Vec<i8> = (0..10_000).map(|i| (i % 251) as i8).collect();
        let mut e = Enc::new();
        e.i8_slice(&big);
        let mut d = Dec::new(e.into_vec());
        assert_eq!(d.i8_slice("big").unwrap(), big);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(1234);
        let full = e.into_vec();
        for cut in 0..full.len() {
            let mut d = Dec::new(full[..cut].to_vec());
            assert_eq!(d.u64("x"), Err(WireError::Truncated { what: "x" }));
        }
    }

    #[test]
    fn lying_length_rejected_before_allocation() {
        // A count claiming ~16 EiB of i8 payload must be rejected by the
        // remaining-bytes check, not attempted.
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let mut d = Dec::new(e.into_vec());
        assert!(matches!(
            d.i8_slice("payload"),
            Err(WireError::BadLength { .. })
        ));
        // Same for u32 lists, where the element size multiplies.
        let mut e = Enc::new();
        e.u64(u64::MAX / 3);
        let mut d = Dec::new(e.into_vec());
        assert!(matches!(
            d.u32_slice("words"),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value and a couple of anchors, so a
        // table or loop bug cannot silently redefine "integrity".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"nvfi"), crc32(b"nvfi"));
        assert_ne!(crc32(b"nvfi"), crc32(b"nvfj"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let mut d = Dec::new(e.into_vec());
        assert_eq!(d.u8("only").unwrap(), 1);
        assert_eq!(d.finish(), Err(WireError::TrailingBytes(1)));
    }
}
