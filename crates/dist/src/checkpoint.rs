//! Durable campaign progress: a versioned checkpoint file the coordinator
//! rewrites as shards complete, so a killed-and-restarted coordinator
//! resumes the campaign — re-shipping artifacts to a fresh fleet but
//! **redoing only the shards that never finished** — and still merges
//! records bit-identical to an uninterrupted run.
//!
//! Merging is by `(work item, shard range)`, never by arrival or recovery
//! order, so replaying checkpointed predictions into the result slots is
//! exactly as good as having computed them this run.
//!
//! # File format (version 1)
//!
//! ```text
//! magic    "NVFC"                      4 bytes
//! version  u32 LE                      = 1
//! fingerprint u64 LE                   campaign identity (see below)
//! entries  u64 LE                      completed-shard count
//!   per entry:
//!     work_id u32, start u32, end u32  the (work item, shard range) key
//!     preds   u64 length + bytes       predicted classes for start..end
//! crc32    u32 LE                      over every preceding byte
//! ```
//!
//! The **fingerprint** hashes everything that determines the schedule and
//! its answers: the encoded session frames (plan + weights + evaluation
//! set), the task list, and each work item's full fault program. A
//! checkpoint whose fingerprint does not match the restarted campaign is
//! ignored and overwritten — resuming someone else's shards would splice
//! wrong predictions into the merge.
//!
//! Writes go to a `.tmp` sibling and are renamed into place, so a
//! coordinator killed mid-write leaves either the old checkpoint or the
//! new one, never a torn file; a torn or corrupt file (bad magic, version,
//! or CRC) loads as "no checkpoint" rather than an error.

use std::fs;
use std::io;
use std::path::Path;

use crate::codec::{crc32, Dec, Enc};

/// Checkpoint file magic: the bytes `NVFC`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"NVFC";

/// Checkpoint format version. Bump on any layout change; a mismatched
/// version loads as "no checkpoint".
pub const CHECKPOINT_VERSION: u32 = 1;

/// One completed shard: the `(work item, image range)` key and its
/// predictions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Work-item index (0 = baseline).
    pub work_id: u32,
    /// First image of the shard.
    pub start: u32,
    /// One past the last image of the shard.
    pub end: u32,
    /// Predicted classes for `start..end`.
    pub preds: Vec<u8>,
}

/// A campaign's durable progress: its identity fingerprint and every
/// completed shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Campaign identity hash (see the module docs).
    pub fingerprint: u64,
    /// Completed shards, in completion order (order is irrelevant to the
    /// merge, which keys on `(work_id, start, end)`).
    pub entries: Vec<CheckpointEntry>,
}

impl Checkpoint {
    /// An empty checkpoint for a campaign with identity `fingerprint`.
    #[must_use]
    pub fn new(fingerprint: u64) -> Self {
        Checkpoint {
            fingerprint,
            entries: Vec::new(),
        }
    }

    /// Serializes the checkpoint (including the CRC trailer).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(u32::from_le_bytes(CHECKPOINT_MAGIC));
        e.u32(CHECKPOINT_VERSION);
        e.u64(self.fingerprint);
        e.u64(self.entries.len() as u64);
        for entry in &self.entries {
            e.u32(entry.work_id);
            e.u32(entry.start);
            e.u32(entry.end);
            e.u8_slice(&entry.preds);
        }
        let mut bytes = e.into_vec();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses checkpoint bytes. `None` on any corruption — bad magic,
    /// unknown version, failed CRC, truncation, trailing bytes. A damaged
    /// checkpoint costs redone shards, never a wrong merge.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        if bytes.len() < 4 {
            return None;
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().ok()?);
        if stored != crc32(body) {
            return None;
        }
        let mut d = Dec::new(body.to_vec());
        if d.u32("magic").ok()? != u32::from_le_bytes(CHECKPOINT_MAGIC) {
            return None;
        }
        if d.u32("version").ok()? != CHECKPOINT_VERSION {
            return None;
        }
        let fingerprint = d.u64("fingerprint").ok()?;
        let count = d.u64("entry count").ok()?;
        // Each entry is at least its 20 fixed bytes; an absurd count must
        // not drive a huge allocation.
        if count.saturating_mul(20) > d.remaining() as u64 {
            return None;
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let work_id = d.u32("work id").ok()?;
            let start = d.u32("start").ok()?;
            let end = d.u32("end").ok()?;
            if start > end {
                return None;
            }
            let preds = d.u8_slice("preds").ok()?;
            if preds.len() as u64 != u64::from(end - start) {
                return None;
            }
            entries.push(CheckpointEntry {
                work_id,
                start,
                end,
                preds,
            });
        }
        d.finish().ok()?;
        Some(Checkpoint {
            fingerprint,
            entries,
        })
    }

    /// Atomically persists the checkpoint: written to `<path>.tmp`, then
    /// renamed over `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors (unwritable directory, disk full).
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, path)
    }

    /// Loads the checkpoint at `path`. `None` when the file is missing or
    /// corrupt (see [`Checkpoint::decode`]).
    #[must_use]
    pub fn load(path: &Path) -> Option<Checkpoint> {
        Checkpoint::decode(&fs::read(path).ok()?)
    }

    /// Removes the checkpoint (and any stale `.tmp` sibling) after a
    /// campaign completes — a finished campaign must not donate shards to
    /// an unrelated later run at the same path.
    pub fn remove(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(tmp_path(path));
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::path::PathBuf::from(tmp)
}

/// FNV-1a 64-bit hasher for the campaign fingerprint: tiny, dependency-free
/// and stable across platforms and runs (unlike `DefaultHasher`, whose
/// output is explicitly unspecified between releases).
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 {
            state: 0xCBF2_9CE4_8422_2325,
        }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// A hasher pre-seeded with the wire protocol and checkpoint format
    /// versions. Campaign fingerprints derive from this, so a resumed
    /// coordinator can never replay shards recorded under an older
    /// protocol: bumping [`crate::wire::WIRE_VERSION`] or
    /// [`CHECKPOINT_VERSION`] changes every fingerprint, and the stale
    /// checkpoint reads as "a different campaign".
    #[must_use]
    pub fn campaign_seed() -> Self {
        let mut h = Fnv64::new();
        h.write_u64(u64::from(crate::wire::WIRE_VERSION));
        h.write_u64(u64::from(CHECKPOINT_VERSION));
        h
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a u64 (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            entries: vec![
                CheckpointEntry {
                    work_id: 0,
                    start: 0,
                    end: 4,
                    preds: vec![1, 2, 3, 4],
                },
                CheckpointEntry {
                    work_id: 3,
                    start: 8,
                    end: 10,
                    preds: vec![9, 9],
                },
            ],
        }
    }

    #[test]
    fn roundtrips_bit_identically() {
        let cp = sample();
        assert_eq!(Checkpoint::decode(&cp.encode()), Some(cp));
        let empty = Checkpoint::new(7);
        assert_eq!(Checkpoint::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x04;
            assert_eq!(
                Checkpoint::decode(&corrupt),
                None,
                "flip at byte {i} must fail the CRC"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(Checkpoint::decode(&bytes[..cut]), None);
        }
    }

    #[test]
    fn wrong_version_is_ignored() {
        let mut cp = sample().encode();
        // Patch the version field (bytes 4..8) and re-seal the CRC so only
        // the version check can reject it.
        cp[4] = 0xFF;
        let body_len = cp.len() - 4;
        let crc = crc32(&cp[..body_len]).to_le_bytes();
        cp[body_len..].copy_from_slice(&crc);
        assert_eq!(Checkpoint::decode(&cp), None);
    }

    #[test]
    fn store_load_remove_cycle() {
        let dir = std::env::temp_dir().join(format!("nvfi-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let cp = sample();
        cp.store(&path).unwrap();
        assert_eq!(Checkpoint::load(&path), Some(cp.clone()));
        // Overwrite with more progress; the rename is atomic.
        let mut more = cp;
        more.entries.push(CheckpointEntry {
            work_id: 5,
            start: 0,
            end: 1,
            preds: vec![0],
        });
        more.store(&path).unwrap();
        assert_eq!(Checkpoint::load(&path), Some(more));
        Checkpoint::remove(&path);
        assert_eq!(Checkpoint::load(&path), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write(b"abc");
        // Known FNV-1a 64 vector for "abc".
        assert_eq!(a.finish(), 0xE71F_A219_0541_574B);
        let mut b = Fnv64::new();
        b.write(b"cba");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn campaign_seed_folds_in_both_format_versions() {
        // The seed differs from the plain offset basis (so fingerprints are
        // version-qualified) and equals exactly "basis + wire version +
        // checkpoint version" (so a bump of either invalidates checkpoints).
        let seeded = Fnv64::campaign_seed();
        assert_ne!(seeded.finish(), Fnv64::new().finish());
        let mut manual = Fnv64::new();
        manual.write_u64(u64::from(crate::wire::WIRE_VERSION));
        manual.write_u64(u64::from(CHECKPOINT_VERSION));
        assert_eq!(seeded.finish(), manual.finish());
        // Deterministic across calls.
        assert_eq!(
            Fnv64::campaign_seed().finish(),
            Fnv64::campaign_seed().finish()
        );
        // And sensitive to the version values: hashing different versions
        // yields a different seed.
        let mut bumped = Fnv64::new();
        bumped.write_u64(u64::from(crate::wire::WIRE_VERSION) + 1);
        bumped.write_u64(u64::from(CHECKPOINT_VERSION));
        assert_ne!(seeded.finish(), bumped.finish());
    }
}
