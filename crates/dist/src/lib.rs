//! **`nvfi-dist`** — the multi-process campaign fabric: a coordinator that
//! spreads one fault-injection campaign over a pool of worker *processes*
//! (local subprocesses or cross-host peers), each of which drives its own
//! local [`nvfi::DevicePool`]. The in-process two-level scheduler of
//! [`nvfi::campaign::Campaign::run`] saturates one process's threads; this
//! crate is the next scaling axis the ROADMAP names — one compiled design
//! shipped once, work sharded wide, results merged deterministically, the
//! shape cloud-FPGA fault-injection studies (DeepStrike) and multi-board
//! emulation engines both take.
//!
//! Everything rides on std `TcpStream` sockets (localhost for spawned
//! workers, any address for cross-host ones) and the little-endian codec of
//! the `bytes` shim — no async runtime, no serde.
//!
//! # Session lifecycle (wire v5: content-addressed sessions, attested results)
//!
//! A worker session is a strict sequence; every arrow is one or more frames
//! on the same socket:
//!
//! ```text
//! worker                          coordinator
//!   | --- Hello{version} ----------> |   (worker speaks first)
//!   | <-- Hello{version} ----------- |   (mismatch => clear error, close)
//!   | --- HaveArtifacts{ident, ...}> |   (worker identity + cached artifacts)
//!   | <-- ArtifactDelta{4 hashes} -- |   (session switch: what to run,
//!   | <-- Plan / Weights / EvalSet - |    plus ONLY the frames the worker
//!   | <-- Golden ------------------- |    is missing, in ship-bit order)
//!   | <-- Work{id, range, fault} --- |   (one frame per assigned shard)
//!   | --- Pong --------------------> |   (heartbeat between compute waves)
//!   | --- ShardDone{id, attest,..}-> |   (attested: see below)
//!   |            ...                 |
//!   | <-- ArtifactDelta ... -------- |   (next campaign: usually 0 frames)
//!   | <-- Shutdown ----------------- |   (or Goodbye{reason}: turned away)
//! ```
//!
//! Every session artifact — compiled plan, DRAM weight image, quantized
//! evaluation set, golden activation cache — is identified by a **content
//! hash** and cached on the worker across campaigns *and reconnects*. A
//! worker advertises its cache right after the hello; each
//! [`Msg::ArtifactDelta`](wire::Msg) names the four hashes of the next
//! campaign and ships only what the worker lacks, so a repeat campaign
//! over unchanged artifacts re-ships **zero** artifact bytes. Each
//! distinct artifact is serialized exactly **once per server** whatever
//! the fleet size (asserted by the [`wire::plan_serializations`] /
//! [`wire::weight_serializations`] / [`wire::eval_serializations`] /
//! [`wire::artifact_bytes_shipped`] probes); per-work-item traffic is only
//! the tiny fault program `(targets, kind, window)` plus an image range,
//! and the predictions coming back.
//!
//! # Wire format
//!
//! Frames are length-prefixed binary, all integers **little-endian**:
//!
//! ```text
//! frame   := len:u32 payload[len] crc:u32  (len <= MAX_FRAME_BYTES)
//! payload := tag:u8 body                   (tag picks the message type)
//! crc     := CRC-32 (IEEE) of payload      (since wire version 2)
//! ```
//!
//! Bodies are fixed field sequences (see [`wire::Msg`]); variable-length
//! fields carry a `u64` element count, validated against the bytes actually
//! remaining before anything is allocated, so a truncated or corrupt frame
//! is rejected with a [`WireError`] instead of a panic or an OOM. Trailing
//! bytes after a body are also rejected — a frame must parse exactly. A
//! frame whose CRC trailer does not match is a named [`WireError::Crc`]:
//! a flipped bit in transit is *diagnosed*, never silently mis-decoded.
//!
//! **Versioning rule:** [`wire::WIRE_VERSION`] is bumped on *any* change to
//! the frame layout, a message body, or an enum encoding (fault kinds,
//! execution modes). The version travels in the `Hello` exchanged before
//! anything else; both sides reject a mismatch with an error naming both
//! versions, so a stale worker binary fails fast instead of mis-decoding
//! campaign traffic.
//!
//! # Determinism
//!
//! A distributed run is **bit-identical** to the in-process
//! [`nvfi::campaign::Campaign::run`]: the coordinator quantizes the
//! evaluation split once (same [`nvfi::QuantizedEvalSet`]), workers classify
//! borrowed sub-ranges of it on identical plan-programmed devices
//! (per-image inference is independent and transient windows gate on
//! per-inference cycle numbering), and predictions are merged by `(work
//! item, shard range)` — never by arrival order. Which worker ran which
//! shard, how many workers there are, and worker deaths mid-shard (the
//! shard is requeued on a surviving worker) all leave the records
//! unchanged; `tests/dist_parity.rs` asserts each of these.
//!
//! # Failure model
//!
//! The fabric is built to survive a hostile transport and prove it: the
//! [`chaos`] module wraps any stream in a deterministic fault injector
//! (connection drops mid-frame, stalls, bit flips, truncation, duplicated
//! frames — seeded via `NVFI_CHAOS_SEED` / scripted via `NVFI_CHAOS_PLAN`),
//! and the coordinator answers every injected class: CRC-failed or
//! out-of-lifecycle frames drop the connection and requeue the shard,
//! [`Msg::Pong`](wire::Msg::Pong) heartbeats keep slow-but-alive shards
//! from timing out while [`FleetSpec::task_timeout`] kills genuinely
//! stalled ones, crashed workers reconnect with capped-backoff and are
//! **re-admitted** mid-campaign (or turned away with a versioned
//! `Goodbye`), total fleet loss either fails the campaign or degrades to
//! the bit-identical in-process run ([`OnFleetLost`]), and a killed
//! coordinator **resumes** from a CRC-sealed [`checkpoint`] redoing only
//! unfinished shards. See `crates/dist/README.md` and the [`coordinator`]
//! module docs for the full failure model.
//!
//! Since wire v4 the fabric also survives **wrong answers**, which a CRC
//! cannot catch: every `ShardDone` carries a [`wire::shard_attestation`]
//! binding the predictions to the content hashes of the artifacts the worker
//! actually executed against (a stale cache or post-CRC corruption is a named
//! [`WireError::Integrity`], not a silent wrong merge); the server silently
//! **audits** a configurable fraction of completed shards by re-dispatching
//! them to a different worker ([`FleetSpec::audit_rate`] — the baseline
//! shard is always audited) and arbitrates any mismatch with an
//! authoritative in-process re-execution; and each worker identity carries a
//! [`Trust`] reputation (`Healthy → Suspect → Quarantined`, with audited
//! probation after re-admission), so a worker caught lying is drained, its
//! unverified shards re-checked, and every client's result stays
//! bit-identical to the in-process run.
//!
//! # Observability (wire v5)
//!
//! Wire v5 makes the fabric *watchable* without changing what it computes:
//! every `ShardDone` may carry a compact span summary (`worker.wave` /
//! `worker.execute` timings measured on the worker, capped at
//! [`wire::MAX_SHARD_SPANS`]) which the coordinator re-bases into its own
//! per-shard timeline, and `Msg::StatsQuery` / `Msg::Stats` let any client
//! poll the server's Prometheus rendering over the wire ([`query_stats`]).
//! The span summary is **advisory** and deliberately excluded from the
//! shard attestation: a worker that lies about a duration can skew a
//! timeline, never a merged record. Tracing is armed by `NVFI_TRACE`
//! (chrome-trace export path) and is inert — no clock reads — when unset;
//! see `nvfi_obs` and the *Observability* section of
//! `crates/dist/README.md` for the span taxonomy and metric names.
//!
//! # Entry points
//!
//! * [`CampaignServer`] — the persistent multiplexing campaign server: one
//!   long-lived worker fleet serving many concurrent client campaigns,
//!   fair-share interleaved, behind a result cache keyed by
//!   `(plan, fault config, eval set)` content hashes. Each
//!   [`CampaignServer::submit`] returns a [`ClientHandle`] streaming
//!   per-shard [`Progress`]; [`ServerStats`] counts submissions, cache
//!   hits, dispatches and shipped artifact frames.
//! * [`run_campaign`] — one-shot sugar over the server: raise a fleet, run
//!   one campaign, tear down; falls back to the in-process path when the
//!   fleet is empty.
//! * [`FleetSpec`] — how to raise the fleet: self-exec subprocesses
//!   ([`WorkerSpawn::SelfExec`] — re-executes the current binary, which
//!   must call [`worker::maybe_serve`] first thing in `main`), an explicit
//!   worker executable ([`WorkerSpawn::Exe`], e.g. the `nvfi_worker` bin),
//!   and/or cross-host workers attaching to a listen address.
//! * [`worker::serve`] / the `nvfi_worker` binary — the worker side; its
//!   `serve_forever` loop holds the artifact cache across reconnects and
//!   idle-waits for a coordinator (bounded by `NVFI_WORKER_IDLE_EXIT`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod codec;
pub mod coordinator;
pub mod server;
pub mod trust;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosPlan, ChaosStream};
pub use checkpoint::Checkpoint;
pub use codec::WireError;
pub use coordinator::{run_campaign, DistError, FleetSpec, OnFleetLost, WorkerSpawn};
pub use server::{query_stats, CampaignServer, ClientHandle, Progress, ServerStats};
pub use trust::Trust;
pub use worker::ServeEnd;
