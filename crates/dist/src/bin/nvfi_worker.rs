//! Standalone campaign worker: connects to a coordinator and serves
//! sessions (hello → plan/weights → eval set → work items → shutdown) in a
//! loop — after a clean shutdown it reconnects for the next campaign of the
//! same experiment, and exits once the coordinator stays gone.
//!
//! ```text
//! nvfi_worker <coordinator-addr>      # e.g. nvfi_worker 10.0.0.5:7070
//! NVFI_WORKER_CONNECT=<addr> nvfi_worker
//! ```
//!
//! Run by the coordinator as a local subprocess, or by hand on another host
//! to attach to a coordinator listening on `NVFI_DIST_ADDR`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var(nvfi_dist::worker::ENV_CONNECT).ok());
    let Some(addr) = addr else {
        eprintln!(
            "usage: nvfi_worker <coordinator-addr>  (or set {})",
            nvfi_dist::worker::ENV_CONNECT
        );
        return ExitCode::FAILURE;
    };
    match nvfi_dist::worker::serve_forever(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nvfi_worker ({addr}): {e}");
            ExitCode::FAILURE
        }
    }
}
