//! Standalone campaign worker: connects to a coordinator and serves
//! sessions (hello → cache advertisement → artifact deltas → work items →
//! shutdown) in a loop — after a clean shutdown it reconnects for the next
//! campaign of the same experiment, keeping its content-addressed artifact
//! cache warm across reconnects. While no coordinator is listening it
//! idle-waits indefinitely by default; set `NVFI_WORKER_IDLE_EXIT` (in
//! seconds) to bound the wait — the process then exits once the
//! coordinator stays gone that long (cleanly if it served at least one
//! session, with an error if it never reached a coordinator at all).
//!
//! ```text
//! nvfi_worker <coordinator-addr>      # e.g. nvfi_worker 10.0.0.5:7070
//! NVFI_WORKER_CONNECT=<addr> nvfi_worker
//! NVFI_WORKER_IDLE_EXIT=30 nvfi_worker <addr>   # give up after 30s idle
//! ```
//!
//! Run by the coordinator as a local subprocess, or by hand on another host
//! to attach to a coordinator listening on `NVFI_DIST_ADDR`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var(nvfi_dist::worker::ENV_CONNECT).ok());
    let Some(addr) = addr else {
        nvfi_obs::progress::note(format!(
            "usage: nvfi_worker <coordinator-addr>  (or set {})",
            nvfi_dist::worker::ENV_CONNECT
        ));
        return ExitCode::FAILURE;
    };
    match nvfi_dist::worker::serve_forever(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            nvfi_obs::progress::note(format!("nvfi_worker ({addr}): {e}"));
            ExitCode::FAILURE
        }
    }
}
