//! The versioned, length-prefixed binary wire format of the campaign
//! fabric: frame I/O, the [`Msg`] message set, and the hello handshake.
//!
//! See the crate-level docs for the frame layout, the session lifecycle and
//! the versioning rule. Everything here is transport-agnostic: frames move
//! over any `io::Read`/`io::Write` pair (`TcpStream` in practice, in-memory
//! buffers in tests).

use std::io::{self, Read, Write};
use std::ops::Range;
use std::sync::OnceLock;

use nvfi::PlatformConfig;
use nvfi_accel::{AccelConfig, ExecMode, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::{MultId, TOTAL_MULTS};
use nvfi_obs::metrics::{self, Counter};

use crate::codec::{Dec, Enc, WireError};
use crate::coordinator::DistError;

/// Wire protocol version. **Bump on any change** to the frame layout, a
/// message body, or an enum encoding — the `Hello` exchange rejects a
/// mismatch on both sides.
///
/// v2: every frame carries a trailing CRC32 over its payload, and the
/// message set gains [`Msg::Ping`]/[`Msg::Pong`] liveness heartbeats and
/// the [`Msg::Goodbye`] clean rejection. A v1 endpoint fails its very
/// first v2 frame with a named [`WireError::Crc`]/framing error instead of
/// mis-decoding traffic — frame-layout changes are exactly what the
/// version bump is for.
///
/// v3: sessions are content-addressed. A worker follows its `Hello` with
/// [`Msg::HaveArtifacts`] advertising the content hashes it still holds
/// from earlier campaigns; the coordinator activates a session with
/// [`Msg::ArtifactDelta`] naming the artifact hashes the next work runs
/// under and ships only the frames the worker is missing. The artifact set
/// gains [`Msg::Golden`], the windowed-campaign golden activation cache.
/// Bare `Plan`/`Weights`/`EvalSet` frames outside a delta are a protocol
/// error in v3. The checkpoint seed folds `WIRE_VERSION`, so v2 resume
/// files self-invalidate.
///
/// v4: results are attested and workers are identified.
/// [`Msg::ShardDone`] carries a domain-tagged FNV-1a attestation
/// ([`shard_attestation`]) folding the session's artifact content hashes,
/// the shard key and the predictions themselves — a worker that executed
/// against a stale cached plan or weight image, or whose reply was
/// corrupted *after* the CRC trailer was sealed, becomes a named
/// [`WireError::Integrity`] instead of a silently merged wrong result.
/// [`Msg::HaveArtifacts`] gains a per-process worker identity, stable
/// across reconnects, which keys the coordinator's audit/quarantine
/// reputation book (see `crates/dist/src/trust.rs`).
///
/// v5: observability. [`Msg::ShardDone`] carries a compact span summary
/// ([`WireSpan`] list: worker-side execute/wave timings as shard-relative
/// microsecond offsets) so the coordinator can re-base worker phases onto
/// its own timeline. The summaries are **advisory**: they are deliberately
/// excluded from [`shard_attestation`], so a byzantine worker can at worst
/// lie about its own timing, never smuggle a wrong result past the audit.
/// The message set gains [`Msg::StatsQuery`]/[`Msg::Stats`], a one-shot
/// Prometheus text-exposition poll any peer can issue to a campaign
/// server after the hello exchange.
pub const WIRE_VERSION: u32 = 5;

/// `Hello` magic: the bytes `NVFI`, read as a little-endian u32.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"NVFI");

/// Upper bound on one frame's payload (1 GiB): large enough for any DRAM
/// weight image or evaluation set in this repository, small enough that a
/// corrupt length prefix cannot make the receiver allocate absurd buffers.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

// Message tags. Coordinator -> worker in the 0x0* range, worker ->
// coordinator in the 0x1* range (the split is documentation, not mechanism:
// both sides decode the full set).
const TAG_HELLO: u8 = 0x01;
const TAG_PLAN: u8 = 0x02;
const TAG_WEIGHTS: u8 = 0x03;
const TAG_EVAL_SET: u8 = 0x04;
const TAG_WORK: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;
const TAG_PING: u8 = 0x07;
const TAG_GOODBYE: u8 = 0x08;
const TAG_DELTA: u8 = 0x09;
const TAG_GOLDEN: u8 = 0x0A;
const TAG_STATS_QUERY: u8 = 0x0B;
pub(crate) const TAG_SHARD_DONE: u8 = 0x11;
const TAG_WORKER_ERR: u8 = 0x12;
const TAG_PONG: u8 = 0x13;
const TAG_HAVE: u8 = 0x14;
const TAG_STATS: u8 = 0x15;

// Serialize-once probes (in the spirit of
// `nvfi_quant::batch::quantization_passes`), backed by the `nvfi_obs`
// metrics registry: a campaign must encode its plan, weight image and
// evaluation set exactly once, however many workers the bytes are replayed
// to and however many work items follow.
fn plan_ser_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("wire_plan_serializations"))
}

fn weight_ser_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("wire_weight_serializations"))
}

fn eval_ser_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("wire_eval_serializations"))
}

fn artifact_bytes_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("artifact_bytes_shipped"))
}

/// Process-wide count of [`Msg::Plan`] encodes (test probe).
#[must_use]
pub fn plan_serializations() -> u64 {
    plan_ser_counter().get()
}

/// Process-wide count of [`Msg::Weights`] encodes (test probe).
#[must_use]
pub fn weight_serializations() -> u64 {
    weight_ser_counter().get()
}

/// Process-wide count of [`Msg::EvalSet`] encodes (test probe).
#[must_use]
pub fn eval_serializations() -> u64 {
    eval_ser_counter().get()
}

/// Process-wide count of artifact payload bytes *actually shipped* to
/// workers (test probe). The campaign server bumps this only for artifact
/// frames a worker did not already hold — a warm session that re-ships
/// nothing leaves it untouched, which is exactly what the session-cache
/// tests assert.
#[must_use]
pub fn artifact_bytes_shipped() -> u64 {
    artifact_bytes_counter().get()
}

/// Credits `n` bytes to the [`artifact_bytes_shipped`] probe.
pub(crate) fn count_artifact_bytes(n: u64) {
    artifact_bytes_counter().add(n);
}

/// Upper bound on [`Msg::ShardDone`] span-summary entries. Workers cap
/// what they ship; the decoder rejects anything larger, so a byzantine
/// summary cannot bloat the coordinator's ring.
pub const MAX_SHARD_SPANS: usize = 64;

/// One worker-side span as shipped in a [`Msg::ShardDone`] summary:
/// timings are microsecond offsets **relative to the worker's shard
/// start**, so the coordinator can re-base them onto its own timeline at
/// the dispatch timestamp. Advisory only — excluded from
/// [`shard_attestation`] by design (see the v5 note on [`WIRE_VERSION`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name (e.g. `worker.execute`, `worker.wave`).
    pub name: String,
    /// Start offset from the worker's shard start, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// The platform configuration as it travels on the wire — what a worker
/// needs to clone the coordinator's device exactly (fast/exact execution
/// mode included: an `ExecMode::Exact` campaign must stay exact remotely).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireConfig {
    /// Functional execution mode (`ExecMode` as a tag byte).
    pub mode: ExecMode,
    /// Idle-lane policy (`IdleLanePolicy` as a tag byte).
    pub idle_lanes: IdleLanePolicy,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Emulated DRAM capacity in bytes.
    pub dram_capacity: u64,
    /// Fast-path mini-batch.
    pub batch: u64,
    /// Device-pool shard granularity in images.
    pub shard_images: u64,
}

impl From<PlatformConfig> for WireConfig {
    fn from(c: PlatformConfig) -> Self {
        WireConfig {
            mode: c.accel.mode,
            idle_lanes: c.accel.idle_lanes,
            clock_hz: c.accel.clock_hz,
            dram_capacity: c.accel.dram_capacity,
            batch: c.accel.batch as u64,
            shard_images: c.shard_images as u64,
        }
    }
}

impl From<WireConfig> for PlatformConfig {
    fn from(w: WireConfig) -> Self {
        PlatformConfig {
            accel: AccelConfig {
                mode: w.mode,
                idle_lanes: w.idle_lanes,
                clock_hz: w.clock_hz,
                dram_capacity: w.dram_capacity,
                batch: w.batch as usize,
            },
            shard_images: w.shard_images as usize,
        }
    }
}

/// A fault program as it travels on the wire: target multipliers as flat
/// lane indices plus the fault kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Flat lane indices (`MultId::lane`, each `< 64`).
    pub lanes: Vec<u8>,
    /// The fault model.
    pub kind: FaultKind,
}

impl WireFault {
    /// Encodes a target list + kind.
    #[must_use]
    pub fn from_targets(targets: &[MultId], kind: FaultKind) -> Self {
        WireFault {
            lanes: targets.iter().map(|t| t.lane() as u8).collect(),
            kind,
        }
    }

    /// The target list this fault programs.
    #[must_use]
    pub fn targets(&self) -> Vec<MultId> {
        self.lanes
            .iter()
            .map(|&l| MultId::from_lane(l as usize))
            .collect()
    }
}

/// One wire message (see the crate docs for the session lifecycle).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Version handshake; the first frame in both directions.
    Hello {
        /// The sender's [`WIRE_VERSION`].
        version: u32,
    },
    /// The compiled plan (command-stream words of
    /// [`nvfi_compiler::plan::encode_words`], weights excluded), the
    /// platform configuration, and the worker's local device-pool size.
    /// Sent once per session.
    Plan {
        /// Device/platform configuration the worker must clone.
        config: WireConfig,
        /// Devices of the worker's local [`nvfi::DevicePool`].
        local_devices: u32,
        /// Plan descriptor words.
        words: Vec<u32>,
    },
    /// The DRAM weight image (`(addr, bytes)` regions of
    /// [`nvfi_accel::Accelerator::export_weight_image`]). Sent once per
    /// session, after [`Msg::Plan`].
    Weights {
        /// Weight regions to DMA into worker DRAM.
        regions: Vec<(u64, Vec<i8>)>,
    },
    /// The quantized evaluation set (contiguous NCHW i8 pixels). Sent once
    /// per session, after [`Msg::Weights`].
    EvalSet {
        /// Images in the set.
        n: u32,
        /// Channels per image.
        c: u32,
        /// Image height.
        h: u32,
        /// Image width.
        w: u32,
        /// `n * c * h * w` quantized pixels.
        data: Vec<i8>,
    },
    /// One assigned shard: run images `start..end` of the evaluation set
    /// under `fault` (and `window`), reply with [`Msg::ShardDone`].
    Work {
        /// Work-item index (0 = the fault-free baseline).
        work_id: u32,
        /// First image of the shard.
        start: u32,
        /// One past the last image of the shard.
        end: u32,
        /// The fault program, or `None` for the baseline.
        fault: Option<WireFault>,
        /// Transient fault window in per-inference MAC cycles.
        window: Option<Range<u64>>,
    },
    /// Session over; the worker exits cleanly.
    Shutdown,
    /// Liveness probe. The coordinator pings idle workers between tasks; a
    /// worker replies [`Msg::Pong`].
    Ping,
    /// Liveness reply/heartbeat. Sent in answer to [`Msg::Ping`], and
    /// **unsolicited** by a worker between compute waves of a long shard —
    /// so a `task_timeout` distinguishes a *stalled* worker (silence) from
    /// a *slow* one (heartbeats keep arriving).
    Pong,
    /// Clean rejection of a connected peer (campaign already complete,
    /// re-admission cap reached). The worker stops reconnecting instead of
    /// being left in TCP limbo.
    Goodbye {
        /// Why the peer was turned away.
        reason: String,
    },
    /// A completed shard's predictions, one class byte per image of
    /// `start..end`.
    ShardDone {
        /// Echoed work-item index.
        work_id: u32,
        /// Echoed shard start.
        start: u32,
        /// Echoed shard end.
        end: u32,
        /// Result attestation: [`shard_attestation`] over the artifact
        /// hashes of the session the worker **actually executed against**,
        /// the shard key, and `preds`. The coordinator recomputes it from
        /// the session it *assigned*; a mismatch is a named
        /// [`WireError::Integrity`], never a merged result.
        attest: u64,
        /// Predicted classes in image order.
        preds: Vec<u8>,
        /// Compact worker-side span summary (≤ [`MAX_SHARD_SPANS`]
        /// entries, shard-relative timings). Advisory; not attested. (v5)
        spans: Vec<WireSpan>,
    },
    /// A worker-side failure (device error, protocol violation). Fatal for
    /// the campaign: unlike a worker *death*, a reported error is
    /// deterministic and would reproduce on any other worker.
    WorkerErr {
        /// Human-readable description.
        message: String,
    },
    /// Content hashes of artifacts the worker still holds from earlier
    /// sessions. Sent once per connection, immediately after the hello
    /// exchange, so the coordinator can ship only deltas. An empty list is
    /// a cold worker.
    HaveArtifacts {
        /// The worker's per-process identity: random, nonzero, and stable
        /// across reconnects of the same process, so the coordinator's
        /// audit/quarantine reputation survives re-admission. (v4)
        ident: u64,
        /// Cached artifact content hashes (plan/weights/eval/golden alike;
        /// hashes are domain-tagged so the kinds cannot collide).
        hashes: Vec<u64>,
    },
    /// Session activation: the artifact hashes all subsequent [`Msg::Work`]
    /// runs under, plus which of them are shipped as frames **immediately
    /// following this message** (in plan, weights, eval-set, golden order).
    /// Artifacts not shipped must already be in the worker's cache.
    ArtifactDelta {
        /// Content hash of the plan artifact (config + local devices +
        /// plan words). Never zero.
        plan: u64,
        /// Content hash of the DRAM weight image. Never zero.
        weights: u64,
        /// Content hash of the quantized evaluation set. Never zero.
        eval: u64,
        /// Content hash of the golden activation cache, or 0 when the
        /// session has none (no fault window).
        golden: u64,
        /// Bitmask of artifacts shipped right after this frame: bit 0 =
        /// plan, bit 1 = weights, bit 2 = eval set, bit 3 = golden.
        ship: u8,
    },
    /// One-shot observability poll: ask a campaign server for its current
    /// metrics. Sent by a monitoring peer right after the hello exchange
    /// in place of [`Msg::HaveArtifacts`]; the server answers with
    /// [`Msg::Stats`] and drops the connection. (v5)
    StatsQuery,
    /// The server's metrics snapshot in Prometheus text exposition
    /// (`ServerStats::render_prometheus`). (v5)
    Stats {
        /// Prometheus text exposition.
        text: String,
    },
    /// The golden activation cache for windowed campaigns: clean boundary
    /// activations per image, so a worker replays only the suffix of the
    /// network behind the fault window (the remote analogue of
    /// [`nvfi::GoldenActivationCache`]).
    Golden {
        /// Plan step index of the cached boundary.
        boundary: u64,
        /// `(addr, bytes)` DRAM surfaces that make up one image's boundary
        /// activations.
        surfaces: Vec<(u64, u64)>,
        /// Concatenated per-image surface bytes, `cached_images` strides.
        data: Vec<i8>,
        /// Images cached (a prefix of the evaluation set).
        cached_images: u64,
    },
}

impl Msg {
    /// Encodes the message into one frame payload (tag byte + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Msg::Hello { version } => {
                e.u8(TAG_HELLO);
                e.u32(WIRE_MAGIC);
                e.u32(*version);
            }
            Msg::Plan {
                config,
                local_devices,
                words,
            } => {
                plan_ser_counter().inc();
                e.u8(TAG_PLAN);
                e.u8(mode_tag(config.mode));
                e.u8(idle_tag(config.idle_lanes));
                e.f64(config.clock_hz);
                e.u64(config.dram_capacity);
                e.u64(config.batch);
                e.u64(config.shard_images);
                e.u32(*local_devices);
                e.u32_slice(words);
            }
            Msg::Weights { regions } => {
                weight_ser_counter().inc();
                e.u8(TAG_WEIGHTS);
                e.u64(regions.len() as u64);
                for (addr, bytes) in regions {
                    e.u64(*addr);
                    e.i8_slice(bytes);
                }
            }
            Msg::EvalSet { n, c, h, w, data } => {
                return encode_eval_set(*n, *c, *h, *w, data);
            }
            Msg::Work {
                work_id,
                start,
                end,
                fault,
                window,
            } => {
                e.u8(TAG_WORK);
                e.u32(*work_id);
                e.u32(*start);
                e.u32(*end);
                match fault {
                    None => e.u8(0),
                    Some(f) => {
                        e.u8(1);
                        e.u64(f.lanes.len() as u64);
                        for &l in &f.lanes {
                            e.u8(l);
                        }
                        encode_kind(&mut e, f.kind);
                    }
                }
                match window {
                    None => e.u8(0),
                    Some(w) => {
                        e.u8(1);
                        e.u64(w.start);
                        e.u64(w.end);
                    }
                }
            }
            Msg::Shutdown => e.u8(TAG_SHUTDOWN),
            Msg::Ping => e.u8(TAG_PING),
            Msg::Pong => e.u8(TAG_PONG),
            Msg::StatsQuery => e.u8(TAG_STATS_QUERY),
            Msg::Stats { text } => {
                e.u8(TAG_STATS);
                e.str(text);
            }
            Msg::Goodbye { reason } => {
                e.u8(TAG_GOODBYE);
                e.str(reason);
            }
            Msg::ShardDone {
                work_id,
                start,
                end,
                attest,
                preds,
                spans,
            } => {
                e.u8(TAG_SHARD_DONE);
                e.u32(*work_id);
                e.u32(*start);
                e.u32(*end);
                e.u64(*attest);
                e.u8_slice(preds);
                e.u64(spans.len() as u64);
                for s in spans {
                    e.str(&s.name);
                    e.u64(s.start_us);
                    e.u64(s.dur_us);
                }
            }
            Msg::WorkerErr { message } => {
                e.u8(TAG_WORKER_ERR);
                e.str(message);
            }
            Msg::HaveArtifacts { ident, hashes } => {
                e.u8(TAG_HAVE);
                e.u64(*ident);
                e.u64_slice(hashes);
            }
            Msg::ArtifactDelta {
                plan,
                weights,
                eval,
                golden,
                ship,
            } => {
                e.u8(TAG_DELTA);
                e.u64(*plan);
                e.u64(*weights);
                e.u64(*eval);
                e.u64(*golden);
                e.u8(*ship);
            }
            Msg::Golden {
                boundary,
                surfaces,
                data,
                cached_images,
            } => {
                e.u8(TAG_GOLDEN);
                e.u64(*boundary);
                e.u64(surfaces.len() as u64);
                for &(addr, bytes) in surfaces {
                    e.u64(addr);
                    e.u64(bytes);
                }
                e.i8_slice(data);
                e.u64(*cached_images);
            }
        }
        e.into_vec()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated, oversized-length, unknown-tag or
    /// trailing-byte payloads — never panics on wire input.
    pub fn decode(payload: Vec<u8>) -> Result<Msg, WireError> {
        let mut d = Dec::new(payload);
        let tag = d.u8("message tag")?;
        let msg = match tag {
            TAG_HELLO => {
                let magic = d.u32("hello magic")?;
                if magic != WIRE_MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                Msg::Hello {
                    version: d.u32("hello version")?,
                }
            }
            TAG_PLAN => {
                let mode = mode_from_tag(d.u8("exec mode")?)?;
                let idle_lanes = idle_from_tag(d.u8("idle-lane policy")?)?;
                let clock_hz = d.f64("clock")?;
                if !(clock_hz.is_finite() && clock_hz > 0.0) {
                    return Err(WireError::Invalid("clock frequency"));
                }
                let dram_capacity = d.u64("dram capacity")?;
                let batch = d.u64("mini-batch")?;
                let shard_images = d.u64("shard granularity")?;
                let local_devices = d.u32("local devices")?;
                if local_devices == 0 {
                    return Err(WireError::Invalid("zero local devices"));
                }
                let words = d.u32_slice("plan words")?;
                Msg::Plan {
                    config: WireConfig {
                        mode,
                        idle_lanes,
                        clock_hz,
                        dram_capacity,
                        batch,
                        shard_images,
                    },
                    local_devices,
                    words,
                }
            }
            TAG_WEIGHTS => {
                let count = d.u64("weight region count")?;
                // Each region is at least the 16 bytes of (addr, len).
                if count.saturating_mul(16) > d.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "weight regions",
                        claimed: count.saturating_mul(16),
                        remaining: d.remaining(),
                    });
                }
                let mut regions = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let addr = d.u64("weight region addr")?;
                    regions.push((addr, d.i8_slice("weight region bytes")?));
                }
                Msg::Weights { regions }
            }
            TAG_EVAL_SET => {
                let n = d.u32("eval n")?;
                let c = d.u32("eval c")?;
                let h = d.u32("eval h")?;
                let w = d.u32("eval w")?;
                let data = d.i8_slice("eval pixels")?;
                // u128: four u32 extremes overflow u64, and a wrapped
                // product must not admit a shape/data mismatch.
                let pixels = u128::from(n) * u128::from(c) * u128::from(h) * u128::from(w);
                if pixels != data.len() as u128 {
                    return Err(WireError::Invalid("eval shape/pixel mismatch"));
                }
                Msg::EvalSet { n, c, h, w, data }
            }
            TAG_WORK => {
                let work_id = d.u32("work id")?;
                let start = d.u32("shard start")?;
                let end = d.u32("shard end")?;
                if start > end {
                    return Err(WireError::Invalid("inverted shard range"));
                }
                let fault = match d.u8("fault flag")? {
                    0 => None,
                    1 => {
                        let count = d.u64("target count")?;
                        if count > TOTAL_MULTS as u64 {
                            return Err(WireError::Invalid("more targets than lanes"));
                        }
                        let mut lanes = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            let l = d.u8("target lane")?;
                            if l as usize >= TOTAL_MULTS {
                                return Err(WireError::Invalid("target lane out of range"));
                            }
                            lanes.push(l);
                        }
                        Some(WireFault {
                            lanes,
                            kind: decode_kind(&mut d)?,
                        })
                    }
                    t => {
                        return Err(WireError::BadTag {
                            what: "fault flag",
                            tag: u32::from(t),
                        })
                    }
                };
                let window = match d.u8("window flag")? {
                    0 => None,
                    1 => {
                        let ws = d.u64("window start")?;
                        let we = d.u64("window end")?;
                        Some(ws..we)
                    }
                    t => {
                        return Err(WireError::BadTag {
                            what: "window flag",
                            tag: u32::from(t),
                        })
                    }
                };
                Msg::Work {
                    work_id,
                    start,
                    end,
                    fault,
                    window,
                }
            }
            TAG_SHUTDOWN => Msg::Shutdown,
            TAG_PING => Msg::Ping,
            TAG_PONG => Msg::Pong,
            TAG_STATS_QUERY => Msg::StatsQuery,
            TAG_STATS => Msg::Stats {
                text: d.str("stats text")?,
            },
            TAG_GOODBYE => Msg::Goodbye {
                reason: d.str("goodbye reason")?,
            },
            TAG_SHARD_DONE => {
                let work_id = d.u32("done work id")?;
                let start = d.u32("done start")?;
                let end = d.u32("done end")?;
                let attest = d.u64("done attestation")?;
                let preds = d.u8_slice("predictions")?;
                if preds.len() as u64 != u64::from(end.saturating_sub(start)) {
                    return Err(WireError::Invalid("prediction count != shard size"));
                }
                let span_count = d.u64("span summary count")?;
                if span_count > MAX_SHARD_SPANS as u64 {
                    return Err(WireError::Invalid("oversized span summary"));
                }
                let mut spans = Vec::with_capacity(span_count as usize);
                for _ in 0..span_count {
                    let name = d.str("span name")?;
                    let start_us = d.u64("span start")?;
                    let dur_us = d.u64("span duration")?;
                    spans.push(WireSpan {
                        name,
                        start_us,
                        dur_us,
                    });
                }
                Msg::ShardDone {
                    work_id,
                    start,
                    end,
                    attest,
                    preds,
                    spans,
                }
            }
            TAG_WORKER_ERR => Msg::WorkerErr {
                message: d.str("worker error")?,
            },
            TAG_HAVE => {
                let ident = d.u64("worker ident")?;
                if ident == 0 {
                    return Err(WireError::Invalid("zero worker ident"));
                }
                Msg::HaveArtifacts {
                    ident,
                    hashes: d.u64_slice("artifact hashes")?,
                }
            }
            TAG_DELTA => {
                let plan = d.u64("delta plan hash")?;
                let weights = d.u64("delta weights hash")?;
                let eval = d.u64("delta eval hash")?;
                let golden = d.u64("delta golden hash")?;
                let ship = d.u8("delta ship mask")?;
                if plan == 0 || weights == 0 || eval == 0 {
                    return Err(WireError::Invalid("zero artifact hash"));
                }
                if ship & !0x0F != 0 {
                    return Err(WireError::Invalid("unknown delta ship bits"));
                }
                if golden == 0 && ship & 0x08 != 0 {
                    return Err(WireError::Invalid("golden shipped without a hash"));
                }
                Msg::ArtifactDelta {
                    plan,
                    weights,
                    eval,
                    golden,
                    ship,
                }
            }
            TAG_GOLDEN => {
                let boundary = d.u64("golden boundary")?;
                let count = d.u64("golden surface count")?;
                // Each surface is the 16 bytes of (addr, len) on the wire.
                if count.saturating_mul(16) > d.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "golden surfaces",
                        claimed: count.saturating_mul(16),
                        remaining: d.remaining(),
                    });
                }
                let mut surfaces = Vec::with_capacity(count as usize);
                let mut stride: u128 = 0;
                for _ in 0..count {
                    let addr = d.u64("golden surface addr")?;
                    let bytes = d.u64("golden surface bytes")?;
                    stride += u128::from(bytes);
                    surfaces.push((addr, bytes));
                }
                let data = d.i8_slice("golden data")?;
                let cached_images = d.u64("golden cached images")?;
                if boundary == 0 || surfaces.is_empty() || stride == 0 || cached_images == 0 {
                    return Err(WireError::Invalid("empty golden cache"));
                }
                // u128: a forged stride * image count must not wrap into a
                // plausible data length.
                if stride * u128::from(cached_images) != data.len() as u128 {
                    return Err(WireError::Invalid("golden stride/data mismatch"));
                }
                Msg::Golden {
                    boundary,
                    surfaces,
                    data,
                    cached_images,
                }
            }
            t => {
                return Err(WireError::BadTag {
                    what: "message",
                    tag: u32::from(t),
                })
            }
        };
        d.finish()?;
        Ok(msg)
    }
}

/// Encodes an [`Msg::EvalSet`] frame payload straight from a **borrowed**
/// pixel slice — the coordinator's path, which must not copy the (large)
/// quantized evaluation set into an owned `Msg` just to serialize it.
/// Decodes as [`Msg::EvalSet`]; counts one [`eval_serializations`] pass.
#[must_use]
pub fn encode_eval_set(n: u32, c: u32, h: u32, w: u32, data: &[i8]) -> Vec<u8> {
    eval_ser_counter().inc();
    let mut e = Enc::new();
    e.u8(TAG_EVAL_SET);
    e.u32(n);
    e.u32(c);
    e.u32(h);
    e.u32(w);
    e.i8_slice(data);
    e.into_vec()
}

/// Domain tag of the shard-result attestation hash (the content-hash
/// domains 1–5 live in `server.rs`; 7 is the audit sampling draw).
const ATTEST_DOMAIN: u8 = 6;

/// The v4 shard-result attestation: a domain-tagged FNV-1a hash folding the
/// session's artifact content hashes (`(plan, weights, eval, golden)` as
/// announced by [`Msg::ArtifactDelta`]), the shard key, and the predicted
/// classes. The worker computes it over the session it **actually executed
/// against**; the coordinator recomputes it over the session it
/// **assigned**. Executing on a stale cached artifact — or any payload
/// corruption introduced after the CRC trailer was sealed — therefore
/// surfaces as a named [`WireError::Integrity`], never a merged result.
#[must_use]
pub fn shard_attestation(
    session: (u64, u64, u64, u64),
    work_id: u32,
    start: u32,
    end: u32,
    preds: &[u8],
) -> u64 {
    let mut h = crate::checkpoint::Fnv64::new();
    h.write(&[ATTEST_DOMAIN]);
    h.write_u64(session.0);
    h.write_u64(session.1);
    h.write_u64(session.2);
    h.write_u64(session.3);
    h.write_u64(u64::from(work_id));
    h.write_u64(u64::from(start));
    h.write_u64(u64::from(end));
    h.write(preds);
    h.finish()
}

pub(crate) fn mode_tag(m: ExecMode) -> u8 {
    match m {
        ExecMode::Exact => 0,
        ExecMode::Fast => 1,
        ExecMode::Auto => 2,
    }
}

fn mode_from_tag(t: u8) -> Result<ExecMode, WireError> {
    match t {
        0 => Ok(ExecMode::Exact),
        1 => Ok(ExecMode::Fast),
        2 => Ok(ExecMode::Auto),
        t => Err(WireError::BadTag {
            what: "exec mode",
            tag: u32::from(t),
        }),
    }
}

pub(crate) fn idle_tag(p: IdleLanePolicy) -> u8 {
    match p {
        IdleLanePolicy::ZeroFed => 0,
        IdleLanePolicy::Gated => 1,
    }
}

fn idle_from_tag(t: u8) -> Result<IdleLanePolicy, WireError> {
    match t {
        0 => Ok(IdleLanePolicy::ZeroFed),
        1 => Ok(IdleLanePolicy::Gated),
        t => Err(WireError::BadTag {
            what: "idle-lane policy",
            tag: u32::from(t),
        }),
    }
}

fn encode_kind(e: &mut Enc, kind: FaultKind) {
    match kind {
        FaultKind::StuckAtZero => e.u8(0),
        FaultKind::Constant(v) => {
            e.u8(1);
            e.i32(v);
        }
        FaultKind::StuckBits { fsel, fdata } => {
            e.u8(2);
            e.u32(fsel);
            e.u32(fdata);
        }
        FaultKind::FlipBits { mask } => {
            e.u8(3);
            e.u32(mask);
        }
    }
}

fn decode_kind(d: &mut Dec) -> Result<FaultKind, WireError> {
    match d.u8("fault kind")? {
        0 => Ok(FaultKind::StuckAtZero),
        1 => Ok(FaultKind::Constant(d.i32("constant value")?)),
        2 => Ok(FaultKind::StuckBits {
            fsel: d.u32("fsel")?,
            fdata: d.u32("fdata")?,
        }),
        3 => Ok(FaultKind::FlipBits {
            mask: d.u32("flip mask")?,
        }),
        t => Err(WireError::BadTag {
            what: "fault kind",
            tag: u32::from(t),
        }),
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one frame: a u32 little-endian payload length, the payload, then
/// a CRC32 trailer over the payload (v2 frame layout — see
/// [`crate::codec::crc32`]). One `flush` per frame, so stream wrappers
/// (e.g. [`crate::chaos::ChaosStream`]) can treat flush as the frame
/// boundary.
///
/// # Errors
///
/// Propagates socket errors.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] (a sender bug, not an
/// input condition).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() as u64 <= u64::from(MAX_FRAME_BYTES),
        "frame of {} bytes exceeds MAX_FRAME_BYTES",
        payload.len()
    );
    // nvfi-lint: allow(truncating-cast) — asserted <= MAX_FRAME_BYTES above
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crate::codec::crc32(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one frame's payload and verifies its CRC32 trailer. A length
/// prefix above [`MAX_FRAME_BYTES`] is rejected before any allocation; a
/// stream that ends mid-frame surfaces as
/// [`io::ErrorKind::UnexpectedEof`] — an error, never a panic.
///
/// # Errors
///
/// [`DistError::Io`] on socket errors (oversized lengths map to
/// [`io::ErrorKind::InvalidData`]); [`DistError::Wire`] with a named
/// [`WireError::Crc`] when the trailer does not match the payload — flipped
/// bits are an integrity error, never silently-decoded garbage.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, DistError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(DistError::Io)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(DistError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte bound"),
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(DistError::Io)?;
    let mut stored = [0u8; 4];
    r.read_exact(&mut stored).map_err(DistError::Io)?;
    let stored = u32::from_le_bytes(stored);
    let computed = crate::codec::crc32(&payload);
    if stored != computed {
        return Err(DistError::Wire(WireError::Crc { stored, computed }));
    }
    Ok(payload)
}

/// Sends one message as one frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn send(w: &mut impl Write, msg: &Msg) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Receives and decodes one message.
///
/// # Errors
///
/// [`DistError::Io`] on socket errors (including truncation),
/// [`DistError::Wire`] on malformed or CRC-failed payloads.
pub fn recv(r: &mut impl Read) -> Result<Msg, DistError> {
    let payload = read_frame(r)?;
    Msg::decode(payload).map_err(DistError::Wire)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Worker side of the handshake: sends `Hello`, awaits the coordinator's
/// reply.
///
/// # Errors
///
/// [`DistError::Wire`] with [`WireError::Version`] on a mismatch,
/// [`DistError::Worker`] if the coordinator rejected us with an error
/// message, [`DistError::Io`] on socket failure.
pub fn client_hello<S: Read + Write>(stream: &mut S) -> Result<(), DistError> {
    send(
        stream,
        &Msg::Hello {
            version: WIRE_VERSION,
        },
    )
    .map_err(DistError::Io)?;
    match recv(stream)? {
        Msg::Hello { version } if version == WIRE_VERSION => Ok(()),
        Msg::Hello { version } => Err(DistError::Wire(WireError::Version {
            peer: version,
            local: WIRE_VERSION,
        })),
        Msg::WorkerErr { message } => Err(DistError::Worker(message)),
        _ => Err(DistError::Protocol("expected hello reply")),
    }
}

/// Coordinator side of the handshake: awaits the worker's `Hello`, verifies
/// the version, replies. On a mismatch the worker is told why (a
/// [`Msg::WorkerErr`] naming both versions) before the error is returned.
///
/// # Errors
///
/// [`DistError::Wire`] with [`WireError::Version`] on a mismatch,
/// [`DistError::Io`] on socket failure.
pub fn accept_hello<S: Read + Write>(stream: &mut S) -> Result<(), DistError> {
    match recv(stream)? {
        Msg::Hello { version } if version == WIRE_VERSION => {
            send(
                stream,
                &Msg::Hello {
                    version: WIRE_VERSION,
                },
            )
            .map_err(DistError::Io)?;
            Ok(())
        }
        Msg::Hello { version } => {
            let err = WireError::Version {
                peer: version,
                local: WIRE_VERSION,
            };
            let _ = send(
                stream,
                &Msg::WorkerErr {
                    message: err.to_string(),
                },
            );
            Err(DistError::Wire(err))
        }
        _ => Err(DistError::Protocol("expected hello")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let msg = Msg::Work {
            work_id: 3,
            start: 8,
            end: 16,
            fault: Some(WireFault {
                lanes: vec![0, 9, 63],
                kind: FaultKind::Constant(-1),
            }),
            window: Some(100..2100),
        };
        let mut buf = Vec::new();
        send(&mut buf, &msg).unwrap();
        let mut r = &buf[..];
        assert_eq!(recv(&mut r).unwrap(), msg);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        send(&mut buf, &Msg::Shutdown).unwrap();
        // Cut the stream at every point inside the frame.
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            match recv(&mut r) {
                Err(DistError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                }
                other => panic!("cut {cut}: expected EOF error, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frame_length_rejected_before_allocation() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let mut r = &buf[..];
        match recv(&mut r) {
            Err(DistError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            other => panic!("expected InvalidData, got {other:?}"),
        }
    }

    #[test]
    fn hello_version_mismatch_is_rejected_with_both_versions_named() {
        // A fake peer speaking version WIRE_VERSION + 1.
        let mut from_peer = Vec::new();
        send(
            &mut from_peer,
            &Msg::Hello {
                version: WIRE_VERSION + 1,
            },
        )
        .unwrap();
        struct Duplex {
            read: std::io::Cursor<Vec<u8>>,
            wrote: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.read.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.wrote.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = Duplex {
            read: std::io::Cursor::new(from_peer),
            wrote: Vec::new(),
        };
        let err = accept_hello(&mut s).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains(&format!("v{}", WIRE_VERSION + 1)) && text.contains("mismatch"),
            "error must name the peer version: {text}"
        );
        // The rejected worker was told why before the close.
        let mut r = &s.wrote[..];
        match recv(&mut r).unwrap() {
            Msg::WorkerErr { message } => assert!(message.contains("mismatch")),
            other => panic!("expected WorkerErr, got {other:?}"),
        }
    }

    #[test]
    fn eval_set_shape_overflow_rejected() {
        // 65536^4 == 2^64: a u64 product would wrap to 0 == data.len() and
        // admit the bogus frame (or panic in debug); the u128 check must
        // reject it as a shape mismatch instead.
        let mut e = Enc::new();
        e.u8(TAG_EVAL_SET);
        for _ in 0..4 {
            e.u32(65536);
        }
        e.u64(0); // empty pixel slice
        assert_eq!(
            Msg::decode(e.into_vec()),
            Err(WireError::Invalid("eval shape/pixel mismatch"))
        );
    }

    #[test]
    fn flipped_payload_bit_is_a_named_crc_error() {
        let msg = Msg::ShardDone {
            work_id: 4,
            start: 0,
            end: 3,
            attest: shard_attestation((1, 2, 3, 0), 4, 0, 3, &[1, 2, 3]),
            preds: vec![1, 2, 3],
            spans: Vec::new(),
        };
        let mut buf = Vec::new();
        send(&mut buf, &msg).unwrap();
        // Flip one bit in every payload byte position in turn; each must be
        // caught by the CRC trailer, never decoded as a different message.
        for i in 4..buf.len() - 4 {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x10;
            let mut r = &corrupt[..];
            match recv(&mut r) {
                Err(DistError::Wire(WireError::Crc { stored, computed })) => {
                    assert_ne!(stored, computed)
                }
                other => panic!("byte {i}: expected CRC error, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_crc_trailer_bit_is_also_caught() {
        let mut buf = Vec::new();
        send(&mut buf, &Msg::Ping).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut r = &buf[..];
        assert!(matches!(
            recv(&mut r),
            Err(DistError::Wire(WireError::Crc { .. }))
        ));
    }

    #[test]
    fn heartbeats_and_goodbye_roundtrip() {
        for msg in [
            Msg::Ping,
            Msg::Pong,
            Msg::Goodbye {
                reason: "campaign complete".into(),
            },
        ] {
            let mut buf = Vec::new();
            send(&mut buf, &msg).unwrap();
            let mut r = &buf[..];
            assert_eq!(recv(&mut r).unwrap(), msg);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn attestation_is_sensitive_to_every_component() {
        let base = shard_attestation((1, 2, 3, 4), 5, 0, 3, &[7, 8, 9]);
        // Artifact hashes, shard key, and predictions each perturb it.
        assert_ne!(base, shard_attestation((9, 2, 3, 4), 5, 0, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 9, 3, 4), 5, 0, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 9, 4), 5, 0, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 3, 9), 5, 0, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 3, 4), 6, 0, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 3, 4), 5, 1, 3, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 3, 4), 5, 0, 4, &[7, 8, 9]));
        assert_ne!(base, shard_attestation((1, 2, 3, 4), 5, 0, 3, &[7, 8, 0]));
        // And deterministic across calls.
        assert_eq!(base, shard_attestation((1, 2, 3, 4), 5, 0, 3, &[7, 8, 9]));
    }

    #[test]
    fn zero_worker_ident_rejected() {
        let mut e = Enc::new();
        e.u8(TAG_HAVE);
        e.u64(0); // ident
        e.u64(0); // empty hash list
        assert_eq!(
            Msg::decode(e.into_vec()),
            Err(WireError::Invalid("zero worker ident"))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut e = Enc::new();
        e.u8(TAG_HELLO);
        e.u32(0x1234_5678);
        e.u32(WIRE_VERSION);
        assert_eq!(
            Msg::decode(e.into_vec()),
            Err(WireError::BadMagic(0x1234_5678))
        );
    }
}
