//! The multiplexing campaign server: one **persistent** worker fleet
//! serving many client campaigns concurrently over content-addressed
//! sessions.
//!
//! [`run_campaign`](crate::run_campaign) raises a fleet, runs one campaign
//! and tears the fleet down. A [`CampaignServer`] decouples those
//! lifetimes: the fleet is raised once ([`CampaignServer::start`]) and then
//! any number of campaigns are [`submit`](CampaignServer::submit)ted
//! against it — concurrently, from any thread — each returning a
//! [`ClientHandle`] whose [`wait`](ClientHandle::wait) yields a
//! [`CampaignResult`] **bit-identical** to the in-process
//! [`Campaign::run`].
//!
//! # Content-addressed sessions (wire v3)
//!
//! Every campaign artifact — compiled plan, DRAM weight image, quantized
//! evaluation set, golden activation cache — is hashed by **content**
//! (stable FNV-1a over the decoded payload, never over encoded frames, so
//! the serialize-once probes stay meaningful) and encoded exactly once per
//! distinct hash per server. Workers advertise what they already hold in a
//! [`Msg::HaveArtifacts`] frame at connection time; each campaign switch
//! is a [`Msg::ArtifactDelta`] naming the four hashes plus **only the
//! frames the worker is missing**. A repeat campaign over unchanged
//! artifacts re-ships zero artifact bytes
//! ([`wire::artifact_bytes_shipped`] proves it), and an [`FaultKind`]
//! sweep over one model is a stream of few-byte deltas instead of repeated
//! weight images.
//!
//! # Fair-share multiplexing
//!
//! Worker connections pull from the per-client task queues through
//! `fair_share_pick`: the ready client with the fewest dispatched shards
//! wins (ties to the lower id), so a short campaign submitted next to a
//! long one drains in parallel instead of queuing behind it — no client
//! starves. Per-client progress streams over [`ClientHandle::progress`].
//!
//! # Result cache
//!
//! Completed campaigns are cached by a key hashing everything that
//! determines the merged records: `(plan, weights, eval set, golden)`
//! hashes, the labels, the verifier mode, and every work item's full fault
//! program as it would go on the wire. A repeat submit with an identical
//! key returns the cached [`CampaignResult`] without dispatching a single
//! shard ([`ServerStats`] exposes the hit count).
//!
//! # Failure model
//!
//! Identical to [`run_campaign`](crate::run_campaign)'s, per client: a
//! broken socket, CRC-failed frame or timed-out shard requeues **only the
//! owning client's shard**; reconnecting workers are re-admitted (their
//! advertisement trims re-shipping to the delta); a fleet empty past
//! [`FleetSpec::readmission_grace`] fails every unfinished client with
//! [`DistError::FleetLost`] while the server itself stays up for later
//! submissions; worker-*reported* errors stay fatal to their client.
//! Checkpoints ([`CampaignSpec::checkpoint_path`]) record per-client
//! progress and resume across server (or coordinator) restarts.
//!
//! # Result integrity (wire v4)
//!
//! A CRC only proves a frame survived the *transport*; it says nothing
//! about whether the worker computed the right answer. Three layers close
//! that gap:
//!
//! * **Attestation** — every [`Msg::ShardDone`] carries a
//!   [`wire::shard_attestation`] binding the predictions to the artifact
//!   hashes of the session the worker actually executed under. The server
//!   recomputes it from the *assigned* session: a worker running stale
//!   cached artifacts, or a frame corrupted after its CRC was sealed, is a
//!   named [`WireError::Integrity`] — the shard is requeued, never merged.
//! * **Audit re-execution** — completed shards are sampled (the baseline
//!   shard always; others per [`FleetSpec::audit_rate`]) and silently
//!   re-dispatched to a *different* worker. A mismatch triggers an
//!   authoritative in-process re-execution that arbitrates which replica
//!   lied; the stored result is repaired if needed, so a *self-consistent*
//!   lie (correctly attested wrong predictions) is caught too. On a
//!   one-worker fleet the audit runs in-process directly.
//! * **Quarantine** — each worker identity carries a [`Trust`] record:
//!   `Healthy → Suspect` on an integrity strike, `Quarantined` on a second
//!   strike or an audit conviction. A quarantined worker is drained
//!   ([`Msg::Goodbye`]), its unverified completed shards are re-verified
//!   in-process, and a re-admitted one serves on probation (every shard
//!   audited) until [`crate::trust::PROBATION_CLEAN`] consecutive audits
//!   pass. Conviction is fatal only to the worker — every client's result
//!   stays bit-identical to the in-process [`Campaign::run`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nvfi::campaign::{
    fault_provably_masked, prediction_accuracy, run_plan_verifier, validate_fault_kinds, Campaign,
    CampaignResult, CampaignSpec, FiRecord, VerifyMode,
};
use nvfi::{
    DevicePool, EmulationPlatform, GoldenActivationCache, PlatformConfig, QuantizedEvalSet,
};
use nvfi_accel::{FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::Dataset;
use nvfi_obs::{progress, trace};
use nvfi_quant::QuantModel;

use crate::checkpoint::{Checkpoint, CheckpointEntry, Fnv64};
use crate::codec::{crc32, WireError};
use crate::coordinator::{DistError, FleetSpec, WorkerSpawn};
use crate::trust::Trust;
use crate::wire::{self, Msg, WireConfig, WireFault};
use crate::worker;

/// Locks a mutex, recovering from poison: server state is kept consistent
/// under the lock by construction (no panicking code holds it — this file
/// is policed by the `decode-panic` lint), so a poisoned lock only means
/// some *other* thread died and its guard data is still valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The expanded campaign work list: item 0 is the fault-free baseline,
/// items 1.. carry `(targets, kind)` fault programs.
type WorkList = Vec<Option<(Vec<MultId>, FaultKind)>>;

/// One schedulable unit: an image shard of one work item.
#[derive(Clone, Debug)]
pub(crate) struct Task {
    /// Index into the work list (0 = baseline).
    pub(crate) work_id: usize,
    /// Image range of the evaluation set.
    pub(crate) range: Range<usize>,
}

/// Reaps (and on early exit, kills) the spawned worker processes.
struct FleetGuard {
    children: Vec<Child>,
}

impl Drop for FleetGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            // A cleanly shut-down worker has already exited; kill is a no-op
            // race loser then. Either way, wait() reaps.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The checkpoint file plus its in-memory image, persisted (atomically,
/// whole-file) after every completed shard.
struct CkptState {
    path: PathBuf,
    cp: Mutex<Checkpoint>,
}

impl CkptState {
    /// Records (or, after an audit repaired a lying worker's shard,
    /// **replaces**) one completed shard. Keyed replacement keeps a resume
    /// from replaying a result that arbitration already overruled.
    fn record(&self, task: &Task, preds: &[u8]) {
        let mut cp = lock(&self.cp);
        let key = (
            task.work_id as u32,
            task.range.start as u32,
            task.range.end as u32,
        );
        if let Some(entry) = cp
            .entries
            .iter_mut()
            .find(|e| (e.work_id, e.start, e.end) == key)
        {
            entry.preds = preds.to_vec();
        } else {
            cp.entries.push(CheckpointEntry {
                work_id: key.0,
                start: key.1,
                end: key.2,
                preds: preds.to_vec(),
            });
        }
        if let Err(e) = cp.store(&self.path) {
            // A failing checkpoint must not fail the campaign — it only
            // weakens a future resume.
            progress::note(format!(
                "nvfi server: checkpoint write to {} failed: {e}",
                self.path.display()
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Finishes a hash, mapping the (astronomically unlikely) zero digest to a
/// fixed nonzero constant: `0` is the wire's "artifact absent" sentinel
/// ([`Msg::ArtifactDelta`]) and must never collide with a real hash.
fn finish_nonzero(h: &Fnv64) -> u64 {
    match h.finish() {
        0 => 0x9E37_79B9_7F4A_7C15,
        v => v,
    }
}

/// Folds an `i8` slice into the hash through a small stack buffer (the
/// hasher takes `u8` bytes; weight images and pixel sets are large enough
/// that a per-call `Vec` copy would show up).
fn write_i8s(h: &mut Fnv64, data: &[i8]) {
    let mut buf = [0u8; 4096];
    for chunk in data.chunks(buf.len()) {
        for (dst, &src) in buf.iter_mut().zip(chunk) {
            *dst = src as u8;
        }
        // nvfi-lint: allow(decode-panic) — chunks() caps chunk.len() at buf.len()
        h.write(&buf[..chunk.len()]);
    }
}

/// Content hash of a plan artifact: the wire configuration, the worker's
/// local device count (it changes the shipped [`Msg::Plan`] frame) and the
/// compiled plan words. Domain-tagged so a plan hash can never collide
/// with another artifact kind's.
fn hash_plan(config: &WireConfig, local_devices: u32, words: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[1]);
    h.write(&[
        wire::mode_tag(config.mode),
        wire::idle_tag(config.idle_lanes),
    ]);
    h.write_u64(config.clock_hz.to_bits());
    h.write_u64(config.dram_capacity);
    h.write_u64(config.batch);
    h.write_u64(config.shard_images);
    h.write_u64(u64::from(local_devices));
    h.write_u64(words.len() as u64);
    for &w in words {
        h.write_u64(u64::from(w));
    }
    finish_nonzero(&h)
}

/// Content hash of a DRAM weight image (`(addr, bytes)` regions). A single
/// flipped weight — an SEU in storage — changes this hash, which is what
/// invalidates stale worker caches.
fn hash_weights(regions: &[(u64, Vec<i8>)]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[2]);
    h.write_u64(regions.len() as u64);
    for (addr, bytes) in regions {
        h.write_u64(*addr);
        h.write_u64(bytes.len() as u64);
        write_i8s(&mut h, bytes);
    }
    finish_nonzero(&h)
}

/// Content hash of a quantized evaluation set (shape + pixels).
fn hash_eval(qset: &QuantizedEvalSet) -> u64 {
    let shape = qset.shape();
    let mut h = Fnv64::new();
    h.write(&[3]);
    h.write_u64(shape.n as u64);
    h.write_u64(shape.c as u64);
    h.write_u64(shape.h as u64);
    h.write_u64(shape.w as u64);
    write_i8s(&mut h, qset.images().as_slice());
    finish_nonzero(&h)
}

/// Content hash of a golden activation cache.
fn hash_golden(golden: &GoldenActivationCache) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[4]);
    h.write_u64(golden.boundary() as u64);
    h.write_u64(golden.surfaces().len() as u64);
    for &(addr, bytes) in golden.surfaces() {
        h.write_u64(addr);
        h.write_u64(bytes);
    }
    h.write_u64(golden.cached_images() as u64);
    write_i8s(&mut h, golden.data());
    finish_nonzero(&h)
}

/// The result-cache key: hashes everything that determines the merged
/// records — the four artifact hashes, the evaluation labels, the verifier
/// mode (it decides which items are pruned as provably masked) and every
/// work item's full fault program as it would go on the wire. Two submits
/// share a key iff their [`CampaignResult`]s are interchangeable.
fn result_cache_key(
    artifact_hashes: (u64, u64, u64, u64),
    work: &WorkList,
    spec: &CampaignSpec,
    eval_len: usize,
    labels: &[u8],
) -> u64 {
    let (plan, weights, eval, golden) = artifact_hashes;
    let mut h = Fnv64::new();
    h.write(&[5]);
    h.write_u64(plan);
    h.write_u64(weights);
    h.write_u64(eval);
    h.write_u64(golden);
    h.write_u64(eval_len as u64);
    h.write(labels);
    h.write(&[match spec.verify {
        VerifyMode::Off => 0,
        VerifyMode::Warn => 1,
        VerifyMode::Strict => 2,
    }]);
    for (work_id, item) in work.iter().enumerate() {
        let fault = item
            .as_ref()
            .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
        let window = if fault.is_some() {
            spec.fault_window.clone()
        } else {
            None
        };
        // Msg::Work encoding bumps no serialize-once probes, so hashing the
        // canonical wire bytes is free and stays in sync with the protocol.
        h.write(
            &Msg::Work {
                work_id: work_id as u32,
                start: 0,
                end: 0,
                fault,
                window,
            }
            .encode(),
        );
    }
    finish_nonzero(&h)
}

/// Hashes everything that determines the schedule and its answers: the
/// wire + checkpoint format versions (via [`Fnv64::campaign_seed`], so a
/// protocol bump invalidates every older checkpoint), the encoded session
/// frames (plan, weights, evaluation set — config and quantized pixels
/// included), the task list, and each work item's full fault program as it
/// would go on the wire. Two campaigns share a fingerprint iff their
/// checkpointed shards are interchangeable.
fn campaign_fingerprint(
    frames: [&[u8]; 3],
    tasks: &[Task],
    work: &WorkList,
    fault_window: &Option<Range<u64>>,
) -> u64 {
    let mut h = Fnv64::campaign_seed();
    for frame in frames {
        h.write_u64(u64::from(crc32(frame)));
    }
    h.write_u64(tasks.len() as u64);
    for t in tasks {
        h.write_u64(t.work_id as u64);
        h.write_u64(t.range.start as u64);
        h.write_u64(t.range.end as u64);
    }
    for (work_id, item) in work.iter().enumerate() {
        let fault = item
            .as_ref()
            .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
        let window = if fault.is_some() {
            fault_window.clone()
        } else {
            None
        };
        h.write(
            &Msg::Work {
                work_id: work_id as u32,
                start: 0,
                end: 0,
                fault,
                window,
            }
            .encode(),
        );
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Campaign preparation
// ---------------------------------------------------------------------------

/// What [`prepare`] decided about a campaign.
pub(crate) enum Prepared {
    /// The campaign resolved without the fleet (every fault item provably
    /// masked): here is the finished result.
    Immediate(CampaignResult),
    /// The campaign needs fleet time; submit this to a server.
    Scheduled(Box<PreparedCampaign>),
}

/// A campaign compiled, hashed and sharded — everything a
/// [`CampaignServer`] needs to schedule it, nothing borrowed from the
/// caller.
pub(crate) struct PreparedCampaign {
    config: PlatformConfig,
    local_devices: usize,
    plan_hash: u64,
    weights_hash: u64,
    eval_hash: u64,
    /// `0` when the campaign ships no golden cache.
    golden_hash: u64,
    plan_words: Vec<u32>,
    weight_image: Vec<(u64, Vec<i8>)>,
    qset: QuantizedEvalSet,
    golden: Option<GoldenActivationCache>,
    work: WorkList,
    masked: Vec<bool>,
    masked_static: usize,
    tasks: Vec<Task>,
    window: Option<Range<u64>>,
    verbose: bool,
    checkpoint_path: Option<PathBuf>,
    labels: Vec<u8>,
    eval_len: usize,
    result_key: u64,
    started: Instant,
}

/// Compiles, verifies, hashes and shards one campaign — the fleet-free
/// front half shared by [`CampaignServer::submit`] and
/// [`crate::run_campaign`]. Mirrors the in-process [`Campaign::run`]
/// exactly: one quantization pass, plan verification, fault-reachability
/// pruning (an all-masked campaign never engages the fleet), and the
/// golden activation cache build for windowed campaigns.
pub(crate) fn prepare(
    model: &QuantModel,
    config: PlatformConfig,
    spec: &CampaignSpec,
    eval: &Dataset,
    total_workers: usize,
    local_devices: usize,
) -> Result<Prepared, DistError> {
    assert!(
        !spec.kinds.is_empty(),
        "campaign needs at least one fault kind"
    );
    assert!(spec.eval_images > 0, "campaign needs evaluation images");
    validate_fault_kinds(&spec.kinds).map_err(DistError::Platform)?;
    let targets = Campaign::expand_targets(&spec.selection);
    assert!(
        !targets.is_empty(),
        "campaign target selection expands to no target sets"
    );
    // Work item 0 is the fault-free baseline; 1.. are the fault programs in
    // the same deterministic order as the in-process work list.
    let mut work: WorkList = vec![None];
    for t in &targets {
        for k in &spec.kinds {
            work.push(Some((t.clone(), *k)));
        }
    }
    let eval = eval.take(spec.eval_images);
    let started = Instant::now();

    // One quantization pass per campaign, exactly like the in-process path;
    // the bytes ship to every worker, no worker re-quantizes.
    let qset = QuantizedEvalSet::build(model, &eval.images);

    // The prototype compiles the plan once, validates the window before any
    // work is scheduled, and donates the DRAM weight image.
    let mut proto = EmulationPlatform::assemble(model, config)?;
    if let Some(w) = &spec.fault_window {
        proto.accel().validate_fault_window(w)?;
    }
    // Static verification at plan load, then fault reachability over the
    // work list: provably-masked items are never scheduled on the fleet —
    // their records fold the fault-free predictions against themselves
    // after the merge (bit-identical to running them, by soundness of the
    // analysis). The baseline (item 0) is always executed.
    run_plan_verifier(proto.plan(), spec.verify).map_err(DistError::Platform)?;
    let gated = config.accel.idle_lanes == IdleLanePolicy::Gated;
    let masked: Vec<bool> = work
        .iter()
        .map(|item| match item {
            Some((targets, kind)) if spec.verify != VerifyMode::Off => fault_provably_masked(
                proto.plan(),
                targets,
                *kind,
                gated,
                spec.fault_window.as_ref(),
            ),
            _ => false,
        })
        .collect();
    let masked_static = masked.iter().filter(|&&m| m).count();
    if masked_static == work.len() - 1 {
        // Every fault item is provably masked: the whole campaign is the
        // baseline pass, so run in-process (which prunes identically) and
        // never touch the fleet.
        if spec.verbose {
            progress::note(format!(
                "  all {masked_static} work item(s) provably masked; fleet not engaged"
            ));
        }
        let result = Campaign::new(model, config).run(spec, &eval)?;
        if let Some(path) = &spec.checkpoint_path {
            Checkpoint::remove(path);
        }
        return Ok(Prepared::Immediate(result));
    }
    // Windowed campaigns build the golden activation cache once, on the
    // coordinator's prototype — exactly like the in-process path — and ship
    // it as a fourth content-addressed artifact so remote workers restore
    // golden prefixes instead of recomputing them.
    let golden = match &spec.fault_window {
        Some(w) => GoldenActivationCache::build(&mut proto, &qset, w, spec.golden_cache_bytes)?,
        None => None,
    };
    let plan_words = nvfi_compiler::plan::encode_words(proto.plan());
    let weight_image = proto.accel_mut().export_weight_image()?;

    let wire_config: WireConfig = config.into();
    let plan_hash = hash_plan(&wire_config, local_devices as u32, &plan_words);
    let weights_hash = hash_weights(&weight_image);
    let eval_hash = hash_eval(&qset);
    let golden_hash = golden.as_ref().map_or(0, hash_golden);

    // The task list: each work item cut into as many contiguous shards as
    // the two-level layout gives its scheduling slot — all 1s when the work
    // list is at least as wide as the fleet (pure item-level parallelism),
    // wider shard fan-out when the fleet outnumbers the items.
    let layout = Campaign::pool_layout(total_workers, work.len(), 0);
    let granularity = DevicePool::granularity(&config);
    let mut tasks: Vec<Task> = Vec::new();
    for (i, is_masked) in masked.iter().enumerate() {
        if *is_masked {
            continue; // provably masked: no shards, no fleet time
        }
        let shards = layout.get(i % layout.len().max(1)).copied().unwrap_or(1);
        for range in DevicePool::shard_plan(eval.len(), shards, granularity) {
            tasks.push(Task { work_id: i, range });
        }
    }

    let result_key = result_cache_key(
        (plan_hash, weights_hash, eval_hash, golden_hash),
        &work,
        spec,
        eval.len(),
        &eval.labels,
    );
    Ok(Prepared::Scheduled(Box::new(PreparedCampaign {
        config,
        local_devices,
        plan_hash,
        weights_hash,
        eval_hash,
        golden_hash,
        plan_words,
        weight_image,
        qset,
        golden,
        work,
        masked,
        masked_static,
        tasks,
        window: spec.fault_window.clone(),
        verbose: spec.verbose,
        checkpoint_path: spec.checkpoint_path.clone(),
        labels: eval.labels.clone(),
        eval_len: eval.len(),
        result_key,
        started,
    })))
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

/// Picks the next client a freed worker should serve: among the *ready*
/// clients (unfinished, with queued shards), the one with the fewest
/// dispatched shards wins, ties to the lower (older) id. Pure so the
/// fairness invariant is unit-testable: a client with pending work is
/// never starved by a larger campaign, because every dispatch to the big
/// client raises its count above the small one's.
fn fair_share_pick(clients: impl Iterator<Item = (u64, u64, bool)>) -> Option<u64> {
    clients
        .filter(|&(_, _, ready)| ready)
        .min_by_key(|&(id, dispatched, _)| (dispatched, id))
        .map(|(id, _, _)| id)
}

/// Progress of one client campaign, streamed per completed shard over
/// [`ClientHandle::progress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Shards completed so far (checkpoint-prefilled ones included).
    pub done: usize,
    /// Total shards of this campaign.
    pub total: usize,
}

/// Counters of a [`CampaignServer`]'s lifetime, for tests and monitoring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Campaigns submitted (result-cache hits included).
    pub campaigns_submitted: u64,
    /// Submissions answered from the result cache without fleet work.
    pub cache_hits: u64,
    /// Shards handed to workers (requeued shards count again).
    pub tasks_dispatched: u64,
    /// Artifact frames actually shipped to workers (cache misses only).
    pub artifact_frames_shipped: u64,
    /// Audit re-executions scheduled (wire re-dispatches and in-process
    /// ones both count; never counted in [`tasks_dispatched`](Self::tasks_dispatched)).
    pub audits_dispatched: u64,
    /// Audits whose replica disagreed with the stored result (each one
    /// arbitrated by an authoritative in-process re-execution).
    pub audit_mismatches: u64,
    /// Worker identities that transitioned into quarantine.
    pub workers_quarantined: u64,
    /// Shard replies rejected for a failed attestation
    /// ([`WireError::Integrity`]) — requeued, never merged.
    pub integrity_rejects: u64,
}

impl ServerStats {
    /// Renders the server counters — followed by every metric in the
    /// process-wide `nvfi_obs` registry (engine path decisions, serialize-
    /// once probes, shard timings) — as Prometheus text exposition. This
    /// is the payload of a [`Msg::Stats`] reply.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in [
            ("server_campaigns_submitted", self.campaigns_submitted),
            ("server_cache_hits", self.cache_hits),
            ("server_tasks_dispatched", self.tasks_dispatched),
            (
                "server_artifact_frames_shipped",
                self.artifact_frames_shipped,
            ),
            ("server_audits_dispatched", self.audits_dispatched),
            ("server_audit_mismatches", self.audit_mismatches),
            ("server_workers_quarantined", self.workers_quarantined),
            ("server_integrity_rejects", self.integrity_rejects),
        ] {
            let _ = writeln!(out, "# TYPE nvfi_{name} counter");
            let _ = writeln!(out, "nvfi_{name} {v}");
        }
        out.push_str(&nvfi_obs::metrics::render_prometheus());
        out
    }
}

/// One entry of a client's pending-work queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QueueEntry {
    /// Run this task for the first (or requeued) time.
    Run(usize),
    /// Silently re-execute an already-completed task to verify the worker
    /// that produced it. Ineligible for the producer itself unless no other
    /// worker is connected (then it runs in-process).
    Audit { task_idx: usize, producer: u64 },
}

/// One client campaign's scheduling state.
struct ClientState {
    /// The `(plan, weights, eval, golden)` artifact hashes — the worker
    /// session key. `golden` is 0 when the campaign ships none.
    session: (u64, u64, u64, u64),
    work: Arc<WorkList>,
    window: Option<Range<u64>>,
    tasks: Arc<Vec<Task>>,
    /// Pending work (popped by workers, pushed back on loss).
    queue: Vec<QueueEntry>,
    /// One slot per task, filled as shards land.
    results: Vec<Option<Vec<u8>>>,
    /// Which worker identity produced each landed result (`None` for
    /// checkpoint-prefilled or arbitration-authoritative slots).
    producer: Vec<Option<u64>>,
    /// Tasks with an audit scheduled or in flight (guards every resolution
    /// path — an audit is closed exactly once).
    audit_open: Vec<bool>,
    /// Tasks whose stored result was confirmed (audit passed or
    /// authoritative re-execution) — exempt from quarantine sweeps.
    verified: Vec<bool>,
    /// Open audits; a client finishes only when this reaches zero.
    audits_pending: usize,
    done: usize,
    /// Shards dispatched so far — the fair-share key.
    dispatched: u64,
    fatal: Option<DistError>,
    finished: bool,
    verbose: bool,
    ckpt: Option<Arc<CkptState>>,
    /// In-process authoritative re-executor for audit arbitration.
    arbiter: Arc<Arbiter>,
    progress: Sender<Progress>,
}

/// Mutex-guarded server state.
struct ServerState {
    /// Encoded artifact frames by content hash — each encoded exactly once
    /// per server, replayed to however many workers miss it.
    artifacts: HashMap<u64, Arc<Vec<u8>>>,
    clients: BTreeMap<u64, ClientState>,
    next_client: u64,
    /// Finished campaigns by result key (see [`result_cache_key`]).
    results_cache: HashMap<u64, CampaignResult>,
    /// Reputation per worker identity — survives reconnects and drains.
    trust: HashMap<u64, Trust>,
    /// Connection count per worker identity currently serving.
    active_idents: HashMap<u64, u32>,
    stats: ServerStats,
}

/// Everything worker-connection threads, the acceptor and client handles
/// share.
struct ServerInner {
    state: Mutex<ServerState>,
    /// Notified whenever a client finishes (success, fatal, fleet lost).
    completion: Condvar,
    shutting_down: AtomicBool,
    /// Currently connected workers (initial fleet + re-admissions − losses).
    active: AtomicUsize,
    task_timeout: Option<Duration>,
    readmission_grace: Duration,
    max_readmissions: usize,
    total_workers: usize,
    /// Fraction of non-baseline completed shards audited (baseline shards
    /// are always audited). See [`FleetSpec::audit_rate`].
    audit_rate: f64,
    /// Whether integrity strikes and audit convictions quarantine workers
    /// (audits still *repair* results when off). See [`FleetSpec::quarantine`].
    quarantine: bool,
}

/// The in-process authoritative re-executor behind audit arbitration: the
/// campaign's artifacts kept decoded-side, plus a lazily built one-device
/// pool. Mirrors the worker's shard execution exactly (same plan decode,
/// same weight import, same classify entry points), so its predictions are
/// bit-identical to an honest worker's — per-image inference is independent
/// of device count and shard cuts, which is the same property the
/// distributed/in-process parity tests pin down.
struct Arbiter {
    config: PlatformConfig,
    plan_words: Arc<Vec<u32>>,
    weight_image: Arc<Vec<(u64, Vec<i8>)>>,
    qset: Arc<QuantizedEvalSet>,
    golden: Arc<Option<GoldenActivationCache>>,
    work: Arc<WorkList>,
    window: Option<Range<u64>>,
    /// Built on first use; an audit-free campaign never pays for it.
    pool: Mutex<Option<DevicePool>>,
}

impl Arbiter {
    /// Re-executes one task authoritatively, returning its predictions.
    fn run(&self, task: &Task) -> Result<Vec<u8>, DistError> {
        let mut guard = lock(&self.pool);
        if guard.is_none() {
            let decoded = nvfi_compiler::plan::decode_words(&self.plan_words)
                .map_err(|_| DistError::Protocol("arbiter plan words do not decode"))?;
            let mut device = EmulationPlatform::from_plan(decoded, self.config)?;
            device
                .accel_mut()
                .import_weight_image(&self.weight_image)
                .map_err(|e| DistError::Platform(e.into()))?;
            *guard = Some(DevicePool::from_device(device, 1));
        }
        let Some(pool) = guard.as_mut() else {
            return Err(DistError::Protocol("arbiter pool vanished"));
        };
        pool.clear_faults();
        let fault = self
            .work
            .get(task.work_id)
            .and_then(|item| item.as_ref())
            .map(|(targets, kind)| FaultConfig::new(targets.clone(), *kind));
        if let Some(f) = &fault {
            pool.inject(f);
        }
        // The baseline stays window-free, exactly like the dispatch path.
        let window = if fault.is_some() {
            self.window.clone()
        } else {
            None
        };
        pool.set_fault_window(window.clone())?;
        let preds = if window.is_some() {
            pool.classify_i8_golden_range(
                &self.qset,
                task.range.clone(),
                self.golden.as_ref().as_ref(),
            )?
        } else {
            pool.classify_i8_range(&self.qset, task.range.clone())?
        };
        pool.clear_faults();
        pool.set_fault_window(None)?;
        Ok(preds)
    }
}

/// Whether a completed shard is sampled for audit: the baseline (work item
/// 0) always is — the one shard every campaign depends on — and others by
/// a deterministic domain-tagged draw over `(client, shard key)` against
/// `audit_rate`, so the audit set is reproducible run to run.
fn audit_sampled(rate: f64, client: u64, key: (u32, u32, u32)) -> bool {
    if key.0 == 0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let mut h = Fnv64::new();
    h.write(&[7]);
    h.write_u64(client);
    h.write_u64(u64::from(key.0));
    h.write_u64(u64::from(key.1));
    h.write_u64(u64::from(key.2));
    // nvfi-lint: allow(truncating-cast) — rate is in (0, 1), product < 10_000
    (h.finish() % 10_000) < (rate * 10_000.0) as u64
}

/// Finishes a client once every shard landed **and** every open audit was
/// resolved; must be called with the state lock held.
fn maybe_finish(c: &mut ClientState, completion: &Condvar) {
    if !c.finished && c.done == c.tasks.len() && c.audits_pending == 0 {
        c.finished = true;
        completion.notify_all();
    }
}

/// Fails one client with a deterministic error (other clients keep
/// running).
fn fail_client(inner: &ServerInner, id: u64, e: DistError) {
    let mut st = lock(&inner.state);
    if let Some(c) = st.clients.get_mut(&id) {
        if !c.finished {
            c.fatal = Some(e);
            c.finished = true;
            c.queue.clear();
            inner.completion.notify_all();
        }
    }
}

/// One task a quarantine sweep must re-verify in-process.
struct SweepItem {
    client: u64,
    task_idx: usize,
    arbiter: Arc<Arbiter>,
    tasks: Arc<Vec<Task>>,
    ckpt: Option<Arc<CkptState>>,
}

/// Punishes a worker identity: a `strike` (attestation failure) walks
/// `Healthy → Suspect → Quarantined`, a conviction (audit arbitration
/// proved a wrong answer) quarantines outright. On the transition *into*
/// quarantine every unverified shard the worker produced is re-verified by
/// the owning client's arbiter — repaired if it lied — so nothing the
/// convicted worker touched survives unchecked. No-op when
/// [`FleetSpec::quarantine`] is off.
fn punish_worker(inner: &ServerInner, ident: u64, conviction: bool) {
    if !inner.quarantine {
        return;
    }
    let mut sweep: Vec<SweepItem> = Vec::new();
    {
        let mut guard = lock(&inner.state);
        let st = &mut *guard;
        let t = st.trust.entry(ident).or_default();
        if t.is_quarantined() {
            return; // already quarantined (and swept)
        }
        if conviction {
            t.convict();
        } else {
            t.strike();
        }
        if !t.is_quarantined() {
            trace::event("trust.strike");
            return; // first strike: Suspect — every next shard is audited
        }
        trace::event("trust.quarantined");
        st.stats.workers_quarantined += 1;
        for (&id, c) in &mut st.clients {
            if c.finished {
                continue;
            }
            // Queued audits of the quarantined producer are superseded by
            // the sweep (their pending counts are resolved there).
            c.queue
                .retain(|e| !matches!(e, QueueEntry::Audit { producer, .. } if *producer == ident));
            for i in 0..c.tasks.len() {
                let produced = c.producer.get(i).copied().flatten() == Some(ident);
                let unverified = !c.verified.get(i).copied().unwrap_or(true);
                let landed = c.results.get(i).is_some_and(Option::is_some);
                if produced && unverified && landed {
                    if !c.audit_open.get(i).copied().unwrap_or(true) {
                        if let Some(open) = c.audit_open.get_mut(i) {
                            *open = true;
                            c.audits_pending += 1;
                        }
                    }
                    sweep.push(SweepItem {
                        client: id,
                        task_idx: i,
                        arbiter: Arc::clone(&c.arbiter),
                        tasks: Arc::clone(&c.tasks),
                        ckpt: c.ckpt.clone(),
                    });
                }
            }
        }
    }
    for item in sweep {
        let Some(task) = item.tasks.get(item.task_idx) else {
            continue;
        };
        let auth = match item.arbiter.run(task) {
            Ok(v) => v,
            Err(e) => {
                fail_client(inner, item.client, e);
                continue;
            }
        };
        let mut rerecord = false;
        {
            let mut guard = lock(&inner.state);
            let st = &mut *guard;
            let Some(c) = st.clients.get_mut(&item.client) else {
                continue;
            };
            if c.finished || !c.audit_open.get(item.task_idx).copied().unwrap_or(false) {
                continue; // resolved by a concurrent audit landing
            }
            if let Some(slot) = c.results.get_mut(item.task_idx) {
                if slot.as_deref() != Some(auth.as_slice()) {
                    if slot.is_some() {
                        st.stats.audit_mismatches += 1;
                    } else {
                        // The audited task was discarded and requeued (its
                        // producer got convicted): the arbitration *is* its
                        // completion.
                        c.done += 1;
                    }
                    *slot = Some(auth.clone());
                    rerecord = true;
                }
            }
            close_audit(c, item.task_idx, &inner.completion);
        }
        if rerecord {
            if let Some(ck) = &item.ckpt {
                ck.record(task, &auth);
            }
        }
    }
}

/// Closes one open audit (idempotently guarded by the caller): the slot is
/// now verified and the producer bookkeeping retired. Must be called with
/// the state lock held and `audit_open[task_idx]` true.
fn close_audit(c: &mut ClientState, task_idx: usize, completion: &Condvar) {
    if let Some(open) = c.audit_open.get_mut(task_idx) {
        *open = false;
    }
    if let Some(v) = c.verified.get_mut(task_idx) {
        *v = true;
    }
    c.audits_pending = c.audits_pending.saturating_sub(1);
    maybe_finish(c, completion);
}

/// How a picked assignment is to be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AssignKind {
    /// Dispatch over the wire and merge the reply.
    Run,
    /// Dispatch over the wire and compare the reply against the stored
    /// result of `producer`'s earlier run.
    Audit { producer: u64 },
    /// No other worker can audit `producer` (one-worker fleet): run the
    /// arbiter in-process and compare directly.
    AuditLocal { producer: u64 },
}

/// One dispatch decision, built under the state lock and executed outside
/// it.
struct Assignment {
    client: u64,
    task_idx: usize,
    kind: AssignKind,
    tasks: Arc<Vec<Task>>,
    session: (u64, u64, u64, u64),
    /// [`Msg::ArtifactDelta`] ship bitmask for this connection.
    ship: u8,
    /// The pre-encoded artifact frames to ship, in ship-bit order.
    frames: Vec<Arc<Vec<u8>>>,
    work_msg: Msg,
    /// Expected `(work_id, start, end)` of the reply.
    key: (u32, u32, u32),
    ckpt: Option<Arc<CkptState>>,
    arbiter: Arc<Arbiter>,
    total: usize,
}

/// Whether one queue entry is dispatchable to the worker identity `ident`:
/// runs always are; audits only to a worker other than the producer —
/// unless no other worker is connected, in which case the producer's
/// connection thread arbitrates in-process ([`AssignKind::AuditLocal`]).
/// Audits whose task was already resolved (conviction sweep, fleet-loss
/// rescue) are stale and never eligible.
fn entry_eligible(c: &ClientState, e: &QueueEntry, ident: u64, active: &[u64]) -> bool {
    match *e {
        QueueEntry::Run(_) => true,
        QueueEntry::Audit { task_idx, producer } => {
            c.audit_open.get(task_idx).copied().unwrap_or(false)
                && (ident != producer || !active.iter().any(|&w| w != producer))
        }
    }
}

/// Pops the fairest client's next eligible entry and computes what this
/// connection must ship to run it. `has` is the connection's view of the
/// worker's artifact cache (advertisement + everything shipped since); it
/// is updated optimistically — if the ship fails the connection breaks
/// anyway.
fn pick_assignment(inner: &ServerInner, has: &mut HashSet<u64>, ident: u64) -> Option<Assignment> {
    let mut guard = lock(&inner.state);
    let st = &mut *guard;
    let active: Vec<u64> = st
        .active_idents
        .iter()
        .filter(|&(_, &n)| n > 0)
        .map(|(&w, _)| w)
        .collect();
    let id = fair_share_pick(st.clients.iter().map(|(&id, c)| {
        let ready = !c.finished && c.queue.iter().any(|e| entry_eligible(c, e, ident, &active));
        (id, c.dispatched, ready)
    }))?;
    let c = st.clients.get_mut(&id)?;
    // Newest-first, like the plain pop the Run-only queue used to get.
    let pos = c
        .queue
        .iter()
        .rposition(|e| entry_eligible(c, e, ident, &active))?;
    let entry = c.queue.remove(pos);
    let (task_idx, kind) = match entry {
        QueueEntry::Run(task_idx) => {
            c.dispatched += 1;
            st.stats.tasks_dispatched += 1;
            (task_idx, AssignKind::Run)
        }
        QueueEntry::Audit { task_idx, producer } => {
            st.stats.audits_dispatched += 1;
            let kind = if ident != producer {
                AssignKind::Audit { producer }
            } else {
                AssignKind::AuditLocal { producer }
            };
            (task_idx, kind)
        }
    };
    let task = c.tasks.get(task_idx)?;
    let fault = c
        .work
        .get(task.work_id)
        .and_then(|item| item.as_ref())
        .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
    // The baseline stays window-free, exactly like the in-process path.
    let window = if fault.is_some() {
        c.window.clone()
    } else {
        None
    };
    let key = (
        task.work_id as u32,
        task.range.start as u32,
        task.range.end as u32,
    );
    let work_msg = Msg::Work {
        work_id: key.0,
        start: key.1,
        end: key.2,
        fault,
        window,
    };
    let session = c.session;
    let (mut ship, mut frames) = (0u8, Vec::new());
    // An in-process audit touches no socket: nothing to ship.
    if !matches!(kind, AssignKind::AuditLocal { .. }) {
        for (bit, &hash) in [session.0, session.1, session.2, session.3]
            .iter()
            .enumerate()
        {
            if hash == 0 || has.contains(&hash) {
                continue; // absent (golden-free campaign) or already cached
            }
            let Some(frame) = st.artifacts.get(&hash) else {
                // Artifacts are registered before their client; an absent
                // one means the session is unshippable — skip the bit, the
                // worker will report the inconsistent delta.
                continue;
            };
            ship |= 1 << bit;
            frames.push(Arc::clone(frame));
            has.insert(hash);
        }
    }
    Some(Assignment {
        client: id,
        task_idx,
        kind,
        tasks: Arc::clone(&c.tasks),
        session,
        ship,
        frames,
        work_msg,
        key,
        ckpt: c.ckpt.clone(),
        arbiter: Arc::clone(&c.arbiter),
        total: c.tasks.len(),
    })
}

/// Puts a lost shard back on its owner's queue (the owner may have
/// finished — fatally or via another worker — in the meantime). A lost
/// *audit* is re-enqueued only while its audit is still open — a
/// conviction sweep may have resolved it meanwhile.
fn requeue(inner: &ServerInner, a: &Assignment, worker_id: usize, why: &dyn std::fmt::Display) {
    let mut st = lock(&inner.state);
    if let Some(c) = st.clients.get_mut(&a.client) {
        if !c.finished {
            match a.kind {
                AssignKind::Run => c.queue.push(QueueEntry::Run(a.task_idx)),
                AssignKind::Audit { producer } | AssignKind::AuditLocal { producer } => {
                    if c.audit_open.get(a.task_idx).copied().unwrap_or(false) {
                        c.queue.push(QueueEntry::Audit {
                            task_idx: a.task_idx,
                            producer,
                        });
                    }
                }
            }
            trace::event("shard.requeued");
            if c.verbose {
                if let Some(task) = a.tasks.get(a.task_idx) {
                    progress::emit(&progress::Event::ShardRequeued {
                        worker: worker_id,
                        client: a.client,
                        item: task.work_id as u32,
                        start: task.range.start as u32,
                        end: task.range.end as u32,
                        why: why.to_string(),
                    });
                }
            }
        }
    }
}

/// Why one task attempt ended.
enum TaskError {
    /// The connection is no longer trustworthy — the worker died, stalled
    /// past the timeout, the transport corrupted a frame, or the reply was
    /// malformed. Requeue the shard; a reconnecting worker gets
    /// re-admitted.
    WorkerLost(std::io::Error),
    /// The reply decoded cleanly (valid CRC) but its attestation does not
    /// match the assigned session and predictions: the worker executed
    /// against stale artifacts or the payload was corrupted after the CRC
    /// was sealed. Requeue the shard *and strike the worker*.
    Integrity(WireError),
    /// A deterministic error that retrying elsewhere would reproduce.
    Fatal(DistError),
}

/// Awaits one shard's predictions, absorbing [`Msg::Pong`] heartbeats
/// (each restarts the `task_timeout` silence window — a slow worker that
/// keeps heartbeating never times out) and chaos-duplicated replays of
/// **any** previously recorded completion — `done_keys` holds every
/// completion this connection has accepted, so an arbitrarily late
/// reordered duplicate is recognized, not just the most recent. The dedup
/// key includes the **client** id: two multiplexed clients may
/// legitimately produce identical `(work_id, start, end)` triples back to
/// back.
///
/// A reply matching the assigned key is accepted only if its attestation
/// matches a recomputation over the **assigned session** and the delivered
/// predictions — otherwise it is a [`TaskError::Integrity`]: the worker
/// executed against stale artifacts, or the payload was corrupted after
/// its CRC was sealed (the byzantine case the wire layer provably cannot
/// catch).
fn await_shard(
    stream: &mut TcpStream,
    client: u64,
    key: (u32, u32, u32),
    session: (u64, u64, u64, u64),
    task_timeout: Option<Duration>,
    done_keys: &mut HashSet<(u64, u32, u32, u32)>,
) -> Result<(Vec<u8>, Vec<wire::WireSpan>), TaskError> {
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(task_timeout);
    }
    let result = loop {
        match wire::recv(stream) {
            // Heartbeat (or a stale idle-probe reply): proof of life. The
            // per-recv timeout restarts, which is exactly the liveness
            // contract — silence times out, progress does not.
            Ok(Msg::Pong) => continue,
            Ok(Msg::ShardDone {
                work_id,
                start,
                end,
                attest,
                preds,
                spans,
            }) => {
                if done_keys.contains(&(client, work_id, start, end)) {
                    // A chaos-duplicated replay of an earlier completion
                    // (however late): already merged, skip it.
                    continue;
                }
                if (work_id, start, end) == key {
                    let expected = wire::shard_attestation(session, work_id, start, end, &preds);
                    if attest != expected {
                        break Err(TaskError::Integrity(WireError::Integrity {
                            expected,
                            got: attest,
                        }));
                    }
                    done_keys.insert((client, work_id, start, end));
                    break Ok((preds, spans));
                }
                // A completion for a shard this connection doesn't own: the
                // stream is out of step (dropped/duplicated frames). Drop
                // the connection and requeue — never merge it.
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "shard reply does not match the assigned task",
                )));
            }
            Ok(Msg::WorkerErr { message }) => {
                break Err(TaskError::Fatal(DistError::Worker(message)))
            }
            Ok(_) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "message outside the session lifecycle",
                )))
            }
            Err(DistError::Io(e)) => break Err(TaskError::WorkerLost(e)),
            // A malformed or CRC-failed frame is a broken peer or transport,
            // not the client's fault: drop the connection, requeue, let
            // re-admission replace the worker. Garbage traffic costs the
            // fabric a retry — it never fails a campaign.
            Err(DistError::Wire(e)) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                )))
            }
            Err(e) => break Err(TaskError::Fatal(e)),
        }
    };
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(None);
    }
    result
}

/// Lands one completed *run*: checkpoint, merge, and — when the shard is
/// sampled (or the producer is under heightened audit) — schedule a silent
/// audit re-execution. A result landed by a worker that was quarantined
/// mid-flight is discarded and its task requeued: nothing a convicted
/// worker produced is merged unverified.
fn land_run(inner: &ServerInner, a: &Assignment, worker_id: usize, ident: u64, preds: Vec<u8>) {
    // Persist before counting done: a server killed right here resumes
    // with this shard already checkpointed. (A later arbitration replaces
    // the entry by key if this worker turns out to have lied.)
    if let Some(ck) = &a.ckpt {
        if let Some(task) = a.tasks.get(a.task_idx) {
            ck.record(task, &preds);
        }
    }
    let mut guard = lock(&inner.state);
    let st = &mut *guard;
    let producer_trust = st.trust.get(&ident).copied().unwrap_or_default();
    let Some(c) = st.clients.get_mut(&a.client) else {
        return;
    };
    if c.finished || !matches!(c.results.get(a.task_idx), Some(None)) {
        return;
    }
    if inner.quarantine && producer_trust.is_quarantined() {
        // Convicted while this shard was in flight: discard and requeue.
        c.queue.push(QueueEntry::Run(a.task_idx));
        return;
    }
    if let Some(slot) = c.results.get_mut(a.task_idx) {
        *slot = Some(preds);
    }
    if let Some(p) = c.producer.get_mut(a.task_idx) {
        *p = Some(ident);
    }
    c.done += 1;
    let _ = c.progress.send(Progress {
        done: c.done,
        total: a.total,
    });
    if c.verbose {
        if let Some(task) = a.tasks.get(a.task_idx) {
            // `c.done` was advanced under the state lock just above, so
            // the printed sequence is monotonic; the renderer's own lock
            // only guards against interleaved lines.
            progress::emit(&progress::Event::ShardLanded {
                client: a.client,
                done: c.done,
                total: a.total,
                worker: worker_id,
                item: task.work_id as u32,
                start: task.range.start as u32,
                end: task.range.end as u32,
            });
        }
    }
    let need_audit = (inner.quarantine && producer_trust.audits_all())
        || audit_sampled(inner.audit_rate, a.client, a.key);
    if need_audit && !c.verified.get(a.task_idx).copied().unwrap_or(false) {
        if let Some(open) = c.audit_open.get_mut(a.task_idx) {
            *open = true;
            c.audits_pending += 1;
            c.queue.push(QueueEntry::Audit {
                task_idx: a.task_idx,
                producer: ident,
            });
        }
    }
    maybe_finish(c, &inner.completion);
}

/// Resolves one wire-dispatched audit: the replica either confirms the
/// stored result (audit passes, producer credited) or triggers the
/// authoritative in-process arbitration that decides which replica lied —
/// repairing the stored result and convicting the liar.
fn resolve_wire_audit(
    inner: &ServerInner,
    a: &Assignment,
    producer: u64,
    auditor: u64,
    replica: Vec<u8>,
) {
    let original: Option<Vec<u8>> = {
        let mut guard = lock(&inner.state);
        let st = &mut *guard;
        let Some(c) = st.clients.get_mut(&a.client) else {
            return;
        };
        if c.finished || !c.audit_open.get(a.task_idx).copied().unwrap_or(false) {
            return; // resolved meanwhile (conviction sweep, rescue)
        }
        match c.results.get(a.task_idx).and_then(Option::as_ref) {
            Some(orig) if *orig == replica => {
                // Audit passed: the stored result is confirmed.
                trace::event("audit.pass");
                close_audit(c, a.task_idx, &inner.completion);
                if inner.quarantine {
                    st.trust.entry(producer).or_default().audit_passed();
                }
                None
            }
            Some(orig) => {
                trace::event("audit.mismatch");
                st.stats.audit_mismatches += 1;
                Some(orig.clone())
            }
            None => {
                // No stored result to audit (requeued after a quarantine
                // discard): nothing to compare, close the audit.
                close_audit(c, a.task_idx, &inner.completion);
                None
            }
        }
    };
    let Some(original) = original else {
        return;
    };
    // Two replicas disagree: somebody lied. Arbitrate authoritatively.
    let Some(task) = a.tasks.get(a.task_idx) else {
        return;
    };
    let auth = match a.arbiter.run(task) {
        Ok(v) => v,
        Err(e) => {
            fail_client(inner, a.client, e);
            return;
        }
    };
    let orig_lied = auth != original;
    let replica_lied = auth != replica;
    let mut rerecord = false;
    {
        let mut guard = lock(&inner.state);
        if let Some(c) = guard.clients.get_mut(&a.client) {
            if !c.finished && c.audit_open.get(a.task_idx).copied().unwrap_or(false) {
                if orig_lied {
                    if let Some(slot) = c.results.get_mut(a.task_idx) {
                        *slot = Some(auth.clone());
                    }
                    if let Some(p) = c.producer.get_mut(a.task_idx) {
                        *p = None; // authoritative now
                    }
                    rerecord = true;
                }
                close_audit(c, a.task_idx, &inner.completion);
            }
        }
        if inner.quarantine && !orig_lied {
            // The producer told the truth; the auditor is the liar. Credit
            // the producer as any passed audit would.
            guard.trust.entry(producer).or_default().audit_passed();
        }
    }
    if rerecord {
        if let Some(ck) = &a.ckpt {
            ck.record(task, &auth);
        }
    }
    if orig_lied {
        punish_worker(inner, producer, true);
    }
    if replica_lied {
        punish_worker(inner, auditor, true);
    }
}

/// Resolves an in-process audit (one-worker fleets: nobody else can check
/// the producer): the arbiter's re-execution *is* authoritative, so it is
/// compared against the stored result directly.
fn resolve_local_audit(inner: &ServerInner, a: &Assignment, producer: u64) {
    let original: Option<Vec<u8>> = {
        let mut guard = lock(&inner.state);
        let Some(c) = guard.clients.get_mut(&a.client) else {
            return;
        };
        if c.finished || !c.audit_open.get(a.task_idx).copied().unwrap_or(false) {
            return;
        }
        match c.results.get(a.task_idx).and_then(Option::as_ref) {
            Some(orig) => Some(orig.clone()),
            None => {
                close_audit(c, a.task_idx, &inner.completion);
                None
            }
        }
    };
    let Some(original) = original else {
        return;
    };
    let Some(task) = a.tasks.get(a.task_idx) else {
        return;
    };
    let auth = match a.arbiter.run(task) {
        Ok(v) => v,
        Err(e) => {
            fail_client(inner, a.client, e);
            return;
        }
    };
    let lied = auth != original;
    let mut rerecord = false;
    {
        let mut guard = lock(&inner.state);
        let st = &mut *guard;
        if let Some(c) = st.clients.get_mut(&a.client) {
            if !c.finished && c.audit_open.get(a.task_idx).copied().unwrap_or(false) {
                trace::event(if lied { "audit.mismatch" } else { "audit.pass" });
                if lied {
                    st.stats.audit_mismatches += 1;
                    if let Some(slot) = c.results.get_mut(a.task_idx) {
                        *slot = Some(auth.clone());
                    }
                    if let Some(p) = c.producer.get_mut(a.task_idx) {
                        *p = None;
                    }
                    rerecord = true;
                } else if inner.quarantine {
                    st.trust.entry(producer).or_default().audit_passed();
                }
                close_audit(c, a.task_idx, &inner.completion);
            }
        }
    }
    if rerecord {
        if let Some(ck) = &a.ckpt {
            ck.record(task, &auth);
        }
    }
    if lied {
        punish_worker(inner, producer, true);
    }
}

/// Drives one worker connection for the life of the server: pick the
/// fairest client's next entry, activate the session by delta if it
/// changed, run the shard (or audit), land the result — requeueing on
/// loss, striking integrity violations, draining quarantined workers with
/// [`Msg::Goodbye`], probing liveness while idle, and releasing the worker
/// with [`Msg::Shutdown`] at server shutdown.
fn connection_thread(
    inner: &Arc<ServerInner>,
    worker_id: usize,
    ident: u64,
    mut stream: TcpStream,
    advertised: Vec<u64>,
) {
    let mut has: HashSet<u64> = advertised.into_iter().collect();
    let mut current: (u64, u64, u64, u64) = (0, 0, 0, 0);
    let mut current_client: Option<u64> = None;
    // Every completion this connection has accepted, across session
    // switches: an arbitrarily late chaos-duplicated replay must be
    // recognized whenever it surfaces, not only right after the original.
    let mut done_keys: HashSet<(u64, u32, u32, u32)> = HashSet::new();
    let mut last_ping = Instant::now();
    // Start of this connection's current idle stretch — the per-shard
    // queue-wait phase runs from here to the next successful pick.
    let mut idle_since = trace::now_us();
    {
        let mut st = lock(&inner.state);
        *st.active_idents.entry(ident).or_insert(0) += 1;
    }
    loop {
        if inner.shutting_down.load(Ordering::Relaxed) {
            // Release the worker, then drain to EOF so the *worker* closes
            // first — keeping TIME_WAIT off the server's side, which
            // matters when a fixed listen port is re-bound by the next
            // experiment.
            let _ = wire::send(&mut stream, &Msg::Shutdown);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut sink = [0u8; 256];
            while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            break;
        }
        if inner.quarantine {
            let quarantined = lock(&inner.state)
                .trust
                .get(&ident)
                .is_some_and(|t| t.is_quarantined());
            if quarantined {
                // Drain the convicted worker. Its serve loop reads a clean
                // `Goodbye` and stands down (or reconnects later, entering
                // probation via the acceptor's re-admission path).
                let _ = wire::send(
                    &mut stream,
                    &Msg::Goodbye {
                        reason: "worker quarantined after failed result audit".to_string(),
                    },
                );
                break;
            }
        }
        let Some(a) = pick_assignment(inner, &mut has, ident) else {
            // No ready client: stay available — a lost worker may yet
            // requeue a shard, a new campaign may arrive — and probe
            // liveness about once a second (fire-and-forget; the Pong is
            // absorbed by the next shard's reply loop) so a dead socket is
            // noticed while idle.
            if last_ping.elapsed() >= Duration::from_secs(1) {
                last_ping = Instant::now();
                if wire::send(&mut stream, &Msg::Ping).is_err() {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        // Per-shard phase spans, all on the worker's lane (`tid` =
        // `worker_id`) so the exported timeline reads one row per worker:
        // queue-wait ends at the successful pick; ship, execute and merge
        // are measured around their blocks below.
        let traced = trace::is_enabled();
        let ids = trace::Ids {
            campaign: 0,
            client: a.client,
            worker: worker_id as u64,
            shard: u64::from(a.key.0),
        };
        let lane = worker_id as u64;
        let picked_us = trace::now_us();
        if traced {
            trace::import_span(
                "shard.queue_wait",
                idle_since,
                picked_us.saturating_sub(idle_since),
                lane,
                ids,
            );
        }
        let _ctx = trace::with_ids(ids);
        if let AssignKind::AuditLocal { producer } = a.kind {
            // In-process arbitration: no frames on this connection.
            trace::event("audit.dispatch_local");
            resolve_local_audit(inner, &a, producer);
            idle_since = trace::now_us();
            continue;
        }
        if matches!(a.kind, AssignKind::Audit { .. }) {
            trace::event("audit.dispatch");
        }
        // Activate the session when it (or the owning client) changed. The
        // client matters only for bookkeeping symmetry: the artifact tuple
        // alone decides what ships.
        if a.session != current || current_client != Some(a.client) || a.ship != 0 {
            let ship_t0 = trace::now_us();
            let (plan, weights, eval, golden) = a.session;
            let activated = wire::send(
                &mut stream,
                &Msg::ArtifactDelta {
                    plan,
                    weights,
                    eval,
                    golden,
                    ship: a.ship,
                },
            )
            .and_then(|()| {
                a.frames
                    .iter()
                    .try_for_each(|f| wire::write_frame(&mut stream, f))
            });
            if let Err(e) = activated {
                requeue(inner, &a, worker_id, &e);
                break;
            }
            for f in &a.frames {
                wire::count_artifact_bytes(f.len() as u64);
            }
            if !a.frames.is_empty() {
                lock(&inner.state).stats.artifact_frames_shipped += a.frames.len() as u64;
            }
            if traced {
                let now = trace::now_us();
                trace::import_span(
                    "shard.ship",
                    ship_t0,
                    now.saturating_sub(ship_t0),
                    lane,
                    ids,
                );
            }
            current = a.session;
            current_client = Some(a.client);
        }
        // A legitimate re-dispatch of a key this connection completed
        // before (an audit of a task someone else requeued here, or a
        // repair re-run) must not be mistaken for a late duplicate.
        done_keys.remove(&(a.client, a.key.0, a.key.1, a.key.2));
        // Dispatch timestamp: worker-side span summaries in the reply are
        // shard-relative and get re-based onto the coordinator timeline
        // here.
        let exec_t0 = trace::now_us();
        if traced {
            trace::import_span(
                "server.dispatch",
                picked_us,
                exec_t0.saturating_sub(picked_us),
                lane,
                ids,
            );
        }
        let outcome = wire::send(&mut stream, &a.work_msg)
            .map_err(TaskError::WorkerLost)
            .and_then(|()| {
                await_shard(
                    &mut stream,
                    a.client,
                    a.key,
                    a.session,
                    inner.task_timeout,
                    &mut done_keys,
                )
            });
        match outcome {
            Ok((preds, worker_spans)) => {
                if traced {
                    let now = trace::now_us();
                    trace::import_span(
                        "shard.execute",
                        exec_t0,
                        now.saturating_sub(exec_t0),
                        lane,
                        ids,
                    );
                    for ws in worker_spans {
                        trace::import_span(ws.name, exec_t0 + ws.start_us, ws.dur_us, lane, ids);
                    }
                }
                let merge_t0 = trace::now_us();
                match a.kind {
                    AssignKind::Run => land_run(inner, &a, worker_id, ident, preds),
                    AssignKind::Audit { producer } => {
                        resolve_wire_audit(inner, &a, producer, ident, preds);
                    }
                    AssignKind::AuditLocal { .. } => {} // handled above
                }
                if traced {
                    let now = trace::now_us();
                    trace::import_span(
                        "shard.merge",
                        merge_t0,
                        now.saturating_sub(merge_t0),
                        lane,
                        ids,
                    );
                }
                idle_since = trace::now_us();
                last_ping = Instant::now();
            }
            Err(TaskError::WorkerLost(e)) => {
                // The shard is requeued for a surviving (or re-admitted)
                // worker; this connection is done.
                requeue(inner, &a, worker_id, &e);
                break;
            }
            Err(TaskError::Integrity(e)) => {
                // The reply survived its CRC but failed attestation: stale
                // artifacts or post-CRC corruption. Requeue, strike the
                // worker (two strikes quarantine), drop the connection.
                lock(&inner.state).stats.integrity_rejects += 1;
                requeue(inner, &a, worker_id, &e);
                punish_worker(inner, ident, false);
                break;
            }
            Err(TaskError::Fatal(e)) => {
                // Deterministic failure: retrying it on another worker
                // would reproduce it. Fail the owning client — other
                // clients keep running — and drop this connection (its
                // stream state is no longer trusted).
                fail_client(inner, a.client, e);
                break;
            }
        }
    }
    {
        let mut st = lock(&inner.state);
        if let Some(n) = st.active_idents.get_mut(&ident) {
            *n = n.saturating_sub(1);
        }
    }
    inner.active.fetch_sub(1, Ordering::SeqCst);
}

/// Keeps the listener open for the life of the server: re-admits
/// reconnecting or late workers (handshake + advertisement, then the
/// shared scheduler) and fails every unfinished client when the fleet
/// stays empty past the re-admission grace — the server itself survives a
/// fleet loss and serves later submissions if workers return.
fn acceptor_thread(
    inner: &Arc<ServerInner>,
    listener: &TcpListener,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut admitted = 0usize;
    let mut empty_since: Option<Instant> = None;
    // `NVFI_METRICS=top`: one periodic fleet-summary line instead of the
    // raw per-shard verbose stream.
    let metrics_top = matches!(std::env::var("NVFI_METRICS").as_deref(), Ok("top"));
    let mut last_top = Instant::now();
    loop {
        if inner.shutting_down.load(Ordering::Relaxed) {
            break;
        }
        if metrics_top && last_top.elapsed() >= Duration::from_secs(2) {
            last_top = Instant::now();
            let (clients, stats) = {
                let st = lock(&inner.state);
                (
                    st.clients.values().filter(|c| !c.finished).count(),
                    st.stats,
                )
            };
            progress::emit(&progress::Event::FleetSummary {
                workers: inner.active.load(Ordering::SeqCst),
                clients,
                dispatched: stats.tasks_dispatched,
                shipped: stats.artifact_frames_shipped,
                audits: stats.audits_dispatched,
                mismatches: stats.audit_mismatches,
                quarantined: stats.workers_quarantined,
                cache_hits: stats.cache_hits,
            });
        }
        if inner.active.load(Ordering::SeqCst) == 0 {
            let unfinished = {
                let st = lock(&inner.state);
                st.clients.values().any(|c| !c.finished)
            };
            if unfinished {
                let since = *empty_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= inner.readmission_grace {
                    // Nobody is left and nobody came back. A client whose
                    // only outstanding work is *audits* (the producer died
                    // before its verification landed) is rescued by
                    // arbitrating them in-process — its result must not be
                    // lost to somebody else's death.
                    rescue_open_audits(inner);
                    let mut st = lock(&inner.state);
                    for c in st.clients.values_mut() {
                        if !c.finished {
                            // Fail the rest (their checkpoints, if any,
                            // stay on disk for a resume). The server
                            // stays up.
                            c.fatal = Some(DistError::FleetLost {
                                incomplete: c.tasks.len() - c.done,
                            });
                            c.finished = true;
                            c.queue.clear();
                        }
                    }
                    inner.completion.notify_all();
                    empty_since = None;
                }
            } else {
                empty_since = None;
            }
        } else {
            empty_since = None;
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                if s.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = s.set_nodelay(true);
                // The handshake reads are bounded: a connected-but-silent
                // peer (half-open link, port scanner) is dropped, never
                // allowed to hang the acceptor.
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                if wire::accept_hello(&mut s).is_err() {
                    continue;
                }
                let (ident, hashes) = match wire::recv(&mut s) {
                    Ok(Msg::HaveArtifacts { ident, hashes }) => (ident, hashes),
                    // One-shot observability poll (wire v5): answer with
                    // the Prometheus exposition and drop the connection.
                    Ok(Msg::StatsQuery) => {
                        let text = lock(&inner.state).stats.render_prometheus();
                        let _ = wire::send(&mut s, &Msg::Stats { text });
                        continue;
                    }
                    _ => continue,
                };
                if admitted >= inner.max_readmissions {
                    // Versioned, explicit rejection *after* the handshake:
                    // the worker's serve loop reads a clean `Goodbye` and
                    // stands down, instead of hanging in TCP limbo or
                    // misreading the frame.
                    let _ = wire::send(
                        &mut s,
                        &Msg::Goodbye {
                            reason: format!(
                                "re-admission cap ({}) reached",
                                inner.max_readmissions
                            ),
                        },
                    );
                    continue;
                }
                if s.set_read_timeout(None).is_err() {
                    continue;
                }
                admitted += 1;
                inner.active.fetch_add(1, Ordering::SeqCst);
                empty_since = None;
                let worker_id = inner.total_workers + admitted;
                {
                    let mut st = lock(&inner.state);
                    // A quarantined identity coming back is re-admitted on
                    // probation: it serves again, but every shard it
                    // completes is audited until it earns trust back.
                    st.trust.entry(ident).or_default().readmit();
                    trace::event("worker.admitted");
                    if st.clients.values().any(|c| c.verbose) {
                        progress::emit(&progress::Event::WorkerAdmitted { worker: worker_id });
                    }
                }
                let inner2 = Arc::clone(inner);
                lock(conn_threads).push(std::thread::spawn(move || {
                    connection_thread(&inner2, worker_id, ident, s, hashes)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Resolves every open audit of every unfinished client in-process (the
/// fleet is gone; the arbiter is the only executor left). Audits whose
/// producers died unverified are arbitrated authoritatively, so a client
/// that only awaited verification finishes with a repaired — and correct —
/// result instead of a [`DistError::FleetLost`].
fn rescue_open_audits(inner: &ServerInner) {
    let mut rescue: Vec<SweepItem> = Vec::new();
    {
        let mut st = lock(&inner.state);
        for (&id, c) in &mut st.clients {
            if c.finished || c.audits_pending == 0 {
                continue;
            }
            for i in 0..c.tasks.len() {
                if c.audit_open.get(i).copied().unwrap_or(false) {
                    rescue.push(SweepItem {
                        client: id,
                        task_idx: i,
                        arbiter: Arc::clone(&c.arbiter),
                        tasks: Arc::clone(&c.tasks),
                        ckpt: c.ckpt.clone(),
                    });
                }
            }
        }
    }
    for item in rescue {
        let Some(task) = item.tasks.get(item.task_idx) else {
            continue;
        };
        let auth = match item.arbiter.run(task) {
            Ok(v) => v,
            Err(e) => {
                fail_client(inner, item.client, e);
                continue;
            }
        };
        let mut rerecord = false;
        {
            let mut guard = lock(&inner.state);
            let st = &mut *guard;
            let Some(c) = st.clients.get_mut(&item.client) else {
                continue;
            };
            if c.finished || !c.audit_open.get(item.task_idx).copied().unwrap_or(false) {
                continue;
            }
            if let Some(slot) = c.results.get_mut(item.task_idx) {
                if slot.as_deref() != Some(auth.as_slice()) {
                    if slot.is_some() {
                        st.stats.audit_mismatches += 1;
                    } else {
                        // The audited task was discarded and requeued (its
                        // producer got convicted): the arbitration *is* its
                        // completion.
                        c.done += 1;
                    }
                    *slot = Some(auth.clone());
                    rerecord = true;
                }
            }
            close_audit(c, item.task_idx, &inner.completion);
        }
        if rerecord {
            if let Some(ck) = &item.ckpt {
                ck.record(task, &auth);
            }
        }
    }
}

/// Accepts and handshakes `n` workers within `timeout` (the initial fleet
/// raise; afterwards the acceptor thread owns the listener, which it
/// leaves in the non-blocking mode set here). Returns each worker's stream
/// with its [`Msg::HaveArtifacts`] advertisement. Tolerant of bad peers:
/// a failed hello or a missing advertisement drops that connection and
/// keeps accepting — a chaos-mangled handshake costs the worker a clean
/// reconnect, not the fleet.
fn accept_fleet(
    listener: &TcpListener,
    n: usize,
    timeout: Duration,
) -> Result<Vec<(TcpStream, u64, Vec<u64>)>, DistError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DistError::Spawn(e.to_string()))?;
    let deadline = Instant::now() + timeout;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                // The handshake read is bounded by the remaining accept
                // deadline: a connected-but-silent peer (half-open link,
                // port scanner, stalled worker) must time the fleet out,
                // not hang the coordinator on a blocking recv forever.
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                if stream.set_read_timeout(Some(remaining)).is_err() {
                    continue;
                }
                if wire::accept_hello(&mut stream).is_err() {
                    continue;
                }
                let Ok(Msg::HaveArtifacts { ident, hashes }) = wire::recv(&mut stream) else {
                    continue;
                };
                if stream.set_read_timeout(None).is_err() {
                    continue;
                }
                streams.push((stream, ident, hashes));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(DistError::Spawn(format!(
                        "only {}/{} workers connected within {:?}",
                        streams.len(),
                        n,
                        timeout
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(DistError::Spawn(format!("accept: {e}"))),
        }
    }
    Ok(streams)
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A persistent multiplexing campaign server: one worker fleet, many
/// concurrent client campaigns (see the module docs). Dropping the server
/// shuts it down — unfinished clients fail with a named error, workers are
/// released with [`Msg::Shutdown`], spawned processes are reaped.
pub struct CampaignServer {
    inner: Arc<ServerInner>,
    children: Mutex<Vec<Child>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    addr: SocketAddr,
    local_devices_cfg: usize,
}

impl CampaignServer {
    /// Raises the fleet and starts the server: spawns `workers` local
    /// worker processes (per [`FleetSpec::spawn`]), waits for them plus
    /// [`FleetSpec::external_workers`] cross-host ones to connect and
    /// advertise their caches, and hands every connection to the shared
    /// scheduler. The listener stays open for the server's life, so
    /// workers raised later (or reconnecting after a crash) join the same
    /// fleet.
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when the fleet is empty
    /// (`workers + external_workers == 0`), a worker process cannot be
    /// spawned, or the fleet does not complete its handshakes within
    /// [`FleetSpec::accept_timeout`].
    pub fn start(fleet: &FleetSpec, workers: usize) -> Result<CampaignServer, DistError> {
        let total_workers = workers + fleet.external_workers;
        if total_workers == 0 {
            return Err(DistError::Spawn(
                "a campaign server needs at least one worker".to_string(),
            ));
        }
        // A fixed listen address may sit in TIME_WAIT for a moment after a
        // previous server of the same experiment, so AddrInUse is retried
        // within the accept budget rather than failing the experiment.
        let bind_addr = fleet.listen.as_deref().unwrap_or("127.0.0.1:0");
        let bind_deadline = Instant::now() + fleet.accept_timeout;
        let listener = loop {
            match TcpListener::bind(bind_addr) {
                Ok(l) => break l,
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse
                        && Instant::now() < bind_deadline =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(DistError::Spawn(format!("bind {bind_addr}: {e}"))),
            }
        };
        let local = listener
            .local_addr()
            .map_err(|e| DistError::Spawn(e.to_string()))?;
        // Spawned (same-host) workers connect to loopback when the listener
        // is on loopback or a wildcard; a concrete non-loopback bind
        // (cross-host listen combined with local spawns) is handed to them
        // verbatim.
        let connect_addr = if local.ip().is_unspecified() || local.ip().is_loopback() {
            format!("127.0.0.1:{}", local.port())
        } else {
            local.to_string()
        };
        let mut guard = FleetGuard {
            children: Vec::new(),
        };
        for i in 0..workers {
            let exe = match &fleet.spawn {
                WorkerSpawn::SelfExec => std::env::current_exe()
                    .map_err(|e| DistError::Spawn(format!("current_exe: {e}")))?,
                WorkerSpawn::Exe(p) => p.clone(),
            };
            let mut cmd = Command::new(&exe);
            cmd.env(worker::ENV_CONNECT, &connect_addr);
            // nvfi-lint: allow(decode-panic) — `&[][..]` is an empty-slice literal, not indexing
            for (k, v) in fleet.worker_env.get(i).map_or(&[][..], Vec::as_slice) {
                cmd.env(k, v);
            }
            guard.children.push(
                cmd.spawn()
                    .map_err(|e| DistError::Spawn(format!("spawn {}: {e}", exe.display())))?,
            );
        }
        // Early returns above drop the guard, which kills + reaps what was
        // spawned so far.
        let streams = accept_fleet(&listener, total_workers, fleet.accept_timeout)?;
        let children = std::mem::take(&mut guard.children);
        drop(guard);

        let inner = Arc::new(ServerInner {
            state: Mutex::new(ServerState {
                artifacts: HashMap::new(),
                clients: BTreeMap::new(),
                next_client: 0,
                results_cache: HashMap::new(),
                trust: HashMap::new(),
                active_idents: HashMap::new(),
                stats: ServerStats::default(),
            }),
            completion: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(streams.len()),
            task_timeout: fleet.task_timeout,
            readmission_grace: fleet.readmission_grace,
            max_readmissions: fleet.max_readmissions,
            total_workers,
            audit_rate: fleet.audit_rate,
            quarantine: fleet.quarantine,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        {
            let mut reg = lock(&conn_threads);
            for (worker_id, (stream, ident, hashes)) in streams.into_iter().enumerate() {
                let inner2 = Arc::clone(&inner);
                reg.push(std::thread::spawn(move || {
                    connection_thread(&inner2, worker_id, ident, stream, hashes)
                }));
            }
        }
        let acceptor = {
            let inner2 = Arc::clone(&inner);
            let reg = Arc::clone(&conn_threads);
            std::thread::spawn(move || acceptor_thread(&inner2, &listener, &reg))
        };
        Ok(CampaignServer {
            inner,
            children: Mutex::new(children),
            conn_threads,
            acceptor: Mutex::new(Some(acceptor)),
            addr: local,
            local_devices_cfg: fleet.local_devices,
        })
    }

    /// The address the server listens on — what cross-host `nvfi_worker`
    /// processes connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        lock(&self.inner.state).stats
    }

    /// Submits one campaign to the shared fleet and returns immediately
    /// with a [`ClientHandle`]; the campaign runs concurrently with every
    /// other submitted one, interleaved fair-share. `spec.workers` is
    /// ignored — the fleet was sized at [`CampaignServer::start`] — but
    /// `spec.threads` still means "total device budget" when the fleet's
    /// [`FleetSpec::local_devices`] was 0.
    ///
    /// An all-masked campaign, or one whose result key is already in the
    /// result cache, resolves without any fleet work.
    ///
    /// # Errors
    ///
    /// Compile/verification errors as their [`DistError`] variants.
    ///
    /// # Panics
    ///
    /// Panics on the same spec violations as [`Campaign::run`] (no kinds,
    /// zero evaluation images, empty expanded work list).
    pub fn submit(
        &self,
        model: &QuantModel,
        config: PlatformConfig,
        spec: &CampaignSpec,
        eval: &Dataset,
    ) -> Result<ClientHandle, DistError> {
        let local_devices = if self.local_devices_cfg > 0 {
            self.local_devices_cfg
        } else {
            (spec.threads / self.inner.total_workers).max(1)
        };
        match prepare(
            model,
            config,
            spec,
            eval,
            self.inner.total_workers,
            local_devices,
        )? {
            Prepared::Immediate(result) => Ok(ClientHandle::ready(result)),
            Prepared::Scheduled(p) => Ok(self.submit_prepared(*p)),
        }
    }

    /// Registers a [`PreparedCampaign`] with the scheduler: result-cache
    /// lookup first, then artifact registration (each distinct hash
    /// encoded exactly once per server), checkpoint prefill, and the
    /// client queue.
    pub(crate) fn submit_prepared(&self, p: PreparedCampaign) -> ClientHandle {
        let mut st = lock(&self.inner.state);
        st.stats.campaigns_submitted += 1;
        if let Some(cached) = st.results_cache.get(&p.result_key) {
            let mut result = cached.clone();
            st.stats.cache_hits += 1;
            drop(st);
            result.wall_seconds = p.started.elapsed().as_secs_f64();
            if let Some(path) = &p.checkpoint_path {
                // The cached answer completes this campaign; a stale
                // checkpoint must not donate shards to a later run.
                Checkpoint::remove(path);
            }
            return ClientHandle::ready(result);
        }
        // The decoded artifacts live on (shared) behind the audit arbiter:
        // an authoritative in-process re-execution needs exactly what a
        // worker would be shipped.
        let plan_words = Arc::new(p.plan_words);
        let weight_image = Arc::new(p.weight_image);
        let qset = Arc::new(p.qset);
        let golden = Arc::new(p.golden);
        let work = Arc::new(p.work);
        // Register the artifact frames. Encoding happens at most once per
        // distinct content hash for the server's whole life — the
        // serialize-once probes count these.
        let plan_frame = ensure_artifact(&mut st, p.plan_hash, || {
            Msg::Plan {
                config: p.config.into(),
                local_devices: p.local_devices as u32,
                words: plan_words.as_ref().clone(),
            }
            .encode()
        });
        let weights_frame = ensure_artifact(&mut st, p.weights_hash, || {
            Msg::Weights {
                regions: weight_image.as_ref().clone(),
            }
            .encode()
        });
        let shape = qset.shape();
        let eval_frame = ensure_artifact(&mut st, p.eval_hash, || {
            // Encoded straight from the borrowed pixel slice: no owned copy
            // of the (large) evaluation set just to build a `Msg`.
            wire::encode_eval_set(
                shape.n as u32,
                shape.c as u32,
                shape.h as u32,
                shape.w as u32,
                qset.images().as_slice(),
            )
        });
        if let Some(g) = golden.as_ref() {
            ensure_artifact(&mut st, p.golden_hash, || {
                Msg::Golden {
                    boundary: g.boundary() as u64,
                    surfaces: g.surfaces().to_vec(),
                    data: g.data().to_vec(),
                    cached_images: g.cached_images() as u64,
                }
                .encode()
            });
        }
        drop(st);

        // Checkpoint/resume (file I/O outside the state lock): replay
        // completed shards of a previous campaign whose fingerprint matches
        // this one, then keep persisting as new shards land.
        let mut results: Vec<Option<Vec<u8>>> = vec![None; p.tasks.len()];
        let mut prefilled = 0usize;
        let ckpt: Option<Arc<CkptState>> = p.checkpoint_path.as_ref().map(|path| {
            let fingerprint = campaign_fingerprint(
                [&plan_frame, &weights_frame, &eval_frame],
                &p.tasks,
                &work,
                &p.window,
            );
            let mut cp = Checkpoint::new(fingerprint);
            if let Some(prev) = Checkpoint::load(path) {
                if prev.fingerprint == fingerprint {
                    let by_key: HashMap<(u32, u32, u32), usize> = p
                        .tasks
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            (
                                (t.work_id as u32, t.range.start as u32, t.range.end as u32),
                                i,
                            )
                        })
                        .collect();
                    for entry in prev.entries {
                        let key = (entry.work_id, entry.start, entry.end);
                        if let Some(&idx) = by_key.get(&key) {
                            if let Some(slot @ None) = results.get_mut(idx) {
                                *slot = Some(entry.preds.clone());
                                prefilled += 1;
                                cp.entries.push(entry);
                            }
                        }
                    }
                    if p.verbose && prefilled > 0 {
                        progress::emit(&progress::Event::Resumed {
                            path: path.display().to_string(),
                            done: prefilled,
                            total: p.tasks.len(),
                        });
                    }
                } else if p.verbose {
                    progress::emit(&progress::Event::CheckpointMismatch {
                        path: path.display().to_string(),
                    });
                }
            }
            Arc::new(CkptState {
                path: path.clone(),
                cp: Mutex::new(cp),
            })
        });

        let (progress_tx, progress_rx) = channel();
        let tasks = Arc::new(p.tasks);
        let queue: Vec<QueueEntry> = (0..tasks.len())
            .rev()
            .filter(|&i| results.get(i).is_some_and(Option::is_none))
            .map(QueueEntry::Run)
            .collect();
        let finished = prefilled == tasks.len();
        // Checkpoint-prefilled shards count as verified: they were landed
        // (and possibly audited) by the run that recorded them, and there
        // is no producer left to audit.
        let verified: Vec<bool> = results.iter().map(Option::is_some).collect();
        let arbiter = Arc::new(Arbiter {
            config: p.config,
            plan_words,
            weight_image,
            qset,
            golden,
            work: Arc::clone(&work),
            window: p.window.clone(),
            pool: Mutex::new(None),
        });
        let ctx = MergeCtx {
            work: Arc::clone(&work),
            tasks: Arc::clone(&tasks),
            masked: p.masked,
            masked_static: p.masked_static,
            labels: p.labels,
            eval_len: p.eval_len,
            result_key: p.result_key,
            checkpoint_path: p.checkpoint_path,
            started: p.started,
        };
        let mut st = lock(&self.inner.state);
        let id = st.next_client;
        st.next_client += 1;
        st.clients.insert(
            id,
            ClientState {
                session: (p.plan_hash, p.weights_hash, p.eval_hash, p.golden_hash),
                work,
                window: p.window,
                tasks: Arc::clone(&tasks),
                queue,
                producer: vec![None; tasks.len()],
                audit_open: vec![false; tasks.len()],
                verified,
                audits_pending: 0,
                results,
                done: prefilled,
                dispatched: 0,
                fatal: None,
                finished,
                verbose: p.verbose,
                ckpt,
                arbiter,
                progress: progress_tx,
            },
        );
        if finished {
            self.inner.completion.notify_all();
        }
        drop(st);
        ClientHandle {
            inner: HandleInner::Pending {
                server: Arc::clone(&self.inner),
                id,
                ctx,
            },
            progress: progress_rx,
        }
    }

    /// Shuts the server down: fails unfinished clients with a named error,
    /// releases every worker with [`Msg::Shutdown`], joins the scheduler
    /// threads and reaps spawned worker processes. Idempotent; also runs
    /// on drop.
    pub fn shutdown(self) {
        self.stop();
    }

    fn stop(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = lock(&self.inner.state);
            for c in st.clients.values_mut() {
                if !c.finished {
                    c.finished = true;
                    c.queue.clear();
                    if c.fatal.is_none() {
                        c.fatal = Some(DistError::Protocol("campaign server shut down"));
                    }
                }
            }
            self.inner.completion.notify_all();
        }
        // The acceptor first — it is the only spawner of new connection
        // threads, so after this join the registry is final.
        if let Some(h) = lock(&self.acceptor).take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.conn_threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        for mut child in lock(&self.children).drain(..) {
            // A cleanly shut-down worker has already exited; kill is a
            // no-op race loser then. Either way, wait() reaps.
            let _ = child.kill();
            let _ = child.wait();
        }
        // Connection threads are joined: every recorded span has reached
        // the ring. Export the timeline (`NVFI_TRACE=path.json`) and/or
        // dump the metrics (`NVFI_METRICS=path`) now.
        trace::maybe_export();
        if let Ok(path) = std::env::var("NVFI_METRICS") {
            if !path.is_empty() && path != "top" {
                let text = lock(&self.inner.state).stats.render_prometheus();
                if let Err(e) = std::fs::write(&path, text) {
                    progress::note(format!("nvfi server: metrics dump to {path} failed: {e}"));
                }
            }
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Polls a running campaign server for its Prometheus metrics over the wire
/// (`Msg::StatsQuery` → `Msg::Stats`).
///
/// Speaks the ordinary worker hello first, so the server's version gate
/// applies; the connection is dropped after the reply. Works against any
/// [`CampaignServer`] with a listen address — local or cross-host.
pub fn query_stats(addr: SocketAddr) -> Result<String, DistError> {
    let mut s = TcpStream::connect(addr).map_err(DistError::Io)?;
    let _ = s.set_nodelay(true);
    wire::client_hello(&mut s)?;
    wire::send(&mut s, &Msg::StatsQuery).map_err(DistError::Io)?;
    match wire::recv(&mut s)? {
        Msg::Stats { text } => Ok(text),
        _ => Err(DistError::Protocol("unexpected reply to a stats query")),
    }
}

/// Interns an encoded artifact frame by content hash — the closure runs
/// (and the serialize-once probes tick) only when the hash is new to the
/// server.
fn ensure_artifact(
    st: &mut ServerState,
    hash: u64,
    make: impl FnOnce() -> Vec<u8>,
) -> Arc<Vec<u8>> {
    st.artifacts
        .entry(hash)
        .or_insert_with(|| Arc::new(make()))
        .clone()
}

// ---------------------------------------------------------------------------
// Client handles
// ---------------------------------------------------------------------------

/// Everything [`ClientHandle::wait`] needs to merge landed shards into a
/// [`CampaignResult`] without touching the server's shared state.
struct MergeCtx {
    work: Arc<WorkList>,
    tasks: Arc<Vec<Task>>,
    masked: Vec<bool>,
    masked_static: usize,
    labels: Vec<u8>,
    eval_len: usize,
    result_key: u64,
    checkpoint_path: Option<PathBuf>,
    started: Instant,
}

enum HandleInner {
    Ready(CampaignResult),
    Pending {
        server: Arc<ServerInner>,
        id: u64,
        ctx: MergeCtx,
    },
}

/// One submitted campaign's handle: stream its [`progress`], then
/// [`wait`] for the merged result.
///
/// [`progress`]: ClientHandle::progress
/// [`wait`]: ClientHandle::wait
pub struct ClientHandle {
    inner: HandleInner,
    progress: Receiver<Progress>,
}

impl ClientHandle {
    fn ready(result: CampaignResult) -> ClientHandle {
        // A resolved campaign streams no progress: the sender is dropped
        // immediately, so the receiver reports disconnection, not silence.
        let (_tx, rx) = channel();
        ClientHandle {
            inner: HandleInner::Ready(result),
            progress: rx,
        }
    }

    /// The per-shard progress stream of this campaign. Disconnects once
    /// the campaign finished (or when it resolved without fleet work).
    #[must_use]
    pub fn progress(&self) -> &Receiver<Progress> {
        &self.progress
    }

    /// Blocks until the campaign finishes and merges its shards into a
    /// [`CampaignResult`] **bit-identical** to the in-process
    /// [`Campaign::run`] — predictions concatenated by `(work item, shard
    /// range)`, never by arrival order, then folded through the shared
    /// [`FiRecord::from_preds`]. The finished result is stored in the
    /// server's result cache.
    ///
    /// # Errors
    ///
    /// [`DistError::FleetLost`] when every worker stayed gone past the
    /// re-admission grace (the checkpoint, if any, is left on disk for a
    /// resume); [`DistError::Worker`] for worker-reported deterministic
    /// failures; [`DistError::Protocol`] when the server was shut down
    /// with this campaign unfinished.
    pub fn wait(self) -> Result<CampaignResult, DistError> {
        let (server, id, ctx) = match self.inner {
            HandleInner::Ready(result) => return Ok(result),
            HandleInner::Pending { server, id, ctx } => (server, id, ctx),
        };
        let mut st = lock(&server.state);
        loop {
            match st.clients.get(&id) {
                Some(c) if c.finished => break,
                Some(_) => {
                    st = server
                        .completion
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => return Err(DistError::Protocol("campaign client vanished")),
            }
        }
        let Some(client) = st.clients.remove(&id) else {
            return Err(DistError::Protocol("campaign client vanished"));
        };
        drop(st);
        if let Some(e) = client.fatal {
            return Err(e);
        }
        // Merge: concatenate each work item's shards in range order (the
        // task list is already ordered that way), then fold into records
        // exactly as the in-process loop does.
        let mut per_item: Vec<Vec<u8>> = vec![Vec::new(); ctx.work.len()];
        for (task, slot) in ctx.tasks.iter().zip(client.results) {
            let Some(preds) = slot else {
                return Err(DistError::Protocol("finished campaign left a shard hole"));
            };
            let Some(item) = per_item.get_mut(task.work_id) else {
                return Err(DistError::Protocol("shard names an out-of-range work item"));
            };
            item.extend(preds);
        }
        // Provably-masked items produce exactly the fault-free predictions:
        // give them the baseline's, and the shared record fold below does
        // the rest.
        let clean_preds: Vec<u8> = per_item.first().cloned().unwrap_or_default();
        for (item, is_masked) in per_item.iter_mut().zip(&ctx.masked) {
            if *is_masked {
                item.clone_from(&clean_preds);
            }
        }
        let baseline_accuracy = prediction_accuracy(&clean_preds, &ctx.labels);
        let mut records = Vec::with_capacity(ctx.work.len() - 1);
        for (item, preds) in ctx.work.iter().zip(&per_item).skip(1) {
            let Some((targets, kind)) = item.as_ref() else {
                return Err(DistError::Protocol(
                    "non-baseline work item carries no fault",
                ));
            };
            // The shared fold of nvfi::campaign — bit-identity with the
            // in-process path is structural, not a re-implementation.
            records.push(FiRecord::from_preds(
                targets.clone(),
                *kind,
                preds,
                &clean_preds,
                &ctx.labels,
                baseline_accuracy,
            ));
        }
        let executed = records.len() - ctx.masked_static;
        let total_inferences = (executed as u64 + 1) * ctx.eval_len as u64;
        let result = CampaignResult {
            baseline_accuracy,
            records,
            masked_static: ctx.masked_static,
            total_inferences,
            wall_seconds: ctx.started.elapsed().as_secs_f64(),
        };
        // The campaign is complete: cache the answer for repeat queries and
        // retire the checkpoint — a finished run must not donate shards to
        // an unrelated later campaign at the same path.
        lock(&server.state)
            .results_cache
            .insert(ctx.result_key, result.clone());
        if let Some(path) = &ctx.checkpoint_path {
            Checkpoint::remove(path);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A peer that connects but never sends its hello must make the fleet
    /// accept *time out with an error* — not hang the server forever on a
    /// blocking handshake read.
    #[test]
    fn silent_peer_times_the_fleet_accept_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _silent = TcpStream::connect(addr).unwrap();
        let t = Instant::now();
        let r = accept_fleet(&listener, 1, Duration::from_millis(300));
        assert!(r.is_err(), "a silent peer must not count as a worker");
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "accept must observe the deadline instead of blocking"
        );
    }

    #[test]
    fn fair_share_prefers_the_least_served_ready_client() {
        // Client 1 has had 5 shards, client 2 only 1: 2 wins.
        let pick = fair_share_pick([(1, 5, true), (2, 1, true)].into_iter());
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn fair_share_skips_unready_clients() {
        // The least-served client is finished/drained; the other wins.
        let pick = fair_share_pick([(1, 5, true), (2, 1, false)].into_iter());
        assert_eq!(pick, Some(1));
        assert_eq!(
            fair_share_pick([(1, 5, false), (2, 1, false)].into_iter()),
            None
        );
        assert_eq!(fair_share_pick(std::iter::empty()), None);
    }

    #[test]
    fn fair_share_breaks_ties_toward_the_older_client() {
        let pick = fair_share_pick([(7, 3, true), (2, 3, true), (9, 3, true)].into_iter());
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn content_hashes_are_domain_separated_and_nonzero() {
        // The same byte content under different artifact kinds must hash
        // differently (domain tags), and no hash may be the wire's
        // "absent" sentinel 0.
        let w = hash_weights(&[(0, vec![1, 2, 3])]);
        let mut h = Fnv64::new();
        h.write(&[3]);
        assert_ne!(w, 0);
        assert_ne!(w, finish_nonzero(&h));
        let a = hash_weights(&[(0, vec![1, 2, 3])]);
        let b = hash_weights(&[(0, vec![1, 2, 4])]);
        assert_eq!(w, a, "content hashing is deterministic");
        assert_ne!(a, b, "a single flipped weight must change the hash");
    }
}
