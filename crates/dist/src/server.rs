//! The multiplexing campaign server: one **persistent** worker fleet
//! serving many client campaigns concurrently over content-addressed
//! sessions.
//!
//! [`run_campaign`](crate::run_campaign) raises a fleet, runs one campaign
//! and tears the fleet down. A [`CampaignServer`] decouples those
//! lifetimes: the fleet is raised once ([`CampaignServer::start`]) and then
//! any number of campaigns are [`submit`](CampaignServer::submit)ted
//! against it — concurrently, from any thread — each returning a
//! [`ClientHandle`] whose [`wait`](ClientHandle::wait) yields a
//! [`CampaignResult`] **bit-identical** to the in-process
//! [`Campaign::run`].
//!
//! # Content-addressed sessions (wire v3)
//!
//! Every campaign artifact — compiled plan, DRAM weight image, quantized
//! evaluation set, golden activation cache — is hashed by **content**
//! (stable FNV-1a over the decoded payload, never over encoded frames, so
//! the serialize-once probes stay meaningful) and encoded exactly once per
//! distinct hash per server. Workers advertise what they already hold in a
//! [`Msg::HaveArtifacts`] frame at connection time; each campaign switch
//! is a [`Msg::ArtifactDelta`] naming the four hashes plus **only the
//! frames the worker is missing**. A repeat campaign over unchanged
//! artifacts re-ships zero artifact bytes
//! ([`wire::artifact_bytes_shipped`] proves it), and an [`FaultKind`]
//! sweep over one model is a stream of few-byte deltas instead of repeated
//! weight images.
//!
//! # Fair-share multiplexing
//!
//! Worker connections pull from the per-client task queues through
//! `fair_share_pick`: the ready client with the fewest dispatched shards
//! wins (ties to the lower id), so a short campaign submitted next to a
//! long one drains in parallel instead of queuing behind it — no client
//! starves. Per-client progress streams over [`ClientHandle::progress`].
//!
//! # Result cache
//!
//! Completed campaigns are cached by a key hashing everything that
//! determines the merged records: `(plan, weights, eval set, golden)`
//! hashes, the labels, the verifier mode, and every work item's full fault
//! program as it would go on the wire. A repeat submit with an identical
//! key returns the cached [`CampaignResult`] without dispatching a single
//! shard ([`ServerStats`] exposes the hit count).
//!
//! # Failure model
//!
//! Identical to [`run_campaign`](crate::run_campaign)'s, per client: a
//! broken socket, CRC-failed frame or timed-out shard requeues **only the
//! owning client's shard**; reconnecting workers are re-admitted (their
//! advertisement trims re-shipping to the delta); a fleet empty past
//! [`FleetSpec::readmission_grace`] fails every unfinished client with
//! [`DistError::FleetLost`] while the server itself stays up for later
//! submissions; worker-*reported* errors stay fatal to their client.
//! Checkpoints ([`CampaignSpec::checkpoint_path`]) record per-client
//! progress and resume across server (or coordinator) restarts.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nvfi::campaign::{
    fault_provably_masked, prediction_accuracy, run_plan_verifier, validate_fault_kinds, Campaign,
    CampaignResult, CampaignSpec, FiRecord, VerifyMode,
};
use nvfi::{
    DevicePool, EmulationPlatform, GoldenActivationCache, PlatformConfig, QuantizedEvalSet,
};
use nvfi_accel::{FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::MultId;
use nvfi_dataset::Dataset;
use nvfi_quant::QuantModel;

use crate::checkpoint::{Checkpoint, CheckpointEntry, Fnv64};
use crate::codec::{crc32, WireError};
use crate::coordinator::{DistError, FleetSpec, WorkerSpawn};
use crate::wire::{self, Msg, WireConfig, WireFault};
use crate::worker;

/// The expanded campaign work list: item 0 is the fault-free baseline,
/// items 1.. carry `(targets, kind)` fault programs.
type WorkList = Vec<Option<(Vec<MultId>, FaultKind)>>;

/// One schedulable unit: an image shard of one work item.
#[derive(Clone, Debug)]
pub(crate) struct Task {
    /// Index into the work list (0 = baseline).
    pub(crate) work_id: usize,
    /// Image range of the evaluation set.
    pub(crate) range: Range<usize>,
}

/// Reaps (and on early exit, kills) the spawned worker processes.
struct FleetGuard {
    children: Vec<Child>,
}

impl Drop for FleetGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            // A cleanly shut-down worker has already exited; kill is a no-op
            // race loser then. Either way, wait() reaps.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The checkpoint file plus its in-memory image, persisted (atomically,
/// whole-file) after every completed shard.
struct CkptState {
    path: PathBuf,
    cp: Mutex<Checkpoint>,
}

impl CkptState {
    fn record(&self, task: &Task, preds: &[u8]) {
        let mut cp = self.cp.lock().unwrap();
        cp.entries.push(CheckpointEntry {
            work_id: task.work_id as u32,
            start: task.range.start as u32,
            end: task.range.end as u32,
            preds: preds.to_vec(),
        });
        if let Err(e) = cp.store(&self.path) {
            // A failing checkpoint must not fail the campaign — it only
            // weakens a future resume.
            eprintln!(
                "nvfi server: checkpoint write to {} failed: {e}",
                self.path.display()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Finishes a hash, mapping the (astronomically unlikely) zero digest to a
/// fixed nonzero constant: `0` is the wire's "artifact absent" sentinel
/// ([`Msg::ArtifactDelta`]) and must never collide with a real hash.
fn finish_nonzero(h: &Fnv64) -> u64 {
    match h.finish() {
        0 => 0x9E37_79B9_7F4A_7C15,
        v => v,
    }
}

/// Folds an `i8` slice into the hash through a small stack buffer (the
/// hasher takes `u8` bytes; weight images and pixel sets are large enough
/// that a per-call `Vec` copy would show up).
fn write_i8s(h: &mut Fnv64, data: &[i8]) {
    let mut buf = [0u8; 4096];
    for chunk in data.chunks(buf.len()) {
        for (dst, &src) in buf.iter_mut().zip(chunk) {
            *dst = src as u8;
        }
        h.write(&buf[..chunk.len()]);
    }
}

/// Content hash of a plan artifact: the wire configuration, the worker's
/// local device count (it changes the shipped [`Msg::Plan`] frame) and the
/// compiled plan words. Domain-tagged so a plan hash can never collide
/// with another artifact kind's.
fn hash_plan(config: &WireConfig, local_devices: u32, words: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[1]);
    h.write(&[
        wire::mode_tag(config.mode),
        wire::idle_tag(config.idle_lanes),
    ]);
    h.write_u64(config.clock_hz.to_bits());
    h.write_u64(config.dram_capacity);
    h.write_u64(config.batch);
    h.write_u64(config.shard_images);
    h.write_u64(u64::from(local_devices));
    h.write_u64(words.len() as u64);
    for &w in words {
        h.write_u64(u64::from(w));
    }
    finish_nonzero(&h)
}

/// Content hash of a DRAM weight image (`(addr, bytes)` regions). A single
/// flipped weight — an SEU in storage — changes this hash, which is what
/// invalidates stale worker caches.
fn hash_weights(regions: &[(u64, Vec<i8>)]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[2]);
    h.write_u64(regions.len() as u64);
    for (addr, bytes) in regions {
        h.write_u64(*addr);
        h.write_u64(bytes.len() as u64);
        write_i8s(&mut h, bytes);
    }
    finish_nonzero(&h)
}

/// Content hash of a quantized evaluation set (shape + pixels).
fn hash_eval(qset: &QuantizedEvalSet) -> u64 {
    let shape = qset.shape();
    let mut h = Fnv64::new();
    h.write(&[3]);
    h.write_u64(shape.n as u64);
    h.write_u64(shape.c as u64);
    h.write_u64(shape.h as u64);
    h.write_u64(shape.w as u64);
    write_i8s(&mut h, qset.images().as_slice());
    finish_nonzero(&h)
}

/// Content hash of a golden activation cache.
fn hash_golden(golden: &GoldenActivationCache) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[4]);
    h.write_u64(golden.boundary() as u64);
    h.write_u64(golden.surfaces().len() as u64);
    for &(addr, bytes) in golden.surfaces() {
        h.write_u64(addr);
        h.write_u64(bytes);
    }
    h.write_u64(golden.cached_images() as u64);
    write_i8s(&mut h, golden.data());
    finish_nonzero(&h)
}

/// The result-cache key: hashes everything that determines the merged
/// records — the four artifact hashes, the evaluation labels, the verifier
/// mode (it decides which items are pruned as provably masked) and every
/// work item's full fault program as it would go on the wire. Two submits
/// share a key iff their [`CampaignResult`]s are interchangeable.
fn result_cache_key(
    artifact_hashes: (u64, u64, u64, u64),
    work: &WorkList,
    spec: &CampaignSpec,
    eval_len: usize,
    labels: &[u8],
) -> u64 {
    let (plan, weights, eval, golden) = artifact_hashes;
    let mut h = Fnv64::new();
    h.write(&[5]);
    h.write_u64(plan);
    h.write_u64(weights);
    h.write_u64(eval);
    h.write_u64(golden);
    h.write_u64(eval_len as u64);
    h.write(labels);
    h.write(&[match spec.verify {
        VerifyMode::Off => 0,
        VerifyMode::Warn => 1,
        VerifyMode::Strict => 2,
    }]);
    for (work_id, item) in work.iter().enumerate() {
        let fault = item
            .as_ref()
            .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
        let window = if fault.is_some() {
            spec.fault_window.clone()
        } else {
            None
        };
        // Msg::Work encoding bumps no serialize-once probes, so hashing the
        // canonical wire bytes is free and stays in sync with the protocol.
        h.write(
            &Msg::Work {
                work_id: work_id as u32,
                start: 0,
                end: 0,
                fault,
                window,
            }
            .encode(),
        );
    }
    finish_nonzero(&h)
}

/// Hashes everything that determines the schedule and its answers: the
/// wire + checkpoint format versions (via [`Fnv64::campaign_seed`], so a
/// protocol bump invalidates every older checkpoint), the encoded session
/// frames (plan, weights, evaluation set — config and quantized pixels
/// included), the task list, and each work item's full fault program as it
/// would go on the wire. Two campaigns share a fingerprint iff their
/// checkpointed shards are interchangeable.
fn campaign_fingerprint(
    frames: [&[u8]; 3],
    tasks: &[Task],
    work: &WorkList,
    fault_window: &Option<Range<u64>>,
) -> u64 {
    let mut h = Fnv64::campaign_seed();
    for frame in frames {
        h.write_u64(u64::from(crc32(frame)));
    }
    h.write_u64(tasks.len() as u64);
    for t in tasks {
        h.write_u64(t.work_id as u64);
        h.write_u64(t.range.start as u64);
        h.write_u64(t.range.end as u64);
    }
    for (work_id, item) in work.iter().enumerate() {
        let fault = item
            .as_ref()
            .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
        let window = if fault.is_some() {
            fault_window.clone()
        } else {
            None
        };
        h.write(
            &Msg::Work {
                work_id: work_id as u32,
                start: 0,
                end: 0,
                fault,
                window,
            }
            .encode(),
        );
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Campaign preparation
// ---------------------------------------------------------------------------

/// What [`prepare`] decided about a campaign.
pub(crate) enum Prepared {
    /// The campaign resolved without the fleet (every fault item provably
    /// masked): here is the finished result.
    Immediate(CampaignResult),
    /// The campaign needs fleet time; submit this to a server.
    Scheduled(Box<PreparedCampaign>),
}

/// A campaign compiled, hashed and sharded — everything a
/// [`CampaignServer`] needs to schedule it, nothing borrowed from the
/// caller.
pub(crate) struct PreparedCampaign {
    config: PlatformConfig,
    local_devices: usize,
    plan_hash: u64,
    weights_hash: u64,
    eval_hash: u64,
    /// `0` when the campaign ships no golden cache.
    golden_hash: u64,
    plan_words: Vec<u32>,
    weight_image: Vec<(u64, Vec<i8>)>,
    qset: QuantizedEvalSet,
    golden: Option<GoldenActivationCache>,
    work: WorkList,
    masked: Vec<bool>,
    masked_static: usize,
    tasks: Vec<Task>,
    window: Option<Range<u64>>,
    verbose: bool,
    checkpoint_path: Option<PathBuf>,
    labels: Vec<u8>,
    eval_len: usize,
    result_key: u64,
    started: Instant,
}

/// Compiles, verifies, hashes and shards one campaign — the fleet-free
/// front half shared by [`CampaignServer::submit`] and
/// [`crate::run_campaign`]. Mirrors the in-process [`Campaign::run`]
/// exactly: one quantization pass, plan verification, fault-reachability
/// pruning (an all-masked campaign never engages the fleet), and the
/// golden activation cache build for windowed campaigns.
pub(crate) fn prepare(
    model: &QuantModel,
    config: PlatformConfig,
    spec: &CampaignSpec,
    eval: &Dataset,
    total_workers: usize,
    local_devices: usize,
) -> Result<Prepared, DistError> {
    assert!(
        !spec.kinds.is_empty(),
        "campaign needs at least one fault kind"
    );
    assert!(spec.eval_images > 0, "campaign needs evaluation images");
    validate_fault_kinds(&spec.kinds).map_err(DistError::Platform)?;
    let targets = Campaign::expand_targets(&spec.selection);
    assert!(
        !targets.is_empty(),
        "campaign target selection expands to no target sets"
    );
    // Work item 0 is the fault-free baseline; 1.. are the fault programs in
    // the same deterministic order as the in-process work list.
    let mut work: WorkList = vec![None];
    for t in &targets {
        for k in &spec.kinds {
            work.push(Some((t.clone(), *k)));
        }
    }
    let eval = eval.take(spec.eval_images);
    let started = Instant::now();

    // One quantization pass per campaign, exactly like the in-process path;
    // the bytes ship to every worker, no worker re-quantizes.
    let qset = QuantizedEvalSet::build(model, &eval.images);

    // The prototype compiles the plan once, validates the window before any
    // work is scheduled, and donates the DRAM weight image.
    let mut proto = EmulationPlatform::assemble(model, config)?;
    if let Some(w) = &spec.fault_window {
        proto.accel().validate_fault_window(w)?;
    }
    // Static verification at plan load, then fault reachability over the
    // work list: provably-masked items are never scheduled on the fleet —
    // their records fold the fault-free predictions against themselves
    // after the merge (bit-identical to running them, by soundness of the
    // analysis). The baseline (item 0) is always executed.
    run_plan_verifier(proto.plan(), spec.verify).map_err(DistError::Platform)?;
    let gated = config.accel.idle_lanes == IdleLanePolicy::Gated;
    let masked: Vec<bool> = work
        .iter()
        .map(|item| match item {
            Some((targets, kind)) if spec.verify != VerifyMode::Off => fault_provably_masked(
                proto.plan(),
                targets,
                *kind,
                gated,
                spec.fault_window.as_ref(),
            ),
            _ => false,
        })
        .collect();
    let masked_static = masked.iter().filter(|&&m| m).count();
    if masked_static == work.len() - 1 {
        // Every fault item is provably masked: the whole campaign is the
        // baseline pass, so run in-process (which prunes identically) and
        // never touch the fleet.
        if spec.verbose {
            eprintln!(
                "  all {masked_static} work item(s) provably masked; \
                 fleet not engaged"
            );
        }
        let result = Campaign::new(model, config).run(spec, &eval)?;
        if let Some(path) = &spec.checkpoint_path {
            Checkpoint::remove(path);
        }
        return Ok(Prepared::Immediate(result));
    }
    // Windowed campaigns build the golden activation cache once, on the
    // coordinator's prototype — exactly like the in-process path — and ship
    // it as a fourth content-addressed artifact so remote workers restore
    // golden prefixes instead of recomputing them.
    let golden = match &spec.fault_window {
        Some(w) => GoldenActivationCache::build(&mut proto, &qset, w, spec.golden_cache_bytes)?,
        None => None,
    };
    let plan_words = nvfi_compiler::plan::encode_words(proto.plan());
    let weight_image = proto.accel_mut().export_weight_image()?;

    let wire_config: WireConfig = config.into();
    let plan_hash = hash_plan(&wire_config, local_devices as u32, &plan_words);
    let weights_hash = hash_weights(&weight_image);
    let eval_hash = hash_eval(&qset);
    let golden_hash = golden.as_ref().map_or(0, hash_golden);

    // The task list: each work item cut into as many contiguous shards as
    // the two-level layout gives its scheduling slot — all 1s when the work
    // list is at least as wide as the fleet (pure item-level parallelism),
    // wider shard fan-out when the fleet outnumbers the items.
    let layout = Campaign::pool_layout(total_workers, work.len(), 0);
    let granularity = DevicePool::granularity(&config);
    let mut tasks: Vec<Task> = Vec::new();
    for i in 0..work.len() {
        if masked[i] {
            continue; // provably masked: no shards, no fleet time
        }
        let shards = layout[i % layout.len()];
        for range in DevicePool::shard_plan(eval.len(), shards, granularity) {
            tasks.push(Task { work_id: i, range });
        }
    }

    let result_key = result_cache_key(
        (plan_hash, weights_hash, eval_hash, golden_hash),
        &work,
        spec,
        eval.len(),
        &eval.labels,
    );
    Ok(Prepared::Scheduled(Box::new(PreparedCampaign {
        config,
        local_devices,
        plan_hash,
        weights_hash,
        eval_hash,
        golden_hash,
        plan_words,
        weight_image,
        qset,
        golden,
        work,
        masked,
        masked_static,
        tasks,
        window: spec.fault_window.clone(),
        verbose: spec.verbose,
        checkpoint_path: spec.checkpoint_path.clone(),
        labels: eval.labels.clone(),
        eval_len: eval.len(),
        result_key,
        started,
    })))
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

/// Picks the next client a freed worker should serve: among the *ready*
/// clients (unfinished, with queued shards), the one with the fewest
/// dispatched shards wins, ties to the lower (older) id. Pure so the
/// fairness invariant is unit-testable: a client with pending work is
/// never starved by a larger campaign, because every dispatch to the big
/// client raises its count above the small one's.
fn fair_share_pick(clients: impl Iterator<Item = (u64, u64, bool)>) -> Option<u64> {
    clients
        .filter(|&(_, _, ready)| ready)
        .min_by_key(|&(id, dispatched, _)| (dispatched, id))
        .map(|(id, _, _)| id)
}

/// Progress of one client campaign, streamed per completed shard over
/// [`ClientHandle::progress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Shards completed so far (checkpoint-prefilled ones included).
    pub done: usize,
    /// Total shards of this campaign.
    pub total: usize,
}

/// Counters of a [`CampaignServer`]'s lifetime, for tests and monitoring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Campaigns submitted (result-cache hits included).
    pub campaigns_submitted: u64,
    /// Submissions answered from the result cache without fleet work.
    pub cache_hits: u64,
    /// Shards handed to workers (requeued shards count again).
    pub tasks_dispatched: u64,
    /// Artifact frames actually shipped to workers (cache misses only).
    pub artifact_frames_shipped: u64,
}

/// One client campaign's scheduling state.
struct ClientState {
    /// The `(plan, weights, eval, golden)` artifact hashes — the worker
    /// session key. `golden` is 0 when the campaign ships none.
    session: (u64, u64, u64, u64),
    work: Arc<WorkList>,
    window: Option<Range<u64>>,
    tasks: Arc<Vec<Task>>,
    /// Pending task indices (popped by workers, pushed back on loss).
    queue: Vec<usize>,
    /// One slot per task, filled as shards land.
    results: Vec<Option<Vec<u8>>>,
    done: usize,
    /// Shards dispatched so far — the fair-share key.
    dispatched: u64,
    fatal: Option<DistError>,
    finished: bool,
    verbose: bool,
    ckpt: Option<Arc<CkptState>>,
    progress: Sender<Progress>,
}

/// Mutex-guarded server state.
struct ServerState {
    /// Encoded artifact frames by content hash — each encoded exactly once
    /// per server, replayed to however many workers miss it.
    artifacts: HashMap<u64, Arc<Vec<u8>>>,
    clients: BTreeMap<u64, ClientState>,
    next_client: u64,
    /// Finished campaigns by result key (see [`result_cache_key`]).
    results_cache: HashMap<u64, CampaignResult>,
    stats: ServerStats,
}

/// Everything worker-connection threads, the acceptor and client handles
/// share.
struct ServerInner {
    state: Mutex<ServerState>,
    /// Notified whenever a client finishes (success, fatal, fleet lost).
    completion: Condvar,
    shutting_down: AtomicBool,
    /// Currently connected workers (initial fleet + re-admissions − losses).
    active: AtomicUsize,
    task_timeout: Option<Duration>,
    readmission_grace: Duration,
    max_readmissions: usize,
    total_workers: usize,
}

/// One dispatch decision, built under the state lock and executed outside
/// it.
struct Assignment {
    client: u64,
    task_idx: usize,
    tasks: Arc<Vec<Task>>,
    session: (u64, u64, u64, u64),
    /// [`Msg::ArtifactDelta`] ship bitmask for this connection.
    ship: u8,
    /// The pre-encoded artifact frames to ship, in ship-bit order.
    frames: Vec<Arc<Vec<u8>>>,
    work_msg: Msg,
    /// Expected `(work_id, start, end)` of the reply.
    key: (u32, u32, u32),
    ckpt: Option<Arc<CkptState>>,
    total: usize,
}

/// Pops the fairest client's next shard and computes what this connection
/// must ship to run it. `has` is the connection's view of the worker's
/// artifact cache (advertisement + everything shipped since); it is updated
/// optimistically — if the ship fails the connection breaks anyway.
fn pick_assignment(inner: &ServerInner, has: &mut HashSet<u64>) -> Option<Assignment> {
    let mut guard = inner.state.lock().unwrap();
    let st = &mut *guard;
    let id = fair_share_pick(
        st.clients
            .iter()
            .map(|(&id, c)| (id, c.dispatched, !c.finished && !c.queue.is_empty())),
    )?;
    let c = st.clients.get_mut(&id)?;
    let task_idx = c.queue.pop()?;
    c.dispatched += 1;
    let task = &c.tasks[task_idx];
    let fault = c.work[task.work_id]
        .as_ref()
        .map(|(targets, kind)| WireFault::from_targets(targets, *kind));
    // The baseline stays window-free, exactly like the in-process path.
    let window = if fault.is_some() {
        c.window.clone()
    } else {
        None
    };
    let key = (
        task.work_id as u32,
        task.range.start as u32,
        task.range.end as u32,
    );
    let work_msg = Msg::Work {
        work_id: key.0,
        start: key.1,
        end: key.2,
        fault,
        window,
    };
    let session = c.session;
    let (mut ship, mut frames) = (0u8, Vec::new());
    for (bit, &hash) in [session.0, session.1, session.2, session.3]
        .iter()
        .enumerate()
    {
        if hash == 0 || has.contains(&hash) {
            continue; // absent (golden-free campaign) or already cached
        }
        ship |= 1 << bit;
        frames.push(
            st.artifacts
                .get(&hash)
                .expect("artifacts are registered before their client")
                .clone(),
        );
        has.insert(hash);
    }
    st.stats.tasks_dispatched += 1;
    Some(Assignment {
        client: id,
        task_idx,
        tasks: c.tasks.clone(),
        session,
        ship,
        frames,
        work_msg,
        key,
        ckpt: c.ckpt.clone(),
        total: c.tasks.len(),
    })
}

/// Puts a lost shard back on its owner's queue (the owner may have
/// finished — fatally or via another worker — in the meantime).
fn requeue(inner: &ServerInner, a: &Assignment, worker_id: usize, why: &dyn std::fmt::Display) {
    let mut st = inner.state.lock().unwrap();
    if let Some(c) = st.clients.get_mut(&a.client) {
        if !c.finished {
            c.queue.push(a.task_idx);
            if c.verbose {
                let task = &a.tasks[a.task_idx];
                eprintln!(
                    "  worker {worker_id} lost mid-shard (client {} item {} \
                     images {}..{}): {why}; requeued",
                    a.client, task.work_id, task.range.start, task.range.end,
                );
            }
        }
    }
}

/// Why one task attempt ended.
enum TaskError {
    /// The connection is no longer trustworthy — the worker died, stalled
    /// past the timeout, or the transport corrupted a frame. Requeue the
    /// shard; a reconnecting worker gets re-admitted.
    WorkerLost(std::io::Error),
    /// A deterministic error that retrying elsewhere would reproduce.
    Fatal(DistError),
}

/// Awaits one shard's predictions, absorbing [`Msg::Pong`] heartbeats
/// (each restarts the `task_timeout` silence window — a slow worker that
/// keeps heartbeating never times out) and chaos-duplicated replays of the
/// previously completed shard. The dedup key includes the **client** id:
/// two multiplexed clients may legitimately produce identical
/// `(work_id, start, end)` triples back to back.
fn await_shard(
    stream: &mut TcpStream,
    client: u64,
    key: (u32, u32, u32),
    task_timeout: Option<Duration>,
    last_done: &mut Option<(u64, u32, u32, u32)>,
) -> Result<Vec<u8>, TaskError> {
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(task_timeout);
    }
    let result = loop {
        match wire::recv(stream) {
            // Heartbeat (or a stale idle-probe reply): proof of life. The
            // per-recv timeout restarts, which is exactly the liveness
            // contract — silence times out, progress does not.
            Ok(Msg::Pong) => continue,
            Ok(Msg::ShardDone {
                work_id,
                start,
                end,
                preds,
            }) => {
                if *last_done == Some((client, work_id, start, end)) {
                    // A chaos-duplicated replay of the previous completion:
                    // already merged, skip it.
                    continue;
                }
                if (work_id, start, end) == key {
                    *last_done = Some((client, work_id, start, end));
                    break Ok(preds);
                }
                // A completion for a shard this connection doesn't own: the
                // stream is out of step (dropped/duplicated frames). Drop
                // the connection and requeue — never merge it.
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "shard reply does not match the assigned task",
                )));
            }
            Ok(Msg::WorkerErr { message }) => {
                break Err(TaskError::Fatal(DistError::Worker(message)))
            }
            Ok(_) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "message outside the session lifecycle",
                )))
            }
            Err(DistError::Io(e)) => break Err(TaskError::WorkerLost(e)),
            // A CRC-failed frame is transport corruption, not a worker bug:
            // drop the connection, requeue, let re-admission replace it.
            Err(DistError::Wire(e @ WireError::Crc { .. })) => {
                break Err(TaskError::WorkerLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                )))
            }
            Err(e) => break Err(TaskError::Fatal(e)),
        }
    };
    if task_timeout.is_some() {
        let _ = stream.set_read_timeout(None);
    }
    result
}

/// Drives one worker connection for the life of the server: pick the
/// fairest client's next shard, activate the session by delta if it
/// changed, run the shard, land the result — requeueing on loss, probing
/// liveness while idle, and releasing the worker with [`Msg::Shutdown`] at
/// server shutdown.
fn connection_thread(
    inner: &Arc<ServerInner>,
    worker_id: usize,
    mut stream: TcpStream,
    advertised: Vec<u64>,
) {
    let mut has: HashSet<u64> = advertised.into_iter().collect();
    let mut current: (u64, u64, u64, u64) = (0, 0, 0, 0);
    let mut current_client: Option<u64> = None;
    let mut last_done: Option<(u64, u32, u32, u32)> = None;
    let mut last_ping = Instant::now();
    loop {
        if inner.shutting_down.load(Ordering::Relaxed) {
            // Release the worker, then drain to EOF so the *worker* closes
            // first — keeping TIME_WAIT off the server's side, which
            // matters when a fixed listen port is re-bound by the next
            // experiment.
            let _ = wire::send(&mut stream, &Msg::Shutdown);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut sink = [0u8; 256];
            while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            break;
        }
        let Some(a) = pick_assignment(inner, &mut has) else {
            // No ready client: stay available — a lost worker may yet
            // requeue a shard, a new campaign may arrive — and probe
            // liveness about once a second (fire-and-forget; the Pong is
            // absorbed by the next shard's reply loop) so a dead socket is
            // noticed while idle.
            if last_ping.elapsed() >= Duration::from_secs(1) {
                last_ping = Instant::now();
                if wire::send(&mut stream, &Msg::Ping).is_err() {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        // Activate the session when it (or the owning client) changed. The
        // client is part of the switch condition only for the reply dedup:
        // the artifact tuple alone decides what ships.
        if a.session != current || current_client != Some(a.client) || a.ship != 0 {
            let (plan, weights, eval, golden) = a.session;
            let activated = wire::send(
                &mut stream,
                &Msg::ArtifactDelta {
                    plan,
                    weights,
                    eval,
                    golden,
                    ship: a.ship,
                },
            )
            .and_then(|()| {
                a.frames
                    .iter()
                    .try_for_each(|f| wire::write_frame(&mut stream, f))
            });
            if let Err(e) = activated {
                requeue(inner, &a, worker_id, &e);
                break;
            }
            for f in &a.frames {
                wire::count_artifact_bytes(f.len() as u64);
            }
            if !a.frames.is_empty() {
                inner.state.lock().unwrap().stats.artifact_frames_shipped += a.frames.len() as u64;
            }
            current = a.session;
            current_client = Some(a.client);
            last_done = None;
        }
        let outcome = wire::send(&mut stream, &a.work_msg)
            .map_err(TaskError::WorkerLost)
            .and_then(|()| {
                await_shard(
                    &mut stream,
                    a.client,
                    a.key,
                    inner.task_timeout,
                    &mut last_done,
                )
            });
        match outcome {
            Ok(preds) => {
                // Persist before counting done: a server killed right here
                // resumes with this shard already checkpointed.
                if let Some(ck) = &a.ckpt {
                    ck.record(&a.tasks[a.task_idx], &preds);
                }
                let mut st = inner.state.lock().unwrap();
                if let Some(c) = st.clients.get_mut(&a.client) {
                    if !c.finished && c.results[a.task_idx].is_none() {
                        c.results[a.task_idx] = Some(preds);
                        c.done += 1;
                        let _ = c.progress.send(Progress {
                            done: c.done,
                            total: a.total,
                        });
                        if c.verbose {
                            let task = &a.tasks[a.task_idx];
                            eprintln!(
                                "  fi client {} {}/{} [worker {worker_id}]: \
                                 item {} images {}..{}",
                                a.client,
                                c.done,
                                a.total,
                                task.work_id,
                                task.range.start,
                                task.range.end,
                            );
                        }
                        if c.done == a.total {
                            c.finished = true;
                            inner.completion.notify_all();
                        }
                    }
                }
                last_ping = Instant::now();
            }
            Err(TaskError::WorkerLost(e)) => {
                // The shard is requeued for a surviving (or re-admitted)
                // worker; this connection is done.
                requeue(inner, &a, worker_id, &e);
                break;
            }
            Err(TaskError::Fatal(e)) => {
                // Deterministic failure: retrying it on another worker
                // would reproduce it. Fail the owning client — other
                // clients keep running — and drop this connection (its
                // stream state is no longer trusted).
                let mut st = inner.state.lock().unwrap();
                if let Some(c) = st.clients.get_mut(&a.client) {
                    if !c.finished {
                        c.fatal = Some(e);
                        c.finished = true;
                        c.queue.clear();
                        inner.completion.notify_all();
                    }
                }
                break;
            }
        }
    }
    inner.active.fetch_sub(1, Ordering::SeqCst);
}

/// Keeps the listener open for the life of the server: re-admits
/// reconnecting or late workers (handshake + advertisement, then the
/// shared scheduler) and fails every unfinished client when the fleet
/// stays empty past the re-admission grace — the server itself survives a
/// fleet loss and serves later submissions if workers return.
fn acceptor_thread(
    inner: &Arc<ServerInner>,
    listener: &TcpListener,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut admitted = 0usize;
    let mut empty_since: Option<Instant> = None;
    loop {
        if inner.shutting_down.load(Ordering::Relaxed) {
            break;
        }
        if inner.active.load(Ordering::SeqCst) == 0 {
            let mut st = inner.state.lock().unwrap();
            if st.clients.values().any(|c| !c.finished) {
                let since = *empty_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= inner.readmission_grace {
                    // Nobody is left and nobody came back: fail every
                    // unfinished client (their checkpoints, if any, stay on
                    // disk for a resume). The server stays up.
                    for c in st.clients.values_mut() {
                        if !c.finished {
                            c.fatal = Some(DistError::FleetLost {
                                incomplete: c.tasks.len() - c.done,
                            });
                            c.finished = true;
                            c.queue.clear();
                        }
                    }
                    inner.completion.notify_all();
                    empty_since = None;
                }
            } else {
                empty_since = None;
            }
        } else {
            empty_since = None;
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                if s.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = s.set_nodelay(true);
                // The handshake reads are bounded: a connected-but-silent
                // peer (half-open link, port scanner) is dropped, never
                // allowed to hang the acceptor.
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                if wire::accept_hello(&mut s).is_err() {
                    continue;
                }
                let Ok(Msg::HaveArtifacts { hashes }) = wire::recv(&mut s) else {
                    continue;
                };
                if admitted >= inner.max_readmissions {
                    // Versioned, explicit rejection *after* the handshake:
                    // the worker's serve loop reads a clean `Goodbye` and
                    // stands down, instead of hanging in TCP limbo or
                    // misreading the frame.
                    let _ = wire::send(
                        &mut s,
                        &Msg::Goodbye {
                            reason: format!(
                                "re-admission cap ({}) reached",
                                inner.max_readmissions
                            ),
                        },
                    );
                    continue;
                }
                if s.set_read_timeout(None).is_err() {
                    continue;
                }
                admitted += 1;
                inner.active.fetch_add(1, Ordering::SeqCst);
                empty_since = None;
                let worker_id = inner.total_workers + admitted;
                {
                    let st = inner.state.lock().unwrap();
                    if st.clients.values().any(|c| c.verbose) {
                        eprintln!("  worker {worker_id} admitted mid-campaign");
                    }
                }
                let inner2 = Arc::clone(inner);
                conn_threads
                    .lock()
                    .unwrap()
                    .push(std::thread::spawn(move || {
                        connection_thread(&inner2, worker_id, s, hashes)
                    }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Accepts and handshakes `n` workers within `timeout` (the initial fleet
/// raise; afterwards the acceptor thread owns the listener, which it
/// leaves in the non-blocking mode set here). Returns each worker's stream
/// with its [`Msg::HaveArtifacts`] advertisement. Tolerant of bad peers:
/// a failed hello or a missing advertisement drops that connection and
/// keeps accepting — a chaos-mangled handshake costs the worker a clean
/// reconnect, not the fleet.
fn accept_fleet(
    listener: &TcpListener,
    n: usize,
    timeout: Duration,
) -> Result<Vec<(TcpStream, Vec<u64>)>, DistError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DistError::Spawn(e.to_string()))?;
    let deadline = Instant::now() + timeout;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                // The handshake read is bounded by the remaining accept
                // deadline: a connected-but-silent peer (half-open link,
                // port scanner, stalled worker) must time the fleet out,
                // not hang the coordinator on a blocking recv forever.
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                if stream.set_read_timeout(Some(remaining)).is_err() {
                    continue;
                }
                if wire::accept_hello(&mut stream).is_err() {
                    continue;
                }
                let Ok(Msg::HaveArtifacts { hashes }) = wire::recv(&mut stream) else {
                    continue;
                };
                if stream.set_read_timeout(None).is_err() {
                    continue;
                }
                streams.push((stream, hashes));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(DistError::Spawn(format!(
                        "only {}/{} workers connected within {:?}",
                        streams.len(),
                        n,
                        timeout
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(DistError::Spawn(format!("accept: {e}"))),
        }
    }
    Ok(streams)
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A persistent multiplexing campaign server: one worker fleet, many
/// concurrent client campaigns (see the module docs). Dropping the server
/// shuts it down — unfinished clients fail with a named error, workers are
/// released with [`Msg::Shutdown`], spawned processes are reaped.
pub struct CampaignServer {
    inner: Arc<ServerInner>,
    children: Mutex<Vec<Child>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    addr: SocketAddr,
    local_devices_cfg: usize,
}

impl CampaignServer {
    /// Raises the fleet and starts the server: spawns `workers` local
    /// worker processes (per [`FleetSpec::spawn`]), waits for them plus
    /// [`FleetSpec::external_workers`] cross-host ones to connect and
    /// advertise their caches, and hands every connection to the shared
    /// scheduler. The listener stays open for the server's life, so
    /// workers raised later (or reconnecting after a crash) join the same
    /// fleet.
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when the fleet is empty
    /// (`workers + external_workers == 0`), a worker process cannot be
    /// spawned, or the fleet does not complete its handshakes within
    /// [`FleetSpec::accept_timeout`].
    pub fn start(fleet: &FleetSpec, workers: usize) -> Result<CampaignServer, DistError> {
        let total_workers = workers + fleet.external_workers;
        if total_workers == 0 {
            return Err(DistError::Spawn(
                "a campaign server needs at least one worker".to_string(),
            ));
        }
        // A fixed listen address may sit in TIME_WAIT for a moment after a
        // previous server of the same experiment, so AddrInUse is retried
        // within the accept budget rather than failing the experiment.
        let bind_addr = fleet.listen.as_deref().unwrap_or("127.0.0.1:0");
        let bind_deadline = Instant::now() + fleet.accept_timeout;
        let listener = loop {
            match TcpListener::bind(bind_addr) {
                Ok(l) => break l,
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse
                        && Instant::now() < bind_deadline =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(DistError::Spawn(format!("bind {bind_addr}: {e}"))),
            }
        };
        let local = listener
            .local_addr()
            .map_err(|e| DistError::Spawn(e.to_string()))?;
        // Spawned (same-host) workers connect to loopback when the listener
        // is on loopback or a wildcard; a concrete non-loopback bind
        // (cross-host listen combined with local spawns) is handed to them
        // verbatim.
        let connect_addr = if local.ip().is_unspecified() || local.ip().is_loopback() {
            format!("127.0.0.1:{}", local.port())
        } else {
            local.to_string()
        };
        let mut guard = FleetGuard {
            children: Vec::new(),
        };
        for i in 0..workers {
            let exe = match &fleet.spawn {
                WorkerSpawn::SelfExec => std::env::current_exe()
                    .map_err(|e| DistError::Spawn(format!("current_exe: {e}")))?,
                WorkerSpawn::Exe(p) => p.clone(),
            };
            let mut cmd = Command::new(&exe);
            cmd.env(worker::ENV_CONNECT, &connect_addr);
            for (k, v) in fleet.worker_env.get(i).map_or(&[][..], Vec::as_slice) {
                cmd.env(k, v);
            }
            guard.children.push(
                cmd.spawn()
                    .map_err(|e| DistError::Spawn(format!("spawn {}: {e}", exe.display())))?,
            );
        }
        // Early returns above drop the guard, which kills + reaps what was
        // spawned so far.
        let streams = accept_fleet(&listener, total_workers, fleet.accept_timeout)?;
        let children = std::mem::take(&mut guard.children);
        drop(guard);

        let inner = Arc::new(ServerInner {
            state: Mutex::new(ServerState {
                artifacts: HashMap::new(),
                clients: BTreeMap::new(),
                next_client: 0,
                results_cache: HashMap::new(),
                stats: ServerStats::default(),
            }),
            completion: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(streams.len()),
            task_timeout: fleet.task_timeout,
            readmission_grace: fleet.readmission_grace,
            max_readmissions: fleet.max_readmissions,
            total_workers,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        {
            let mut reg = conn_threads.lock().unwrap();
            for (worker_id, (stream, hashes)) in streams.into_iter().enumerate() {
                let inner2 = Arc::clone(&inner);
                reg.push(std::thread::spawn(move || {
                    connection_thread(&inner2, worker_id, stream, hashes)
                }));
            }
        }
        let acceptor = {
            let inner2 = Arc::clone(&inner);
            let reg = Arc::clone(&conn_threads);
            std::thread::spawn(move || acceptor_thread(&inner2, &listener, &reg))
        };
        Ok(CampaignServer {
            inner,
            children: Mutex::new(children),
            conn_threads,
            acceptor: Mutex::new(Some(acceptor)),
            addr: local,
            local_devices_cfg: fleet.local_devices,
        })
    }

    /// The address the server listens on — what cross-host `nvfi_worker`
    /// processes connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.inner.state.lock().unwrap().stats
    }

    /// Submits one campaign to the shared fleet and returns immediately
    /// with a [`ClientHandle`]; the campaign runs concurrently with every
    /// other submitted one, interleaved fair-share. `spec.workers` is
    /// ignored — the fleet was sized at [`CampaignServer::start`] — but
    /// `spec.threads` still means "total device budget" when the fleet's
    /// [`FleetSpec::local_devices`] was 0.
    ///
    /// An all-masked campaign, or one whose result key is already in the
    /// result cache, resolves without any fleet work.
    ///
    /// # Errors
    ///
    /// Compile/verification errors as their [`DistError`] variants.
    ///
    /// # Panics
    ///
    /// Panics on the same spec violations as [`Campaign::run`] (no kinds,
    /// zero evaluation images, empty expanded work list).
    pub fn submit(
        &self,
        model: &QuantModel,
        config: PlatformConfig,
        spec: &CampaignSpec,
        eval: &Dataset,
    ) -> Result<ClientHandle, DistError> {
        let local_devices = if self.local_devices_cfg > 0 {
            self.local_devices_cfg
        } else {
            (spec.threads / self.inner.total_workers).max(1)
        };
        match prepare(
            model,
            config,
            spec,
            eval,
            self.inner.total_workers,
            local_devices,
        )? {
            Prepared::Immediate(result) => Ok(ClientHandle::ready(result)),
            Prepared::Scheduled(p) => Ok(self.submit_prepared(*p)),
        }
    }

    /// Registers a [`PreparedCampaign`] with the scheduler: result-cache
    /// lookup first, then artifact registration (each distinct hash
    /// encoded exactly once per server), checkpoint prefill, and the
    /// client queue.
    pub(crate) fn submit_prepared(&self, p: PreparedCampaign) -> ClientHandle {
        let mut st = self.inner.state.lock().unwrap();
        st.stats.campaigns_submitted += 1;
        if let Some(cached) = st.results_cache.get(&p.result_key) {
            let mut result = cached.clone();
            st.stats.cache_hits += 1;
            drop(st);
            result.wall_seconds = p.started.elapsed().as_secs_f64();
            if let Some(path) = &p.checkpoint_path {
                // The cached answer completes this campaign; a stale
                // checkpoint must not donate shards to a later run.
                Checkpoint::remove(path);
            }
            return ClientHandle::ready(result);
        }
        // Register the artifact frames. Encoding happens at most once per
        // distinct content hash for the server's whole life — the
        // serialize-once probes count these.
        let plan_frame = ensure_artifact(&mut st, p.plan_hash, || {
            Msg::Plan {
                config: p.config.into(),
                local_devices: p.local_devices as u32,
                words: p.plan_words.clone(),
            }
            .encode()
        });
        let weights_frame = ensure_artifact(&mut st, p.weights_hash, || {
            Msg::Weights {
                regions: p.weight_image.clone(),
            }
            .encode()
        });
        let shape = p.qset.shape();
        let eval_frame = ensure_artifact(&mut st, p.eval_hash, || {
            // Encoded straight from the borrowed pixel slice: no owned copy
            // of the (large) evaluation set just to build a `Msg`.
            wire::encode_eval_set(
                shape.n as u32,
                shape.c as u32,
                shape.h as u32,
                shape.w as u32,
                p.qset.images().as_slice(),
            )
        });
        if let Some(golden) = &p.golden {
            ensure_artifact(&mut st, p.golden_hash, || {
                Msg::Golden {
                    boundary: golden.boundary() as u64,
                    surfaces: golden.surfaces().to_vec(),
                    data: golden.data().to_vec(),
                    cached_images: golden.cached_images() as u64,
                }
                .encode()
            });
        }
        drop(st);

        // Checkpoint/resume (file I/O outside the state lock): replay
        // completed shards of a previous campaign whose fingerprint matches
        // this one, then keep persisting as new shards land.
        let mut results: Vec<Option<Vec<u8>>> = vec![None; p.tasks.len()];
        let mut prefilled = 0usize;
        let ckpt: Option<Arc<CkptState>> = p.checkpoint_path.as_ref().map(|path| {
            let fingerprint = campaign_fingerprint(
                [&plan_frame, &weights_frame, &eval_frame],
                &p.tasks,
                &p.work,
                &p.window,
            );
            let mut cp = Checkpoint::new(fingerprint);
            if let Some(prev) = Checkpoint::load(path) {
                if prev.fingerprint == fingerprint {
                    let by_key: HashMap<(u32, u32, u32), usize> = p
                        .tasks
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            (
                                (t.work_id as u32, t.range.start as u32, t.range.end as u32),
                                i,
                            )
                        })
                        .collect();
                    for entry in prev.entries {
                        let key = (entry.work_id, entry.start, entry.end);
                        if let Some(&idx) = by_key.get(&key) {
                            if results[idx].is_none() {
                                results[idx] = Some(entry.preds.clone());
                                prefilled += 1;
                                cp.entries.push(entry);
                            }
                        }
                    }
                    if p.verbose && prefilled > 0 {
                        eprintln!(
                            "  resuming from {}: {}/{} shards already done",
                            path.display(),
                            prefilled,
                            p.tasks.len()
                        );
                    }
                } else if p.verbose {
                    eprintln!(
                        "  checkpoint {} belongs to a different campaign; starting fresh",
                        path.display()
                    );
                }
            }
            Arc::new(CkptState {
                path: path.clone(),
                cp: Mutex::new(cp),
            })
        });

        let (progress_tx, progress_rx) = channel();
        let work = Arc::new(p.work);
        let tasks = Arc::new(p.tasks);
        let queue: Vec<usize> = (0..tasks.len())
            .rev()
            .filter(|&i| results[i].is_none())
            .collect();
        let finished = prefilled == tasks.len();
        let ctx = MergeCtx {
            work: Arc::clone(&work),
            tasks: Arc::clone(&tasks),
            masked: p.masked,
            masked_static: p.masked_static,
            labels: p.labels,
            eval_len: p.eval_len,
            result_key: p.result_key,
            checkpoint_path: p.checkpoint_path,
            started: p.started,
        };
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_client;
        st.next_client += 1;
        st.clients.insert(
            id,
            ClientState {
                session: (p.plan_hash, p.weights_hash, p.eval_hash, p.golden_hash),
                work,
                window: p.window,
                tasks,
                queue,
                results,
                done: prefilled,
                dispatched: 0,
                fatal: None,
                finished,
                verbose: p.verbose,
                ckpt,
                progress: progress_tx,
            },
        );
        if finished {
            self.inner.completion.notify_all();
        }
        drop(st);
        ClientHandle {
            inner: HandleInner::Pending {
                server: Arc::clone(&self.inner),
                id,
                ctx,
            },
            progress: progress_rx,
        }
    }

    /// Shuts the server down: fails unfinished clients with a named error,
    /// releases every worker with [`Msg::Shutdown`], joins the scheduler
    /// threads and reaps spawned worker processes. Idempotent; also runs
    /// on drop.
    pub fn shutdown(self) {
        self.stop();
    }

    fn stop(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.inner.state.lock().unwrap();
            for c in st.clients.values_mut() {
                if !c.finished {
                    c.finished = true;
                    c.queue.clear();
                    if c.fatal.is_none() {
                        c.fatal = Some(DistError::Protocol("campaign server shut down"));
                    }
                }
            }
            self.inner.completion.notify_all();
        }
        // The acceptor first — it is the only spawner of new connection
        // threads, so after this join the registry is final.
        if let Some(h) = self.acceptor.lock().unwrap().take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conn_threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        for mut child in self.children.lock().unwrap().drain(..) {
            // A cleanly shut-down worker has already exited; kill is a
            // no-op race loser then. Either way, wait() reaps.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Interns an encoded artifact frame by content hash — the closure runs
/// (and the serialize-once probes tick) only when the hash is new to the
/// server.
fn ensure_artifact(
    st: &mut ServerState,
    hash: u64,
    make: impl FnOnce() -> Vec<u8>,
) -> Arc<Vec<u8>> {
    st.artifacts
        .entry(hash)
        .or_insert_with(|| Arc::new(make()))
        .clone()
}

// ---------------------------------------------------------------------------
// Client handles
// ---------------------------------------------------------------------------

/// Everything [`ClientHandle::wait`] needs to merge landed shards into a
/// [`CampaignResult`] without touching the server's shared state.
struct MergeCtx {
    work: Arc<WorkList>,
    tasks: Arc<Vec<Task>>,
    masked: Vec<bool>,
    masked_static: usize,
    labels: Vec<u8>,
    eval_len: usize,
    result_key: u64,
    checkpoint_path: Option<PathBuf>,
    started: Instant,
}

enum HandleInner {
    Ready(CampaignResult),
    Pending {
        server: Arc<ServerInner>,
        id: u64,
        ctx: MergeCtx,
    },
}

/// One submitted campaign's handle: stream its [`progress`], then
/// [`wait`] for the merged result.
///
/// [`progress`]: ClientHandle::progress
/// [`wait`]: ClientHandle::wait
pub struct ClientHandle {
    inner: HandleInner,
    progress: Receiver<Progress>,
}

impl ClientHandle {
    fn ready(result: CampaignResult) -> ClientHandle {
        // A resolved campaign streams no progress: the sender is dropped
        // immediately, so the receiver reports disconnection, not silence.
        let (_tx, rx) = channel();
        ClientHandle {
            inner: HandleInner::Ready(result),
            progress: rx,
        }
    }

    /// The per-shard progress stream of this campaign. Disconnects once
    /// the campaign finished (or when it resolved without fleet work).
    #[must_use]
    pub fn progress(&self) -> &Receiver<Progress> {
        &self.progress
    }

    /// Blocks until the campaign finishes and merges its shards into a
    /// [`CampaignResult`] **bit-identical** to the in-process
    /// [`Campaign::run`] — predictions concatenated by `(work item, shard
    /// range)`, never by arrival order, then folded through the shared
    /// [`FiRecord::from_preds`]. The finished result is stored in the
    /// server's result cache.
    ///
    /// # Errors
    ///
    /// [`DistError::FleetLost`] when every worker stayed gone past the
    /// re-admission grace (the checkpoint, if any, is left on disk for a
    /// resume); [`DistError::Worker`] for worker-reported deterministic
    /// failures; [`DistError::Protocol`] when the server was shut down
    /// with this campaign unfinished.
    pub fn wait(self) -> Result<CampaignResult, DistError> {
        let (server, id, ctx) = match self.inner {
            HandleInner::Ready(result) => return Ok(result),
            HandleInner::Pending { server, id, ctx } => (server, id, ctx),
        };
        let mut st = server.state.lock().unwrap();
        loop {
            match st.clients.get(&id) {
                Some(c) if c.finished => break,
                Some(_) => st = server.completion.wait(st).unwrap(),
                None => return Err(DistError::Protocol("campaign client vanished")),
            }
        }
        let client = st.clients.remove(&id).expect("checked above");
        drop(st);
        if let Some(e) = client.fatal {
            return Err(e);
        }
        // Merge: concatenate each work item's shards in range order (the
        // task list is already ordered that way), then fold into records
        // exactly as the in-process loop does.
        let mut per_item: Vec<Vec<u8>> = vec![Vec::new(); ctx.work.len()];
        for (task, slot) in ctx.tasks.iter().zip(client.results) {
            per_item[task.work_id].extend(slot.expect("a finished, non-fatal client has no holes"));
        }
        // Provably-masked items produce exactly the fault-free predictions:
        // give them the baseline's, and the shared record fold below does
        // the rest.
        let clean_preds: Vec<u8> = per_item[0].clone();
        for (item, is_masked) in per_item.iter_mut().zip(&ctx.masked) {
            if *is_masked {
                item.clone_from(&clean_preds);
            }
        }
        let baseline_accuracy = prediction_accuracy(&clean_preds, &ctx.labels);
        let mut records = Vec::with_capacity(ctx.work.len() - 1);
        for (item, preds) in ctx.work.iter().zip(&per_item).skip(1) {
            let (targets, kind) = item.as_ref().expect("non-baseline items carry a fault");
            // The shared fold of nvfi::campaign — bit-identity with the
            // in-process path is structural, not a re-implementation.
            records.push(FiRecord::from_preds(
                targets.clone(),
                *kind,
                preds,
                &clean_preds,
                &ctx.labels,
                baseline_accuracy,
            ));
        }
        let executed = records.len() - ctx.masked_static;
        let total_inferences = (executed as u64 + 1) * ctx.eval_len as u64;
        let result = CampaignResult {
            baseline_accuracy,
            records,
            masked_static: ctx.masked_static,
            total_inferences,
            wall_seconds: ctx.started.elapsed().as_secs_f64(),
        };
        // The campaign is complete: cache the answer for repeat queries and
        // retire the checkpoint — a finished run must not donate shards to
        // an unrelated later campaign at the same path.
        server
            .state
            .lock()
            .unwrap()
            .results_cache
            .insert(ctx.result_key, result.clone());
        if let Some(path) = &ctx.checkpoint_path {
            Checkpoint::remove(path);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A peer that connects but never sends its hello must make the fleet
    /// accept *time out with an error* — not hang the server forever on a
    /// blocking handshake read.
    #[test]
    fn silent_peer_times_the_fleet_accept_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _silent = TcpStream::connect(addr).unwrap();
        let t = Instant::now();
        let r = accept_fleet(&listener, 1, Duration::from_millis(300));
        assert!(r.is_err(), "a silent peer must not count as a worker");
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "accept must observe the deadline instead of blocking"
        );
    }

    #[test]
    fn fair_share_prefers_the_least_served_ready_client() {
        // Client 1 has had 5 shards, client 2 only 1: 2 wins.
        let pick = fair_share_pick([(1, 5, true), (2, 1, true)].into_iter());
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn fair_share_skips_unready_clients() {
        // The least-served client is finished/drained; the other wins.
        let pick = fair_share_pick([(1, 5, true), (2, 1, false)].into_iter());
        assert_eq!(pick, Some(1));
        assert_eq!(
            fair_share_pick([(1, 5, false), (2, 1, false)].into_iter()),
            None
        );
        assert_eq!(fair_share_pick(std::iter::empty()), None);
    }

    #[test]
    fn fair_share_breaks_ties_toward_the_older_client() {
        let pick = fair_share_pick([(7, 3, true), (2, 3, true), (9, 3, true)].into_iter());
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn content_hashes_are_domain_separated_and_nonzero() {
        // The same byte content under different artifact kinds must hash
        // differently (domain tags), and no hash may be the wire's
        // "absent" sentinel 0.
        let w = hash_weights(&[(0, vec![1, 2, 3])]);
        let mut h = Fnv64::new();
        h.write(&[3]);
        assert_ne!(w, 0);
        assert_ne!(w, finish_nonzero(&h));
        let a = hash_weights(&[(0, vec![1, 2, 3])]);
        let b = hash_weights(&[(0, vec![1, 2, 4])]);
        assert_eq!(w, a, "content hashing is deterministic");
        assert_ne!(a, b, "a single flipped weight must change the hash");
    }
}
