//! Lowering: [`QuantModel`] -> [`ExecutionPlan`].
//!
//! Every network value gets its own feature surface in DRAM (no buffer
//! reuse: residual connections keep earlier surfaces alive and address
//! stability keeps the plan easy to audit). Weights are packed into the
//! 8x8-blocked layout and collected into the plan's preload image.

use std::fmt;

use nvfi_quant::{QOpKind, QuantModel};
use nvfi_tensor::{ConvGeom, Shape4, Tensor};

use crate::alloc::{DramAllocator, OutOfMemory};
use crate::plan::{ConvOp, ExecutionPlan, LinearOp, PlanOp, PoolKind, PoolOp};
use crate::surface;

/// Error lowering a model.
#[derive(Debug)]
pub enum CompileError {
    /// The model does not fit in the configured DRAM capacity.
    OutOfMemory(OutOfMemory),
    /// The model has no linear head producing logits.
    NoHead,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::OutOfMemory(e) => write!(f, "lowering failed: {e}"),
            CompileError::NoHead => write!(f, "model has no linear head"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::OutOfMemory(e) => Some(e),
            CompileError::NoHead => None,
        }
    }
}

impl From<OutOfMemory> for CompileError {
    fn from(e: OutOfMemory) -> Self {
        CompileError::OutOfMemory(e)
    }
}

/// Default emulated DRAM capacity (256 MiB, matching a small Zynq PS-DDR
/// carve-out).
pub const DEFAULT_DRAM_CAPACITY: u64 = 256 << 20;

/// Lowers a quantized model into an execution plan.
///
/// # Errors
///
/// Returns [`CompileError`] if the model exceeds `dram_capacity` or has no
/// classifier head.
pub fn compile(model: &QuantModel, dram_capacity: u64) -> Result<ExecutionPlan, CompileError> {
    let mut alloc = DramAllocator::new(dram_capacity);
    let shapes = model.value_shapes();

    // Surface per value.
    let mut value_addr = Vec::with_capacity(shapes.len());
    for (i, s) in shapes.iter().enumerate() {
        let bytes = surface::surface_bytes(s.c, s.h, s.w) as u64;
        value_addr.push(alloc.alloc(format!("value{i} {s}"), bytes)?);
    }

    let mut weight_image: Vec<(u64, Vec<i8>)> = Vec::new();
    let mut ops = Vec::with_capacity(model.ops.len());
    let mut output_addr = None;
    let mut num_classes = 0usize;

    for (i, qop) in model.ops.iter().enumerate() {
        let in_shape = shapes[qop.input];
        let input_addr = value_addr[qop.input];
        match &qop.kind {
            QOpKind::Conv(c) => {
                let ws = c.weight.shape();
                let geom = ConvGeom::new(in_shape, ws.n, ws.h, ws.w, c.stride, c.pad);
                let packed = surface::pack_weights(&c.weight);
                let weight_addr = alloc.alloc(format!("weights op{i}"), packed.len() as u64)?;
                weight_image.push((weight_addr, packed));
                ops.push(PlanOp::Conv(ConvOp {
                    geom,
                    input_addr,
                    output_addr: value_addr[i + 1],
                    weight_addr,
                    bias: c.bias.clone(),
                    requant: c.requant.clone(),
                    add_requant: c.add_requant,
                    fuse_add_addr: c.fuse_add.map(|a| value_addr[a]),
                    relu: c.relu,
                }));
            }
            QOpKind::MaxPool { k, stride } => ops.push(PlanOp::Pool(PoolOp {
                kind: PoolKind::Max,
                k: *k,
                stride: *stride,
                in_shape,
                input_addr,
                output_addr: value_addr[i + 1],
            })),
            QOpKind::GlobalAvgPool => ops.push(PlanOp::Pool(PoolOp {
                kind: PoolKind::GlobalAvg,
                k: 0,
                stride: 0,
                in_shape,
                input_addr,
                output_addr: value_addr[i + 1],
            })),
            QOpKind::Linear(l) => {
                // Weights packed as a (out_f, in_f, 1, 1) blocked region.
                let wt = Tensor::from_vec(
                    Shape4::new(l.weight.rows(), l.weight.cols(), 1, 1),
                    l.weight.as_slice().to_vec(),
                );
                let packed = surface::pack_weights(&wt);
                let weight_addr = alloc.alloc(format!("weights op{i}"), packed.len() as u64)?;
                weight_image.push((weight_addr, packed));
                // Logits region: out_f i32 words.
                let logits_addr =
                    alloc.alloc(format!("logits op{i}"), (l.weight.rows() * 4) as u64)?;
                num_classes = l.weight.rows();
                output_addr = Some(logits_addr);
                ops.push(PlanOp::Linear(LinearOp {
                    in_f: l.weight.cols(),
                    out_f: l.weight.rows(),
                    input_addr,
                    output_addr: logits_addr,
                    weight_addr,
                    bias: l.bias.clone(),
                }));
            }
        }
    }

    let output_addr = output_addr.ok_or(CompileError::NoHead)?;
    Ok(ExecutionPlan {
        input_shape: model.input_shape.with_n(1),
        input_scale: model.input_scale,
        input_addr: value_addr[0],
        output_addr,
        num_classes,
        ops,
        dram_size: alloc.used(),
        weight_image,
        macs_per_inference: model.macs_per_inference(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};
    use nvfi_nn::fold::fold_resnet;
    use nvfi_nn::resnet::ResNet;
    use nvfi_quant::{quantize, QuantConfig};

    fn qmodel() -> QuantModel {
        let data = SynthCifar::new(SynthCifarConfig {
            train: 8,
            test: 0,
            ..Default::default()
        })
        .generate();
        let net = ResNet::new(4, &[1, 1], 10, 3);
        let deploy = fold_resnet(&net, 32);
        quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap()
    }

    #[test]
    fn lowers_every_op() {
        let q = qmodel();
        let plan = compile(&q, DEFAULT_DRAM_CAPACITY).unwrap();
        assert_eq!(plan.ops.len(), q.ops.len());
        assert_eq!(plan.num_classes, 10);
        assert!(plan.dram_size > 0);
        assert_eq!(plan.macs_per_inference, q.macs_per_inference());
    }

    #[test]
    fn weight_regions_cover_all_convs() {
        let q = qmodel();
        let plan = compile(&q, DEFAULT_DRAM_CAPACITY).unwrap();
        assert_eq!(plan.weight_image.len(), plan.mac_ops());
        for (addr, bytes) in &plan.weight_image {
            assert!(addr + bytes.len() as u64 <= plan.dram_size);
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let q = qmodel();
        let plan = compile(&q, DEFAULT_DRAM_CAPACITY).unwrap();
        // Gather (addr, size) of all surfaces + weights and check pairwise.
        let mut regions: Vec<(u64, u64)> = Vec::new();
        let shapes = q.value_shapes();
        for op in &plan.ops {
            match op {
                PlanOp::Conv(c) => {
                    regions.push((
                        c.output_addr,
                        surface::surface_bytes(c.geom.k, c.geom.oh, c.geom.ow) as u64,
                    ));
                }
                PlanOp::Linear(l) => regions.push((l.output_addr, (l.out_f * 4) as u64)),
                PlanOp::Pool(p) => {
                    let o = p.out_shape();
                    regions.push((p.output_addr, surface::surface_bytes(o.c, o.h, o.w) as u64));
                }
            }
        }
        for (addr, bytes) in &plan.weight_image {
            regions.push((*addr, bytes.len() as u64));
        }
        regions.push((
            plan.input_addr,
            surface::surface_bytes(shapes[0].c, shapes[0].h, shapes[0].w) as u64,
        ));
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (a, b) = (regions[i], regions[j]);
                assert!(
                    a.0 + a.1 <= b.0 || b.0 + b.1 <= a.0,
                    "regions overlap: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn tiny_dram_rejected() {
        let q = qmodel();
        assert!(matches!(
            compile(&q, 1024),
            Err(CompileError::OutOfMemory(_))
        ));
    }

    #[test]
    fn plan_reg_stream_roundtrips() {
        let q = qmodel();
        let plan = compile(&q, DEFAULT_DRAM_CAPACITY).unwrap();
        let stream = crate::plan::encode_reg_stream(&plan);
        let decoded = crate::plan::decode_reg_stream(&stream).unwrap();
        // weight_image is not part of the stream; compare the rest.
        assert_eq!(decoded.ops, plan.ops);
        assert_eq!(decoded.input_addr, plan.input_addr);
        assert_eq!(decoded.output_addr, plan.output_addr);
        assert_eq!(decoded.num_classes, plan.num_classes);
    }
}
