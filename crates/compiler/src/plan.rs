//! Execution plans and their register command-stream encoding.

use std::fmt;

use nvfi_hwnum::Requant;
use nvfi_tensor::{ConvGeom, Shape4};

use crate::regmap;
use crate::surface;

/// One register write on the CSB/AXI4-Lite bus.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RegWrite {
    /// Register address.
    pub addr: u32,
    /// Value written.
    pub value: u32,
}

/// A convolution lowered onto the MAC array (covers 3x3/1x1 convs and the
/// fused residual-add + ReLU SDP pass).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvOp {
    /// Geometry (input shape with `n == 1`).
    pub geom: ConvGeom,
    /// Input feature-surface address.
    pub input_addr: u64,
    /// Output feature-surface address.
    pub output_addr: u64,
    /// Packed weight region address.
    pub weight_addr: u64,
    /// i32 bias per output channel, applied in the accumulator domain.
    pub bias: Vec<i32>,
    /// Requantizer(s): one per output channel, or a single shared one.
    pub requant: Vec<Requant>,
    /// Requantizer for the fused residual input.
    pub add_requant: Option<Requant>,
    /// Address of the residual feature surface, if fused.
    pub fuse_add_addr: Option<u64>,
    /// ReLU after bias/add.
    pub relu: bool,
}

impl ConvOp {
    /// The requantizer for output channel `k`.
    #[inline]
    #[must_use]
    pub fn requant_for(&self, k: usize) -> Requant {
        if self.requant.len() == 1 {
            self.requant[0]
        } else {
            self.requant[k]
        }
    }
}

/// Pooling flavour executed on the PDP.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PoolKind {
    /// Square-window max pooling.
    Max,
    /// Global average pooling (integer, round-half-away).
    GlobalAvg,
}

/// A pooling op.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolOp {
    /// Pooling flavour.
    pub kind: PoolKind,
    /// Window (ignored for [`PoolKind::GlobalAvg`]).
    pub k: usize,
    /// Stride (ignored for [`PoolKind::GlobalAvg`]).
    pub stride: usize,
    /// Input shape with `n == 1`.
    pub in_shape: Shape4,
    /// Input surface address.
    pub input_addr: u64,
    /// Output surface address.
    pub output_addr: u64,
}

impl PoolOp {
    /// Output shape of the pool.
    #[must_use]
    pub fn out_shape(&self) -> Shape4 {
        match self.kind {
            PoolKind::Max => Shape4::new(
                1,
                self.in_shape.c,
                (self.in_shape.h - self.k) / self.stride + 1,
                (self.in_shape.w - self.k) / self.stride + 1,
            ),
            PoolKind::GlobalAvg => Shape4::new(1, self.in_shape.c, 1, 1),
        }
    }
}

/// The fully connected head, executed on the MAC array as a 1x1 convolution
/// over a 1x1 spatial extent; logits are written as i32 words.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearOp {
    /// Input features.
    pub in_f: usize,
    /// Output features (classes).
    pub out_f: usize,
    /// Input surface address (a `(1, in_f, 1, 1)` surface).
    pub input_addr: u64,
    /// Output address: `out_f` little-endian i32 words.
    pub output_addr: u64,
    /// Packed weight region address (`(out_f, in_f, 1, 1)` blocked layout).
    pub weight_addr: u64,
    /// i32 bias per output.
    pub bias: Vec<i32>,
}

/// One lowered operation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// MAC-array convolution (+SDP post-processing).
    Conv(ConvOp),
    /// PDP pooling.
    Pool(PoolOp),
    /// MAC-array fully connected head.
    Linear(LinearOp),
}

/// A compiled network: op list plus the DRAM image of constant data.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// Input shape with `n == 1`.
    pub input_shape: Shape4,
    /// Scale of quantized input activations (for host-side quantization).
    pub input_scale: f32,
    /// Address the input surface must be written to.
    pub input_addr: u64,
    /// Address logits appear at after execution.
    pub output_addr: u64,
    /// Number of classes (i32 logits at `output_addr`).
    pub num_classes: usize,
    /// Ops in execution order.
    pub ops: Vec<PlanOp>,
    /// Total DRAM bytes the plan needs.
    pub dram_size: u64,
    /// Constant regions (packed weights) to preload: `(addr, bytes)`.
    pub weight_image: Vec<(u64, Vec<i8>)>,
    /// MAC count of one inference (for performance modelling).
    pub macs_per_inference: u64,
}

impl ExecutionPlan {
    /// Number of convolution ops (including the linear head).
    #[must_use]
    pub fn mac_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, PlanOp::Conv(_) | PlanOp::Linear(_)))
            .count()
    }

    /// MAC-array atomic ops (= functional MAC cycles) one op retires.
    /// Pool ops run on the PDP and retire none.
    #[must_use]
    pub fn op_mac_cycles(op: &PlanOp) -> u64 {
        match op {
            PlanOp::Conv(c) => {
                let g = &c.geom;
                (g.oh * g.ow * g.k.div_ceil(8) * g.input.c.div_ceil(8) * g.r * g.s) as u64
            }
            PlanOp::Linear(l) => (l.out_f.div_ceil(8) * l.in_f.div_ceil(8)) as u64,
            PlanOp::Pool(_) => 0,
        }
    }

    /// The per-inference MAC-cycle span `[start, end)` of every op, in the
    /// engine's *retired-counter* domain: the counter is pre-incremented, so
    /// the first atomic op of an inference retires at counter value 1 and op
    /// `i` occupies `[prefix_i + 1, prefix_i + n_i + 1)` where `prefix_i` is
    /// the cumulative atomic-op count of ops `0..i`. Pool ops get an empty
    /// span at their boundary. A transient fault window `w` (see
    /// `Accelerator::set_fault_window`) can only be observed by ops whose
    /// span intersects `w` — the schedule table behind op-scoped exact
    /// execution.
    #[must_use]
    pub fn mac_cycle_spans(&self) -> Vec<std::ops::Range<u64>> {
        let mut spans = Vec::with_capacity(self.ops.len());
        let mut prefix = 0u64;
        for op in &self.ops {
            let n = Self::op_mac_cycles(op);
            spans.push(prefix + 1..prefix + n + 1);
            prefix += n;
        }
        spans
    }

    /// Total MAC cycles one inference retires (the retired counter runs
    /// `1..=total`). The upper bound a transient fault window must start
    /// below to have any effect.
    #[must_use]
    pub fn total_mac_cycles(&self) -> u64 {
        self.ops.iter().map(Self::op_mac_cycles).sum()
    }

    /// The live-in surface set at op boundary `b`: every `(addr, bytes)`
    /// DRAM surface that some op `j >= b` reads before any op in `b..j`
    /// writes it. Restoring exactly these surfaces (plus the MAC-cycle
    /// prefix count) reproduces the machine state a fresh run would reach at
    /// the boundary — what a golden-prefix activation cache checkpoints.
    /// When one address is read at several sizes, the largest wins.
    ///
    /// # Panics
    ///
    /// Panics if `b > self.ops.len()`.
    #[must_use]
    pub fn live_in_surfaces(&self, b: usize) -> Vec<(u64, u64)> {
        assert!(b <= self.ops.len(), "boundary {b} outside the plan");
        let mut written: Vec<u64> = Vec::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        let read = |live: &mut Vec<(u64, u64)>, written: &[u64], addr: u64, bytes: u64| {
            if written.contains(&addr) {
                return;
            }
            match live.iter_mut().find(|(a, _)| *a == addr) {
                Some((_, sz)) => *sz = (*sz).max(bytes),
                None => live.push((addr, bytes)),
            }
        };
        for op in &self.ops[b..] {
            match op {
                PlanOp::Conv(c) => {
                    let g = &c.geom;
                    read(
                        &mut live,
                        &written,
                        c.input_addr,
                        surface::surface_bytes(g.input.c, g.input.h, g.input.w) as u64,
                    );
                    if let Some(addr) = c.fuse_add_addr {
                        read(
                            &mut live,
                            &written,
                            addr,
                            surface::surface_bytes(g.k, g.oh, g.ow) as u64,
                        );
                    }
                    written.push(c.output_addr);
                }
                PlanOp::Pool(p) => {
                    let s = p.in_shape;
                    read(
                        &mut live,
                        &written,
                        p.input_addr,
                        surface::surface_bytes(s.c, s.h, s.w) as u64,
                    );
                    written.push(p.output_addr);
                }
                PlanOp::Linear(l) => {
                    read(
                        &mut live,
                        &written,
                        l.input_addr,
                        surface::surface_bytes(l.in_f, 1, 1) as u64,
                    );
                    written.push(l.output_addr);
                }
            }
        }
        live
    }

    /// Human-readable plan listing.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "execution plan: {} ops, dram {} KiB, {:.2} MMAC/inference",
            self.ops.len(),
            self.dram_size.div_ceil(1024),
            self.macs_per_inference as f64 / 1e6
        );
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                PlanOp::Conv(c) => {
                    let _ = writeln!(
                        s,
                        "  [{i:>2}] {}  in@{:#x} w@{:#x} out@{:#x}{}{}",
                        c.geom,
                        c.input_addr,
                        c.weight_addr,
                        c.output_addr,
                        if c.fuse_add_addr.is_some() {
                            " +residual"
                        } else {
                            ""
                        },
                        if c.relu { " relu" } else { "" },
                    );
                }
                PlanOp::Pool(p) => {
                    let _ = writeln!(
                        s,
                        "  [{i:>2}] {:?}pool {}x{} s{} {} in@{:#x} out@{:#x}",
                        p.kind, p.k, p.k, p.stride, p.in_shape, p.input_addr, p.output_addr
                    );
                }
                PlanOp::Linear(l) => {
                    let _ = writeln!(
                        s,
                        "  [{i:>2}] linear {}->{} in@{:#x} w@{:#x} out@{:#x}",
                        l.in_f, l.out_f, l.input_addr, l.weight_addr, l.output_addr
                    );
                }
            }
        }
        s
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

// ---------------------------------------------------------------------------
// Command-stream encoding
// ---------------------------------------------------------------------------

/// Error decoding a register command stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream ended mid-descriptor.
    Truncated,
    /// Unknown op tag.
    BadTag(u32),
    /// A field failed validation.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "command stream truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown op tag {t}"),
            DecodeError::Invalid(what) => write!(f, "invalid command stream field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_CONV: u32 = 0xC0;
const TAG_POOL_MAX: u32 = 0xC1;
const TAG_POOL_GAVG: u32 = 0xC2;
const TAG_LINEAR: u32 = 0xC3;

/// Serializes the plan into 32-bit descriptor words (weights excluded —
/// they are preloaded into DRAM like a real driver would DMA them).
#[must_use]
pub fn encode_words(plan: &ExecutionPlan) -> Vec<u32> {
    let mut w = Vec::new();
    let put64 = |w: &mut Vec<u32>, v: u64| {
        w.push(v as u32);
        w.push((v >> 32) as u32);
    };
    w.push(plan.input_shape.c as u32);
    w.push(plan.input_shape.h as u32);
    w.push(plan.input_shape.w as u32);
    w.push(plan.input_scale.to_bits());
    put64(&mut w, plan.input_addr);
    put64(&mut w, plan.output_addr);
    w.push(plan.num_classes as u32);
    put64(&mut w, plan.dram_size);
    put64(&mut w, plan.macs_per_inference);
    w.push(plan.ops.len() as u32);
    for op in &plan.ops {
        match op {
            PlanOp::Conv(c) => {
                w.push(TAG_CONV);
                for v in [
                    c.geom.input.c,
                    c.geom.input.h,
                    c.geom.input.w,
                    c.geom.k,
                    c.geom.r,
                    c.geom.s,
                    c.geom.stride,
                    c.geom.pad,
                ] {
                    w.push(v as u32);
                }
                put64(&mut w, c.input_addr);
                put64(&mut w, c.output_addr);
                put64(&mut w, c.weight_addr);
                w.push(u32::from(c.relu));
                match (c.fuse_add_addr, c.add_requant) {
                    (Some(a), Some(rq)) => {
                        w.push(1);
                        put64(&mut w, a);
                        w.push(rq.multiplier() as u32);
                        w.push(u32::from(rq.shift()));
                    }
                    _ => w.push(0),
                }
                w.push(c.bias.len() as u32);
                for &b in &c.bias {
                    w.push(b as u32);
                }
                w.push(c.requant.len() as u32);
                for r in &c.requant {
                    w.push(r.multiplier() as u32);
                    w.push(u32::from(r.shift()));
                }
            }
            PlanOp::Pool(p) => {
                w.push(if p.kind == PoolKind::Max {
                    TAG_POOL_MAX
                } else {
                    TAG_POOL_GAVG
                });
                for v in [p.k, p.stride, p.in_shape.c, p.in_shape.h, p.in_shape.w] {
                    w.push(v as u32);
                }
                put64(&mut w, p.input_addr);
                put64(&mut w, p.output_addr);
            }
            PlanOp::Linear(l) => {
                w.push(TAG_LINEAR);
                w.push(l.in_f as u32);
                w.push(l.out_f as u32);
                put64(&mut w, l.input_addr);
                put64(&mut w, l.output_addr);
                put64(&mut w, l.weight_addr);
                w.push(l.bias.len() as u32);
                for &b in &l.bias {
                    w.push(b as u32);
                }
            }
        }
    }
    w
}

/// Decodes the descriptor words back into a plan (inverse of
/// [`encode_words`]; `weight_image` is left empty).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed streams.
pub fn decode_words(words: &[u32]) -> Result<ExecutionPlan, DecodeError> {
    let mut it = words.iter().copied();
    let mut next = || it.next().ok_or(DecodeError::Truncated);
    let mut next64 = {
        // Separate closure not possible with borrow; inline below.
        || -> Result<u64, DecodeError> { unreachable!() }
    };
    let _ = &mut next64;

    macro_rules! n {
        () => {
            next()?
        };
    }
    macro_rules! n64 {
        () => {{
            let lo = next()? as u64;
            let hi = next()? as u64;
            lo | (hi << 32)
        }};
    }

    let c = n!() as usize;
    let h = n!() as usize;
    let w = n!() as usize;
    let input_scale = f32::from_bits(n!());
    if !(input_scale.is_finite() && input_scale > 0.0) {
        return Err(DecodeError::Invalid("input scale"));
    }
    let input_shape = Shape4::new(1, c, h, w);
    let input_addr = n64!();
    let output_addr = n64!();
    let num_classes = n!() as usize;
    let dram_size = n64!();
    let macs_per_inference = n64!();
    let n_ops = n!() as usize;
    if n_ops > 100_000 {
        return Err(DecodeError::Invalid("op count"));
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let tag = n!();
        let op = match tag {
            TAG_CONV => {
                let ic = n!() as usize;
                let ih = n!() as usize;
                let iw = n!() as usize;
                let k = n!() as usize;
                let r = n!() as usize;
                let s = n!() as usize;
                let stride = n!() as usize;
                let pad = n!() as usize;
                if stride == 0 || k == 0 || r == 0 || s == 0 || ic == 0 {
                    return Err(DecodeError::Invalid("conv geometry"));
                }
                let geom = ConvGeom::new(Shape4::new(1, ic, ih, iw), k, r, s, stride, pad);
                let input_addr = n64!();
                let output_addr = n64!();
                let weight_addr = n64!();
                let relu = n!() != 0;
                let (fuse_add_addr, add_requant) = if n!() != 0 {
                    let a = n64!();
                    let m = n!() as i32;
                    let sh = n!() as u8;
                    (Some(a), Some(Requant::from_parts(m, sh)))
                } else {
                    (None, None)
                };
                let n_bias = n!() as usize;
                if n_bias != k {
                    return Err(DecodeError::Invalid("bias length"));
                }
                let bias: Vec<i32> = (0..n_bias)
                    .map(|_| next().map(|v| v as i32))
                    .collect::<Result<_, _>>()?;
                let n_rq = n!() as usize;
                if n_rq != 1 && n_rq != k {
                    return Err(DecodeError::Invalid("requant length"));
                }
                let mut requant = Vec::with_capacity(n_rq);
                for _ in 0..n_rq {
                    let m = n!() as i32;
                    let sh = n!() as u8;
                    if m < 0 || sh > Requant::MAX_SHIFT {
                        return Err(DecodeError::Invalid("requant parts"));
                    }
                    requant.push(Requant::from_parts(m, sh));
                }
                PlanOp::Conv(ConvOp {
                    geom,
                    input_addr,
                    output_addr,
                    weight_addr,
                    bias,
                    requant,
                    add_requant,
                    fuse_add_addr,
                    relu,
                })
            }
            TAG_POOL_MAX | TAG_POOL_GAVG => {
                let k = n!() as usize;
                let stride = n!() as usize;
                let c = n!() as usize;
                let h = n!() as usize;
                let w = n!() as usize;
                let input_addr = n64!();
                let output_addr = n64!();
                PlanOp::Pool(PoolOp {
                    kind: if tag == TAG_POOL_MAX {
                        PoolKind::Max
                    } else {
                        PoolKind::GlobalAvg
                    },
                    k,
                    stride,
                    in_shape: Shape4::new(1, c, h, w),
                    input_addr,
                    output_addr,
                })
            }
            TAG_LINEAR => {
                let in_f = n!() as usize;
                let out_f = n!() as usize;
                let input_addr = n64!();
                let output_addr = n64!();
                let weight_addr = n64!();
                let n_bias = n!() as usize;
                if n_bias != out_f {
                    return Err(DecodeError::Invalid("linear bias length"));
                }
                let bias: Vec<i32> = (0..n_bias)
                    .map(|_| next().map(|v| v as i32))
                    .collect::<Result<_, _>>()?;
                PlanOp::Linear(LinearOp {
                    in_f,
                    out_f,
                    input_addr,
                    output_addr,
                    weight_addr,
                    bias,
                })
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        ops.push(op);
    }
    Ok(ExecutionPlan {
        input_shape,
        input_scale,
        input_addr,
        output_addr,
        num_classes,
        ops,
        dram_size,
        weight_image: Vec::new(),
        macs_per_inference,
    })
}

/// The plan as CSB register writes: a FIFO reset followed by one write per
/// descriptor word — how a driver streams the plan into the device.
#[must_use]
pub fn encode_reg_stream(plan: &ExecutionPlan) -> Vec<RegWrite> {
    let mut writes = vec![RegWrite {
        addr: regmap::REG_CMD_RESET,
        value: 0,
    }];
    writes.extend(encode_words(plan).into_iter().map(|value| RegWrite {
        addr: regmap::REG_CMD_DATA,
        value,
    }));
    writes
}

/// Decodes a register stream produced by [`encode_reg_stream`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the stream is malformed or contains writes to
/// other registers.
pub fn decode_reg_stream(writes: &[RegWrite]) -> Result<ExecutionPlan, DecodeError> {
    let mut words = Vec::with_capacity(writes.len());
    for w in writes {
        match w.addr {
            regmap::REG_CMD_RESET => words.clear(),
            regmap::REG_CMD_DATA => words.push(w.value),
            _ => return Err(DecodeError::Invalid("write outside command window")),
        }
    }
    decode_words(&words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> ExecutionPlan {
        let geom = ConvGeom::new(Shape4::new(1, 3, 8, 8), 5, 3, 3, 1, 1);
        ExecutionPlan {
            input_shape: Shape4::new(1, 3, 8, 8),
            input_scale: 0.0123,
            input_addr: 0x100,
            output_addr: 0x2000,
            num_classes: 10,
            ops: vec![
                PlanOp::Conv(ConvOp {
                    geom,
                    input_addr: 0x100,
                    output_addr: 0x400,
                    weight_addr: 0x1000,
                    bias: vec![1, -2, 3, -4, 5],
                    requant: vec![Requant::from_scale(0.5).unwrap(); 5],
                    add_requant: Some(Requant::from_scale(0.25).unwrap()),
                    fuse_add_addr: Some(0x100),
                    relu: true,
                }),
                PlanOp::Pool(PoolOp {
                    kind: PoolKind::GlobalAvg,
                    k: 0,
                    stride: 0,
                    in_shape: Shape4::new(1, 5, 8, 8),
                    input_addr: 0x400,
                    output_addr: 0x800,
                }),
                PlanOp::Linear(LinearOp {
                    in_f: 5,
                    out_f: 10,
                    input_addr: 0x800,
                    output_addr: 0x2000,
                    weight_addr: 0x1800,
                    bias: vec![0; 10],
                }),
            ],
            dram_size: 0x4000,
            weight_image: Vec::new(),
            macs_per_inference: 12345,
        }
    }

    #[test]
    fn words_roundtrip() {
        let plan = sample_plan();
        let words = encode_words(&plan);
        let back = decode_words(&words).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn reg_stream_roundtrip() {
        let plan = sample_plan();
        let stream = encode_reg_stream(&plan);
        assert_eq!(stream[0].addr, regmap::REG_CMD_RESET);
        let back = decode_reg_stream(&stream).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn truncation_detected() {
        let words = encode_words(&sample_plan());
        for cut in [0, 1, 5, words.len() / 2, words.len() - 1] {
            assert!(decode_words(&words[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut words = encode_words(&sample_plan());
        // op count is right before first tag; find first tag position by
        // decoding header length: 3 + 1 + 2 + 2 + 1 + 2 + 2 + 1 = 14 words.
        words[14] = 0xDEAD;
        assert!(matches!(
            decode_words(&words),
            Err(DecodeError::BadTag(0xDEAD))
        ));
    }

    #[test]
    fn mac_cycle_spans_tile_the_inference() {
        let plan = sample_plan();
        let spans = plan.mac_cycle_spans();
        assert_eq!(spans.len(), plan.ops.len());
        // Conv: 8x8 out, ceil(5/8)=1 kernel group, ceil(3/8)=1 channel
        // block, 3x3 taps = 576 atomic ops; retired counter is 1-based.
        assert_eq!(spans[0], 1..577);
        // Pool retires no MAC cycles: empty span at its boundary.
        assert_eq!(spans[1], 577..577);
        // Linear: ceil(10/8) * ceil(5/8) = 2 atomic ops.
        assert_eq!(spans[2], 577..579);
        assert_eq!(plan.total_mac_cycles(), 578);
        // Spans are contiguous and ordered.
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn live_in_surfaces_track_reads_before_writes() {
        let plan = sample_plan();
        // Boundary 0: the conv reads its input and the fused residual (same
        // address here), nothing written yet.
        let at0 = plan.live_in_surfaces(0);
        assert_eq!(at0.len(), 1, "input and residual share 0x100");
        assert_eq!(at0[0].0, 0x100);
        // Boundary 1: the pool reads 0x400, which op 0 has already written
        // by then — but from the boundary's perspective nothing in [1..)
        // writes it first, so it is live-in.
        let at1 = plan.live_in_surfaces(1);
        assert_eq!(at1, vec![(0x400, at1[0].1)]);
        // Boundary 2: only the linear input.
        let at2 = plan.live_in_surfaces(2);
        assert_eq!(at2.len(), 1);
        assert_eq!(at2[0].0, 0x800);
        // Boundary past the last op: nothing to restore.
        assert!(plan.live_in_surfaces(3).is_empty());
    }

    #[test]
    fn describe_mentions_all_ops() {
        let plan = sample_plan();
        let text = plan.describe();
        assert!(text.contains("conv"));
        assert!(text.contains("pool"));
        assert!(text.contains("linear"));
        assert!(text.contains("+residual"));
    }
}
