//! The Tengine-substitute compiler: lowers a quantized CNN onto the
//! emulated NVDLA-style accelerator.
//!
//! In the paper, a Caffe-trained CNN is converted by the Tengine framework
//! into an execution plan for the NVDLA. This crate performs the same role
//! for [`QuantModel`](nvfi_quant::QuantModel)s:
//!
//! * [`surface`] — the packed int8 feature-surface layout (`N C/8 H W 8`)
//!   and the 8x8-blocked weight layout the MAC array consumes;
//! * [`alloc`] — DRAM address allocation for surfaces and weights;
//! * [`plan`] — the [`ExecutionPlan`]: one lowered op per network layer,
//!   with addresses, geometry, biases and requantizers, plus a register
//!   command-stream encoding ([`plan::encode_reg_stream`] /
//!   [`plan::decode_reg_stream`]) mirroring how a driver would program the
//!   device through its CSB window;
//! * [`regmap`] — the AXI4-Lite/CSB register addresses shared between this
//!   compiler and the accelerator model, including the fault-injection
//!   block (`SEL_A`, `SEL_B`, `FSEL`, `FDATA` — Fig. 1 of the paper);
//! * [`lower`] — the entry point: [`lower::compile`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod lower;
pub mod plan;
pub mod regmap;
pub mod surface;

pub use lower::{compile, CompileError};
pub use plan::{ConvOp, ExecutionPlan, LinearOp, PlanOp, PoolKind, PoolOp, RegWrite};
