//! The Tengine-substitute compiler: lowers a quantized CNN onto the
//! emulated NVDLA-style accelerator.
//!
//! In the paper, a Caffe-trained CNN is converted by the Tengine framework
//! into an execution plan for the NVDLA. This crate performs the same role
//! for [`QuantModel`](nvfi_quant::QuantModel)s:
//!
//! * [`surface`] — the packed int8 feature-surface layout (`N C/8 H W 8`)
//!   and the 8x8-blocked weight layout the MAC array consumes;
//! * [`alloc`] — DRAM address allocation for surfaces and weights;
//! * [`plan`] — the [`ExecutionPlan`]: one lowered op per network layer,
//!   with addresses, geometry, biases and requantizers, plus a register
//!   command-stream encoding ([`plan::encode_reg_stream`] /
//!   [`plan::decode_reg_stream`]) mirroring how a driver would program the
//!   device through its CSB window;
//! * [`regmap`] — the AXI4-Lite/CSB register addresses shared between this
//!   compiler and the accelerator model, including the fault-injection
//!   block (`SEL_A`, `SEL_B`, `FSEL`, `FDATA` — Fig. 1 of the paper);
//! * [`lower`] — the entry point: [`lower::compile`];
//! * [`verify`] — the IR verifier and fault-reachability analyzer.
//!
//! # Plan invariants
//!
//! Every [`ExecutionPlan`] this compiler emits upholds the invariants the
//! campaign fabric silently relies on; [`verify::verify_plan`] re-derives
//! each one independently and reports violations as named
//! [`verify::VerifyDiag`]s:
//!
//! | Invariant name | What must hold |
//! |---|---|
//! | `shape-chain` | every surface an op reads is the plan input or was produced earlier at exactly the shape the reader expects; the output is a linear head with `num_classes` logits |
//! | `surface-overlap` | activation surfaces, weight regions and the logits region are pairwise disjoint |
//! | `surface-alignment` | every region starts on an [`alloc::ALIGN`] boundary |
//! | `surface-bounds` | every region (and `weight_image` entry) lies inside `dram_size` |
//! | `requant-range` | bias/requant lengths match op geometry; multipliers non-negative, shifts within `Requant::MAX_SHIFT`; input scale finite and positive |
//! | `span-schedule` | per-op MAC-cycle spans are disjoint, contiguous, sized `op_mac_cycles(op)`, and tile `1..=total_mac_cycles()` |
//! | `live-in` | `live_in_surfaces(b)` equals an independent recomputation of what ops `b..` read before writing |
//! | `encode-closure` | `encode_words` → `decode_words` is the identity (modulo the weight image) and re-encodes to the same words |
//!
//! [`verify::fault_reachability`] builds on the same structure to classify
//! a fault program `Reachable` or `ProvablyMasked` before any emulation
//! runs — the first rung of differential (fault-cone) execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod lower;
pub mod plan;
pub mod regmap;
pub mod surface;
pub mod verify;

pub use lower::{compile, CompileError};
pub use plan::{ConvOp, ExecutionPlan, LinearOp, PlanOp, PoolKind, PoolOp, RegWrite};
pub use verify::{
    fault_reachability, verify_plan, Invariant, MaskReason, Reachability, VerifyDiag, VerifyMode,
};
