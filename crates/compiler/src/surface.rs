//! Packed int8 data layouts consumed by the MAC array.
//!
//! **Feature surfaces** are stored `C/8-blocked`: element `(c, h, w)` lives
//! at `((c/8 * H + h) * W + w) * 8 + c%8`. One atomic memory word therefore
//! holds the 8 channel values a MAC unit's 8 multipliers consume in one
//! cycle. Channels beyond `C` in the last block are zero.
//!
//! **Weight blocks** are stored per kernel group: element `(k, c, r, s)`
//! lives at `(((k/8 * C/8 + c/8) * R + r) * S + s) * 64 + (k%8) * 8 + c%8`,
//! i.e. one 64-byte block per `(kernel-group, channel-block, tap)` — the
//! full 8x8 operand matrix of one atomic op. Kernels beyond `K` and
//! channels beyond `C` are zero.

use nvfi_tensor::{Shape4, Tensor};

/// Lane count per block (multipliers per MAC unit, and MAC units).
pub const ATOM: usize = 8;

/// Number of channel blocks for `c` channels.
#[inline]
#[must_use]
pub const fn blocks(c: usize) -> usize {
    c.div_ceil(ATOM)
}

/// Size in bytes of a feature surface for a `(1, C, H, W)` value.
#[inline]
#[must_use]
pub const fn surface_bytes(c: usize, h: usize, w: usize) -> usize {
    blocks(c) * h * w * ATOM
}

/// Offset of `(c, h, w)` within a feature surface.
#[inline]
#[must_use]
pub fn surface_offset(shape: Shape4, c: usize, h: usize, w: usize) -> usize {
    debug_assert!(c < shape.c && h < shape.h && w < shape.w);
    ((c / ATOM * shape.h + h) * shape.w + w) * ATOM + c % ATOM
}

/// Packs one image (`n == 1` tensor) into a feature surface.
///
/// # Panics
///
/// Panics if `image` is not a single-image tensor.
#[must_use]
pub fn pack_surface(image: &Tensor<i8>) -> Vec<i8> {
    let s = image.shape();
    assert_eq!(s.n, 1, "pack_surface expects a single image");
    let mut out = vec![0i8; surface_bytes(s.c, s.h, s.w)];
    pack_surface_into(image.as_slice(), s, &mut out);
    out
}

/// Buffer-reusing [`pack_surface`] over a raw CHW image slice. `out` must be
/// `surface_bytes(shape.c, shape.h, shape.w)` long; padding lanes are
/// zeroed. The loop is blocked per channel block so the inner walk is a
/// strided scatter with no per-element offset arithmetic.
///
/// # Panics
///
/// Panics if `image` or `out` have the wrong length for `shape`.
pub fn pack_surface_into(image: &[i8], shape: Shape4, out: &mut [i8]) {
    let Shape4 { c, h, w, .. } = shape;
    assert_eq!(
        image.len(),
        shape.image_len(),
        "image length mismatch for {shape}"
    );
    assert_eq!(
        out.len(),
        surface_bytes(c, h, w),
        "surface length mismatch for {shape}"
    );
    out.fill(0);
    for cb in 0..blocks(c) {
        for ci in 0..ATOM {
            let ch = cb * ATOM + ci;
            if ch >= c {
                break;
            }
            for y in 0..h {
                let src = &image[(ch * h + y) * w..(ch * h + y + 1) * w];
                let dst = &mut out[((cb * h + y) * w) * ATOM..((cb * h + y) * w + w) * ATOM];
                for (x, &v) in src.iter().enumerate() {
                    dst[x * ATOM + ci] = v;
                }
            }
        }
    }
}

/// Unpacks a feature surface back into a `(1, C, H, W)` tensor.
///
/// # Panics
///
/// Panics if `surface` has the wrong length for `shape`.
#[must_use]
pub fn unpack_surface(surface: &[i8], shape: Shape4) -> Tensor<i8> {
    let mut out = vec![0i8; shape.image_len()];
    unpack_surface_into(surface, shape, &mut out);
    Tensor::from_vec(shape.with_n(1), out)
}

/// Buffer-reusing [`unpack_surface`] writing the dense CHW image into `out`
/// (`shape.image_len()` long).
///
/// # Panics
///
/// Panics if `surface` or `out` have the wrong length for `shape`.
pub fn unpack_surface_into(surface: &[i8], shape: Shape4, out: &mut [i8]) {
    let Shape4 { c, h, w, .. } = shape;
    assert_eq!(
        surface.len(),
        surface_bytes(c, h, w),
        "surface length mismatch for {shape}"
    );
    assert_eq!(
        out.len(),
        shape.image_len(),
        "image length mismatch for {shape}"
    );
    for cb in 0..blocks(c) {
        for ci in 0..ATOM {
            let ch = cb * ATOM + ci;
            if ch >= c {
                break;
            }
            for y in 0..h {
                let src = &surface[((cb * h + y) * w) * ATOM..((cb * h + y) * w + w) * ATOM];
                let dst = &mut out[(ch * h + y) * w..(ch * h + y + 1) * w];
                for (x, d) in dst.iter_mut().enumerate() {
                    *d = src[x * ATOM + ci];
                }
            }
        }
    }
}

/// Size in bytes of a packed weight region for `(K, C, R, S)` weights.
#[inline]
#[must_use]
pub const fn weight_bytes(k: usize, c: usize, r: usize, s: usize) -> usize {
    blocks(k) * blocks(c) * r * s * ATOM * ATOM
}

/// Offset of weight `(k, c, r, s)` within a packed weight region.
#[inline]
#[must_use]
pub fn weight_offset(shape: Shape4, k: usize, c: usize, r: usize, s: usize) -> usize {
    debug_assert!(k < shape.n && c < shape.c && r < shape.h && s < shape.w);
    let (kg, ki) = (k / ATOM, k % ATOM);
    let (cb, ci) = (c / ATOM, c % ATOM);
    (((kg * blocks(shape.c) + cb) * shape.h + r) * shape.w + s) * ATOM * ATOM + ki * ATOM + ci
}

/// Packs a `(K, C, R, S)` weight tensor into the blocked layout.
#[must_use]
pub fn pack_weights(weights: &Tensor<i8>) -> Vec<i8> {
    let s = weights.shape();
    let mut out = vec![0i8; weight_bytes(s.n, s.c, s.h, s.w)];
    for k in 0..s.n {
        for c in 0..s.c {
            for r in 0..s.h {
                for q in 0..s.w {
                    out[weight_offset(s, k, c, r, q)] = weights.at(k, c, r, q);
                }
            }
        }
    }
    out
}

/// Unpacks a blocked weight region back into a `(K, C, R, S)` tensor.
///
/// # Panics
///
/// Panics if `packed` has the wrong length for `shape`.
#[must_use]
pub fn unpack_weights(packed: &[i8], shape: Shape4) -> Tensor<i8> {
    let mut out = vec![0i8; shape.len()];
    unpack_weights_into(packed, shape, &mut out);
    Tensor::from_vec(shape, out)
}

/// Buffer-reusing [`unpack_weights`] writing the dense `(K, C, R, S)`
/// buffer into `out` (`shape.len()` long). Lane indices are hoisted out of
/// the tap loops so the inner walk is a fixed-stride gather.
///
/// # Panics
///
/// Panics if `packed` or `out` have the wrong length for `shape`.
pub fn unpack_weights_into(packed: &[i8], shape: Shape4, out: &mut [i8]) {
    let Shape4 {
        n: k_n,
        c,
        h: r_n,
        w: s_n,
    } = shape;
    assert_eq!(
        packed.len(),
        weight_bytes(k_n, c, r_n, s_n),
        "weight region length mismatch for {shape}"
    );
    assert_eq!(
        out.len(),
        shape.len(),
        "weight buffer length mismatch for {shape}"
    );
    let cb_n = blocks(c);
    for k in 0..k_n {
        let (kg, ki) = (k / ATOM, k % ATOM);
        for ch in 0..c {
            let (cb, ci) = (ch / ATOM, ch % ATOM);
            let lane = ki * ATOM + ci;
            let dst = &mut out[(k * c + ch) * r_n * s_n..(k * c + ch + 1) * r_n * s_n];
            let base = (kg * cb_n + cb) * r_n;
            for r in 0..r_n {
                let row = ((base + r) * s_n) * ATOM * ATOM + lane;
                for (s, d) in dst[r * s_n..(r + 1) * s_n].iter_mut().enumerate() {
                    *d = packed[row + s * ATOM * ATOM];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_roundtrip_odd_channels() {
        // 5 channels -> one block of 8 with 3 zero lanes.
        let img = Tensor::from_fn(Shape4::new(1, 5, 3, 4), |_, c, h, w| {
            (c * 16 + h * 4 + w) as i8
        });
        let packed = pack_surface(&img);
        assert_eq!(packed.len(), 3 * 4 * 8);
        let back = unpack_surface(&packed, img.shape());
        assert_eq!(back.as_slice(), img.as_slice());
    }

    #[test]
    fn surface_padding_lanes_are_zero() {
        let img = Tensor::from_fn(Shape4::new(1, 3, 1, 1), |_, c, _, _| (c + 1) as i8);
        let packed = pack_surface(&img);
        assert_eq!(&packed[..3], &[1, 2, 3]);
        assert_eq!(&packed[3..8], &[0; 5]);
    }

    #[test]
    fn surface_word_is_contiguous_channel_block() {
        // The 8 lanes of one (h, w) position must be adjacent — that is
        // the property the MAC array relies on.
        let img = Tensor::from_fn(Shape4::new(1, 16, 2, 2), |_, c, h, w| {
            (c * 4 + h * 2 + w) as i8
        });
        let packed = pack_surface(&img);
        let s = img.shape();
        for h in 0..2 {
            for w in 0..2 {
                for c in 0..16 {
                    let off = surface_offset(s, c, h, w);
                    assert_eq!(off % 8, c % 8);
                    assert_eq!(packed[off], img.at(0, c, h, w));
                }
            }
        }
    }

    #[test]
    fn weight_roundtrip_with_tails() {
        // K=10, C=12: both dimensions have partial blocks.
        let w = Tensor::from_fn(Shape4::new(10, 12, 3, 3), |k, c, r, s| {
            ((k * 7 + c * 5 + r * 3 + s) % 251) as i8
        });
        let packed = pack_weights(&w);
        assert_eq!(packed.len(), 2 * 2 * 3 * 3 * 64);
        assert_eq!(unpack_weights(&packed, w.shape()).as_slice(), w.as_slice());
    }

    #[test]
    fn weight_block_is_8x8_operand_matrix() {
        let w = Tensor::from_fn(Shape4::new(8, 8, 1, 1), |k, c, _, _| (k * 8 + c) as i8);
        let packed = pack_weights(&w);
        // Single block: element (ki, ci) at ki*8+ci.
        for k in 0..8 {
            for c in 0..8 {
                assert_eq!(packed[k * 8 + c], (k * 8 + c) as i8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_validates_length() {
        let _ = unpack_surface(&[0i8; 7], Shape4::new(1, 8, 1, 1));
    }
}
