//! Static verification of [`ExecutionPlan`]s and fault reachability.
//!
//! The campaign fabric trusts a lot of derived structure: MAC-cycle spans
//! decide which ops run exact under a transient window, live-in surface
//! sets decide what a golden-prefix restore re-seeds, the command-stream
//! codec decides what a remote worker executes. A silent inconsistency in
//! any of them produces *wrong campaign results that still look plausible*
//! — so this module re-derives each invariant independently and reports
//! every violation as a named [`VerifyDiag`].
//!
//! # Invariant catalogue
//!
//! | Invariant | Pass | What it proves |
//! |---|---|---|
//! | [`Invariant::ShapeChain`] | [`verify_shapes`] | every surface an op reads was produced (or is the plan input) at exactly the shape the reader expects; the plan output is a linear head with `num_classes` logits |
//! | [`Invariant::SurfaceOverlap`] | [`verify_surfaces`] | activation surfaces, weight regions and the logits region are pairwise disjoint (the `alloc.rs` bump-allocation discipline) |
//! | [`Invariant::SurfaceAlignment`] | [`verify_surfaces`] | every region starts on an [`alloc::ALIGN`](crate::alloc::ALIGN) boundary |
//! | [`Invariant::SurfaceBounds`] | [`verify_surfaces`] | every region (including `weight_image` entries) lies inside `dram_size` |
//! | [`Invariant::RequantRange`] | [`verify_requant`] | bias/requant vector lengths match the op geometry, multipliers are non-negative, shifts are within [`Requant::MAX_SHIFT`], the input scale is finite and positive |
//! | [`Invariant::SpanSchedule`] | [`verify_spans`] | the per-op MAC-cycle spans are disjoint, contiguous, sized `op_mac_cycles(op)`, and tile `1..=total_mac_cycles()` exactly |
//! | [`Invariant::LiveIn`] | [`verify_live_in`] | a claimed live-in surface set at a boundary equals an independent recomputation from each op's actual DRAM reads |
//! | [`Invariant::EncodeClosure`] | [`verify_codec`] | `encode_words` → `decode_words` is the identity (modulo the preloaded `weight_image`), and re-encoding reproduces the same words |
//!
//! [`verify_plan`] runs every pass over the plan's own derived structures;
//! [`verify_spans`] and [`verify_live_in`] also accept *claimed* inputs so
//! callers holding cached schedule tables can audit them (and so mutation
//! tests can seed a single broken invariant).
//!
//! # Fault reachability
//!
//! On top of the structural passes, [`fault_reachability`] classifies a
//! fault program (selected lanes, injector registers, idle-lane policy,
//! optional transient window) as [`Reachability::Reachable`] or provably
//! masked, using only static plan structure: the engine's lane mapping
//! (MAC unit `m` serves output channels `k ≡ m (mod 8)`, multiplier `j`
//! serves input channels `c ≡ j (mod 8)`), kernel-tail discard, idle-lane
//! gating/zero-feeding, and the per-op MAC-cycle schedule. `ProvablyMasked`
//! is sound (the exact engine provably produces clean outputs), `Reachable`
//! is conservative (the fault *may* still be masked dynamically) — which is
//! exactly what lets campaigns skip masked work items bit-identically. This
//! analysis is the first rung of the ROADMAP's differential (fault-cone)
//! execution item.

use std::fmt;
use std::ops::Range;

use nvfi_hwnum::{Requant, I18};

use crate::alloc::ALIGN;
use crate::plan::{decode_words, encode_words, ExecutionPlan, PlanOp};
use crate::surface;

/// How campaign entry points treat verifier diagnostics at plan load.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Skip verification *and* dead-fault pruning entirely (the escape
    /// hatch, and the reference point pruning is tested bit-identical to).
    Off,
    /// Verify and prune; diagnostics are printed as warnings (default).
    #[default]
    Warn,
    /// Verify and prune; any diagnostic is an error (`-D` semantics).
    Strict,
}

/// The named plan invariants the verifier checks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Shape chaining between producers and consumers.
    ShapeChain,
    /// DRAM regions must be pairwise disjoint.
    SurfaceOverlap,
    /// DRAM regions must be `ALIGN`-aligned.
    SurfaceAlignment,
    /// DRAM regions must lie inside `dram_size`.
    SurfaceBounds,
    /// Bias/requant lengths and ranges, input-scale sanity.
    RequantRange,
    /// MAC-cycle spans: disjoint, contiguous, covering `1..=total`.
    SpanSchedule,
    /// Live-in surface sets match the ops' actual DRAM reads.
    LiveIn,
    /// `encode_words`/`decode_words` closure.
    EncodeClosure,
}

impl Invariant {
    /// Stable diagnostic name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::ShapeChain => "shape-chain",
            Invariant::SurfaceOverlap => "surface-overlap",
            Invariant::SurfaceAlignment => "surface-alignment",
            Invariant::SurfaceBounds => "surface-bounds",
            Invariant::RequantRange => "requant-range",
            Invariant::SpanSchedule => "span-schedule",
            Invariant::LiveIn => "live-in",
            Invariant::EncodeClosure => "encode-closure",
        }
    }
}

/// One verifier finding: the violated invariant, the op (or boundary) it
/// anchors to, and a human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyDiag {
    /// Which invariant is violated.
    pub invariant: Invariant,
    /// Op index (or boundary index for [`Invariant::LiveIn`]); `None` for
    /// plan-level findings.
    pub op: Option<usize>,
    /// What exactly is wrong.
    pub detail: String,
}

impl fmt::Display for VerifyDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(i) => write!(f, "[{}] op {i}: {}", self.invariant.name(), self.detail),
            None => write!(f, "[{}] plan: {}", self.invariant.name(), self.detail),
        }
    }
}

fn diag(invariant: Invariant, op: Option<usize>, detail: impl Into<String>) -> VerifyDiag {
    VerifyDiag {
        invariant,
        op,
        detail: detail.into(),
    }
}

/// Runs every structural pass over the plan (spans and live-in sets are
/// taken from the plan's own derivations; see [`verify_spans`] /
/// [`verify_live_in`] to audit externally cached copies). An empty result
/// means the plan holds every invariant in the module catalogue.
#[must_use]
pub fn verify_plan(plan: &ExecutionPlan) -> Vec<VerifyDiag> {
    let mut diags = Vec::new();
    diags.extend(verify_shapes(plan));
    diags.extend(verify_surfaces(plan));
    diags.extend(verify_requant(plan));
    diags.extend(verify_spans(plan, &plan.mac_cycle_spans()));
    for b in 0..=plan.ops.len() {
        diags.extend(verify_live_in(plan, b, &plan.live_in_surfaces(b)));
    }
    diags.extend(verify_codec(plan));
    diags
}

/// What one op reads and writes, as `(addr, (c, h, w) shape)` pairs. The
/// linear head's output is i32 logits, not a packed surface, so it is
/// modelled separately.
fn op_reads(op: &PlanOp) -> Vec<(u64, (usize, usize, usize))> {
    match op {
        PlanOp::Conv(c) => {
            let g = &c.geom;
            let mut r = vec![(c.input_addr, (g.input.c, g.input.h, g.input.w))];
            if let Some(addr) = c.fuse_add_addr {
                r.push((addr, (g.k, g.oh, g.ow)));
            }
            r
        }
        PlanOp::Pool(p) => vec![(p.input_addr, (p.in_shape.c, p.in_shape.h, p.in_shape.w))],
        PlanOp::Linear(l) => vec![(l.input_addr, (l.in_f, 1, 1))],
    }
}

/// Shape chaining: every read resolves to the plan input or an earlier
/// producer of exactly the expected shape; the plan output is a linear head
/// producing `num_classes` logits.
#[must_use]
pub fn verify_shapes(plan: &ExecutionPlan) -> Vec<VerifyDiag> {
    // A produced surface shape, or `None` for the i32 logits region.
    type Produced = Option<(usize, usize, usize)>;
    let mut diags = Vec::new();
    let mut produced: Vec<(u64, Produced)> = vec![(
        plan.input_addr,
        Some((plan.input_shape.c, plan.input_shape.h, plan.input_shape.w)),
    )];
    let mut logits: Option<(u64, usize)> = None;
    for (i, op) in plan.ops.iter().enumerate() {
        for (addr, want) in op_reads(op) {
            match produced.iter().rev().find(|(a, _)| *a == addr) {
                Some((_, Some(have))) if *have == want => {}
                Some((_, Some(have))) => diags.push(diag(
                    Invariant::ShapeChain,
                    Some(i),
                    format!(
                        "reads {addr:#x} as ({}, {}, {}) but the surface there is \
                         ({}, {}, {})",
                        want.0, want.1, want.2, have.0, have.1, have.2
                    ),
                )),
                Some((_, None)) => diags.push(diag(
                    Invariant::ShapeChain,
                    Some(i),
                    format!("reads the i32 logits region at {addr:#x} as a feature surface"),
                )),
                None => diags.push(diag(
                    Invariant::ShapeChain,
                    Some(i),
                    format!(
                        "reads {addr:#x}, which no earlier op writes and which is \
                         not the plan input"
                    ),
                )),
            }
        }
        match op {
            PlanOp::Conv(c) => {
                let g = &c.geom;
                produced.push((c.output_addr, Some((g.k, g.oh, g.ow))));
            }
            PlanOp::Pool(p) => {
                let o = p.out_shape();
                produced.push((p.output_addr, Some((o.c, o.h, o.w))));
            }
            PlanOp::Linear(l) => {
                produced.push((l.output_addr, None));
                logits = Some((l.output_addr, l.out_f));
            }
        }
    }
    match logits {
        Some((addr, out_f)) if addr == plan.output_addr && out_f == plan.num_classes => {}
        Some((addr, out_f)) => diags.push(diag(
            Invariant::ShapeChain,
            None,
            format!(
                "plan output is {} classes at {:#x} but the last linear head \
                 writes {out_f} logits at {addr:#x}",
                plan.num_classes, plan.output_addr
            ),
        )),
        None => diags.push(diag(
            Invariant::ShapeChain,
            None,
            "plan has no linear head producing the output logits",
        )),
    }
    diags
}

/// One DRAM region of the plan, for the layout pass.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RegionRef {
    addr: u64,
    bytes: u64,
    /// Regions of the same class, address and size are one logical region
    /// (a surface read by several ops); anything else sharing bytes is an
    /// overlap.
    class: &'static str,
    label: String,
}

fn plan_regions(plan: &ExecutionPlan) -> Vec<RegionRef> {
    let mut regions = vec![RegionRef {
        addr: plan.input_addr,
        bytes: surface::surface_bytes(plan.input_shape.c, plan.input_shape.h, plan.input_shape.w)
            as u64,
        class: "surface",
        label: "input surface".to_string(),
    }];
    let surf = |addr: u64, (c, h, w): (usize, usize, usize), label: String| RegionRef {
        addr,
        bytes: surface::surface_bytes(c, h, w) as u64,
        class: "surface",
        label,
    };
    for (i, op) in plan.ops.iter().enumerate() {
        match op {
            PlanOp::Conv(c) => {
                let g = &c.geom;
                regions.push(surf(
                    c.output_addr,
                    (g.k, g.oh, g.ow),
                    format!("op{i} conv output"),
                ));
                regions.push(RegionRef {
                    addr: c.weight_addr,
                    bytes: surface::weight_bytes(g.k, g.input.c, g.r, g.s) as u64,
                    class: "weights",
                    label: format!("op{i} conv weights"),
                });
            }
            PlanOp::Pool(p) => {
                let o = p.out_shape();
                regions.push(surf(
                    p.output_addr,
                    (o.c, o.h, o.w),
                    format!("op{i} pool output"),
                ));
            }
            PlanOp::Linear(l) => {
                regions.push(RegionRef {
                    addr: l.output_addr,
                    bytes: (l.out_f * 4) as u64,
                    class: "logits",
                    label: format!("op{i} logits"),
                });
                regions.push(RegionRef {
                    addr: l.weight_addr,
                    bytes: surface::weight_bytes(l.out_f, l.in_f, 1, 1) as u64,
                    class: "weights",
                    label: format!("op{i} linear weights"),
                });
            }
        }
    }
    // Same logical region referenced by several ops: keep one copy.
    let mut dedup: Vec<RegionRef> = Vec::new();
    for r in regions {
        if !dedup
            .iter()
            .any(|d| d.addr == r.addr && d.bytes == r.bytes && d.class == r.class)
        {
            dedup.push(r);
        }
    }
    dedup
}

/// Surface-allocation liveness/overlap against the `alloc.rs` discipline:
/// every region aligned, in bounds, and pairwise disjoint. `weight_image`
/// entries are additionally checked against `dram_size`.
#[must_use]
pub fn verify_surfaces(plan: &ExecutionPlan) -> Vec<VerifyDiag> {
    let mut diags = Vec::new();
    let regions = plan_regions(plan);
    for r in &regions {
        if r.addr % ALIGN != 0 {
            diags.push(diag(
                Invariant::SurfaceAlignment,
                None,
                format!("{} at {:#x} is not {ALIGN}-byte aligned", r.label, r.addr),
            ));
        }
        if r.addr.saturating_add(r.bytes) > plan.dram_size {
            diags.push(diag(
                Invariant::SurfaceBounds,
                None,
                format!(
                    "{} at {:#x}+{} exceeds the plan's dram_size {}",
                    r.label, r.addr, r.bytes, plan.dram_size
                ),
            ));
        }
    }
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            let (a, b) = (&regions[i], &regions[j]);
            let disjoint = a.addr + a.bytes <= b.addr || b.addr + b.bytes <= a.addr;
            if !(disjoint || a.bytes == 0 || b.bytes == 0) {
                diags.push(diag(
                    Invariant::SurfaceOverlap,
                    None,
                    format!(
                        "{} ({:#x}+{}) overlaps {} ({:#x}+{})",
                        a.label, a.addr, a.bytes, b.label, b.addr, b.bytes
                    ),
                ));
            }
        }
    }
    for (i, (addr, bytes)) in plan.weight_image.iter().enumerate() {
        if addr.saturating_add(bytes.len() as u64) > plan.dram_size {
            diags.push(diag(
                Invariant::SurfaceBounds,
                None,
                format!(
                    "weight_image[{i}] at {addr:#x}+{} exceeds dram_size {}",
                    bytes.len(),
                    plan.dram_size
                ),
            ));
        }
    }
    diags
}

fn requant_ok(rq: Requant) -> bool {
    rq.multiplier() >= 0 && rq.shift() <= Requant::MAX_SHIFT
}

/// Requant-range sanity: vector lengths vs. op geometry, multiplier and
/// shift ranges (the same bounds `decode_words` enforces), residual
/// add/requant pairing, and input-scale sanity.
#[must_use]
pub fn verify_requant(plan: &ExecutionPlan) -> Vec<VerifyDiag> {
    let mut diags = Vec::new();
    if !(plan.input_scale.is_finite() && plan.input_scale > 0.0) {
        diags.push(diag(
            Invariant::RequantRange,
            None,
            format!(
                "input scale {} is not finite and positive",
                plan.input_scale
            ),
        ));
    }
    for (i, op) in plan.ops.iter().enumerate() {
        match op {
            PlanOp::Conv(c) => {
                let k = c.geom.k;
                if c.bias.len() != k {
                    diags.push(diag(
                        Invariant::RequantRange,
                        Some(i),
                        format!("bias length {} != {k} output channels", c.bias.len()),
                    ));
                }
                if c.requant.len() != 1 && c.requant.len() != k {
                    diags.push(diag(
                        Invariant::RequantRange,
                        Some(i),
                        format!(
                            "requant length {} is neither 1 nor {k} output channels",
                            c.requant.len()
                        ),
                    ));
                }
                for (n, rq) in c.requant.iter().enumerate() {
                    if !requant_ok(*rq) {
                        diags.push(diag(
                            Invariant::RequantRange,
                            Some(i),
                            format!(
                                "requant[{n}] multiplier {} shift {} out of range",
                                rq.multiplier(),
                                rq.shift()
                            ),
                        ));
                    }
                }
                if c.fuse_add_addr.is_some() != c.add_requant.is_some() {
                    diags.push(diag(
                        Invariant::RequantRange,
                        Some(i),
                        "fused residual address and add-requant must come together",
                    ));
                }
                if let Some(rq) = c.add_requant {
                    if !requant_ok(rq) {
                        diags.push(diag(
                            Invariant::RequantRange,
                            Some(i),
                            format!(
                                "add-requant multiplier {} shift {} out of range",
                                rq.multiplier(),
                                rq.shift()
                            ),
                        ));
                    }
                }
            }
            PlanOp::Linear(l) => {
                if l.bias.len() != l.out_f {
                    diags.push(diag(
                        Invariant::RequantRange,
                        Some(i),
                        format!(
                            "bias length {} != {} output features",
                            l.bias.len(),
                            l.out_f
                        ),
                    ));
                }
            }
            PlanOp::Pool(_) => {}
        }
    }
    diags
}

/// Audits a (possibly externally cached) MAC-cycle span table against the
/// plan: one span per op, sized `op_mac_cycles(op)` (empty for pool ops),
/// contiguous from cycle 1, together tiling `1..=total_mac_cycles()`. The
/// table behind op-scoped exact execution — a wrong span silently runs the
/// wrong engine over the wrong ops.
#[must_use]
pub fn verify_spans(plan: &ExecutionPlan, spans: &[Range<u64>]) -> Vec<VerifyDiag> {
    let mut diags = Vec::new();
    if spans.len() != plan.ops.len() {
        diags.push(diag(
            Invariant::SpanSchedule,
            None,
            format!("{} spans for {} ops", spans.len(), plan.ops.len()),
        ));
        return diags;
    }
    for (i, (op, span)) in plan.ops.iter().zip(spans).enumerate() {
        let want = ExecutionPlan::op_mac_cycles(op);
        let len = span.end.saturating_sub(span.start);
        if span.end < span.start || len != want {
            diags.push(diag(
                Invariant::SpanSchedule,
                Some(i),
                format!(
                    "span {}..{} covers {len} cycles but the op retires {want}",
                    span.start, span.end
                ),
            ));
        }
    }
    if let Some(first) = spans.first() {
        if first.start != 1 {
            diags.push(diag(
                Invariant::SpanSchedule,
                Some(0),
                format!(
                    "first span starts at {} but the retired counter starts at 1",
                    first.start
                ),
            ));
        }
    }
    for (i, w) in spans.windows(2).enumerate() {
        if w[0].end != w[1].start {
            diags.push(diag(
                Invariant::SpanSchedule,
                Some(i + 1),
                format!(
                    "span starts at {} but the previous op's span ends at {} \
                     (gap or overlap in the schedule)",
                    w[1].start, w[0].end
                ),
            ));
        }
    }
    let total = plan.total_mac_cycles();
    if let Some(last) = spans.last() {
        if last.end != total + 1 {
            diags.push(diag(
                Invariant::SpanSchedule,
                None,
                format!(
                    "last span ends at {} but the inference retires cycles 1..={total}",
                    last.end
                ),
            ));
        }
    }
    diags
}

/// Independently recomputes the live-in surface set at boundary `b` (every
/// `(addr, bytes)` read by some op `j >= b` before any op in `b..j` writes
/// it, largest size per address) and compares it with `claimed` as a set.
/// The recomputation deliberately uses a different traversal than
/// [`ExecutionPlan::live_in_surfaces`], so the two cross-check each other.
///
/// # Panics
///
/// Panics if `b > plan.ops.len()`.
#[must_use]
pub fn verify_live_in(plan: &ExecutionPlan, b: usize, claimed: &[(u64, u64)]) -> Vec<VerifyDiag> {
    assert!(b <= plan.ops.len(), "boundary {b} outside the plan");
    let writes_of = |op: &PlanOp| match op {
        PlanOp::Conv(c) => c.output_addr,
        PlanOp::Pool(p) => p.output_addr,
        PlanOp::Linear(l) => l.output_addr,
    };
    let mut expect: Vec<(u64, u64)> = Vec::new();
    for j in b..plan.ops.len() {
        for (addr, (c, h, w)) in op_reads(&plan.ops[j]) {
            let written_between = plan.ops[b..j].iter().any(|op| writes_of(op) == addr);
            if written_between {
                continue;
            }
            let bytes = surface::surface_bytes(c, h, w) as u64;
            match expect.iter_mut().find(|(a, _)| *a == addr) {
                Some((_, sz)) => *sz = (*sz).max(bytes),
                None => expect.push((addr, bytes)),
            }
        }
    }
    let mut want = expect.clone();
    let mut have = claimed.to_vec();
    want.sort_unstable();
    have.sort_unstable();
    if want == have {
        return Vec::new();
    }
    vec![diag(
        Invariant::LiveIn,
        Some(b),
        format!(
            "claimed live-in set {have:x?} but the ops of {b}.. actually read \
             {want:x?} before writing"
        ),
    )]
}

/// `encode_words`/`decode_words` closure: the descriptor stream decodes
/// back to the plan (modulo the preloaded `weight_image`, which by design
/// does not travel in the stream) and re-encodes to identical words.
#[must_use]
pub fn verify_codec(plan: &ExecutionPlan) -> Vec<VerifyDiag> {
    let words = encode_words(plan);
    let back = match decode_words(&words) {
        Ok(p) => p,
        Err(e) => {
            return vec![diag(
                Invariant::EncodeClosure,
                None,
                format!("encoded plan does not decode: {e}"),
            )]
        }
    };
    let mut stripped = plan.clone();
    stripped.weight_image.clear();
    let mut diags = Vec::new();
    if back != stripped {
        diags.push(diag(
            Invariant::EncodeClosure,
            None,
            "decode(encode(plan)) differs from the plan (weight image aside)",
        ));
    }
    if encode_words(&back) != words {
        diags.push(diag(
            Invariant::EncodeClosure,
            None,
            "re-encoding the decoded plan yields different words",
        ));
    }
    diags
}

// ---------------------------------------------------------------------------
// Fault reachability
// ---------------------------------------------------------------------------

/// Why a fault program provably cannot perturb any output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaskReason {
    /// After 18-bit masking the injector overrides no wires and flips no
    /// bits (`(fsel | xor) & I18::MASK == 0`): the mux is the identity.
    NoOpMask,
    /// No multiplier lane is selected.
    NoTargetLanes,
    /// The transient window intersects no MAC op's cycle span.
    WindowOutsideSchedule,
    /// Every selected lane is discarded (kernel tail) or idle-and-unperturbed
    /// in every op the fault could reach.
    TargetLanesIdle,
}

impl fmt::Display for MaskReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MaskReason::NoOpMask => "injector mask is a no-op",
            MaskReason::NoTargetLanes => "no lanes selected",
            MaskReason::WindowOutsideSchedule => "window misses every MAC op",
            MaskReason::TargetLanesIdle => "selected lanes idle in every reachable op",
        };
        f.write_str(s)
    }
}

/// Static classification of one fault program against one plan.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Reachability {
    /// The fault can influence at least one product that reaches an output
    /// accumulator (it may still be masked dynamically).
    Reachable,
    /// The fault provably cannot change any inference output.
    ProvablyMasked(MaskReason),
}

impl Reachability {
    /// `true` for [`Reachability::ProvablyMasked`].
    #[must_use]
    pub fn is_provably_masked(self) -> bool {
        matches!(self, Reachability::ProvablyMasked(_))
    }
}

/// Classifies a fault program statically. `lanes` are flat multiplier lane
/// ids (`mac * 8 + mult`, `0..64`); `fsel`/`fdata`/`xor` are the injector
/// registers (see `FaultKind::registers` in `nvfi-accel`); `gated` is the
/// idle-lane policy; `window` an optional transient window in retired
/// MAC-cycle numbering.
///
/// The lane model mirrors the exact engine: MAC unit `m` computes output
/// channels `k ≡ m (mod 8)` and is *discarded* for kernel-tail lanes
/// (`m >= min(8, k_out)` never reaches an accumulator); multiplier `j`
/// consumes input channels `c ≡ j (mod 8)` and runs idle on channel-tail
/// lanes, where a gated lane is skipped entirely while a zero-fed lane
/// still pushes its (overridable) zero product through the mux — perturbed
/// iff `((fdata & fsel) ^ xor) != 0`.
#[must_use]
pub fn fault_reachability(
    plan: &ExecutionPlan,
    lanes: &[usize],
    fsel: u32,
    fdata: u32,
    xor: u32,
    gated: bool,
    window: Option<&Range<u64>>,
) -> Reachability {
    let (fsel, fdata, xor) = (fsel & I18::MASK, fdata & I18::MASK, xor & I18::MASK);
    if (fsel | xor) == 0 {
        return Reachability::ProvablyMasked(MaskReason::NoOpMask);
    }
    if lanes.is_empty() {
        return Reachability::ProvablyMasked(MaskReason::NoTargetLanes);
    }
    // MAC ops the fault can reach at all: every one without a window, the
    // span-intersecting ones with.
    let spans = plan.mac_cycle_spans();
    let reachable_geoms: Vec<(usize, usize)> = plan
        .ops
        .iter()
        .zip(&spans)
        .filter_map(|(op, span)| {
            let geom = match op {
                PlanOp::Conv(c) => (c.geom.k, c.geom.input.c),
                PlanOp::Linear(l) => (l.out_f, l.in_f),
                PlanOp::Pool(_) => return None,
            };
            match window {
                Some(w) => {
                    // Mirrors the engine's span_intersects: empty ranges
                    // never intersect.
                    let hit = span.start < span.end
                        && w.start < w.end
                        && span.start < w.end
                        && w.start < span.end;
                    hit.then_some(geom)
                }
                None => Some(geom),
            }
        })
        .collect();
    if reachable_geoms.is_empty() {
        return Reachability::ProvablyMasked(MaskReason::WindowOutsideSchedule);
    }
    // A zero product comes out of the mux perturbed iff the override/flip
    // registers produce a nonzero word from zero input.
    let zero_perturbed = (fdata & fsel) ^ xor != 0;
    for &lane in lanes {
        let (m, j) = (lane / 8, lane % 8);
        for &(k_out, c_in) in &reachable_geoms {
            if m >= k_out.min(8) {
                continue; // kernel-tail MAC: output discarded in every group
            }
            let j_live = j < c_in.min(8);
            // Lane j idles in the last channel block iff the block is
            // partial and j falls past the tail.
            let j_idle_somewhere = c_in % 8 != 0 && j >= c_in % 8;
            if j_live || (j_idle_somewhere && !gated && zero_perturbed) {
                return Reachability::Reachable;
            }
        }
    }
    Reachability::ProvablyMasked(MaskReason::TargetLanesIdle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOp, LinearOp, PoolKind, PoolOp};
    use nvfi_tensor::{ConvGeom, Shape4};

    /// A small, fully consistent handcrafted plan: conv (3->5 ch, 8x8) ->
    /// global-avg pool -> linear head, with geometry-exact region sizes and
    /// 32-byte-aligned addresses.
    fn clean_plan() -> ExecutionPlan {
        let geom = ConvGeom::new(Shape4::new(1, 3, 8, 8), 5, 3, 3, 1, 1);
        // Region layout (all sizes at ALIGN granularity):
        //   input surface   0x000 + 512
        //   conv output     0x200 + 512   (surface_bytes(5, 8, 8))
        //   pool output     0x400 + 8     (surface_bytes(5, 1, 1))
        //   conv weights    0x420 + 576   (weight_bytes(5, 3, 3, 3))
        //   linear weights  0x6c0 + 128   (weight_bytes(10, 5, 1, 1))
        //   logits          0x740 + 40
        ExecutionPlan {
            input_shape: Shape4::new(1, 3, 8, 8),
            input_scale: 0.0123,
            input_addr: 0x000,
            output_addr: 0x740,
            num_classes: 10,
            ops: vec![
                PlanOp::Conv(ConvOp {
                    geom,
                    input_addr: 0x000,
                    output_addr: 0x200,
                    weight_addr: 0x420,
                    bias: vec![1, -2, 3, -4, 5],
                    requant: vec![Requant::from_scale(0.5).unwrap(); 5],
                    add_requant: None,
                    fuse_add_addr: None,
                    relu: true,
                }),
                PlanOp::Pool(PoolOp {
                    kind: PoolKind::GlobalAvg,
                    k: 0,
                    stride: 0,
                    in_shape: Shape4::new(1, 5, 8, 8),
                    input_addr: 0x200,
                    output_addr: 0x400,
                }),
                PlanOp::Linear(LinearOp {
                    in_f: 5,
                    out_f: 10,
                    input_addr: 0x400,
                    output_addr: 0x740,
                    weight_addr: 0x6c0,
                    bias: vec![0; 10],
                }),
            ],
            dram_size: 0x768,
            weight_image: Vec::new(),
            macs_per_inference: 12345,
        }
    }

    fn invariants(diags: &[VerifyDiag]) -> Vec<Invariant> {
        diags.iter().map(|d| d.invariant).collect()
    }

    #[test]
    fn clean_plan_verifies_clean() {
        let diags = verify_plan(&clean_plan());
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn overlapping_surface_is_named() {
        let mut plan = clean_plan();
        // Slide the pool output into the conv output surface (staying
        // aligned and keeping its reader consistent).
        if let PlanOp::Pool(p) = &mut plan.ops[1] {
            p.output_addr = 0x220;
        }
        if let PlanOp::Linear(l) = &mut plan.ops[2] {
            l.input_addr = 0x220;
        }
        let diags = verify_plan(&plan);
        assert!(
            invariants(&diags).contains(&Invariant::SurfaceOverlap),
            "expected surface-overlap, got {diags:?}"
        );
        assert!(
            diags
                .iter()
                .all(|d| d.invariant == Invariant::SurfaceOverlap),
            "overlap mutation must trip only surface-overlap: {diags:?}"
        );
    }

    #[test]
    fn shape_chain_break_is_named() {
        let mut plan = clean_plan();
        // The pool claims a different spatial extent than the conv
        // produces (channels unchanged, so only this one edge breaks).
        if let PlanOp::Pool(p) = &mut plan.ops[1] {
            p.in_shape = Shape4::new(1, 5, 7, 8);
        }
        let diags = verify_shapes(&plan);
        assert_eq!(invariants(&diags), vec![Invariant::ShapeChain]);
        assert!(diags[0].op == Some(1), "anchored to the reading op");
        assert!(diags[0].detail.contains("(5, 7, 8)"));
    }

    #[test]
    fn unwritten_read_is_a_shape_chain_break() {
        let mut plan = clean_plan();
        if let PlanOp::Linear(l) = &mut plan.ops[2] {
            l.input_addr = 0x9000; // nobody writes this
        }
        let diags = verify_shapes(&plan);
        assert_eq!(invariants(&diags), vec![Invariant::ShapeChain]);
        assert!(diags[0].detail.contains("no earlier op writes"));
    }

    #[test]
    fn span_gap_is_named() {
        let plan = clean_plan();
        let mut spans = plan.mac_cycle_spans();
        // Shift one op's span forward: a gap opens before it.
        spans[2] = spans[2].start + 3..spans[2].end + 3;
        let diags = verify_spans(&plan, &spans);
        assert!(
            !diags.is_empty() && diags.iter().all(|d| d.invariant == Invariant::SpanSchedule),
            "span mutation must trip only span-schedule: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.detail.contains("gap or overlap")),
            "the gap itself must be named: {diags:?}"
        );
    }

    #[test]
    fn stale_live_in_set_is_named() {
        let plan = clean_plan();
        // Drop an entry from the true boundary-1 live-in set.
        let mut stale = plan.live_in_surfaces(1);
        assert!(!stale.is_empty());
        stale.pop();
        let diags = verify_live_in(&plan, 1, &stale);
        assert_eq!(invariants(&diags), vec![Invariant::LiveIn]);
        assert_eq!(diags[0].op, Some(1));
        // A size lie is also caught.
        let mut wrong_size = plan.live_in_surfaces(1);
        wrong_size[0].1 += 8;
        assert_eq!(
            invariants(&verify_live_in(&plan, 1, &wrong_size)),
            vec![Invariant::LiveIn]
        );
        // The plan's own derivation passes at every boundary.
        for b in 0..=plan.ops.len() {
            assert!(verify_live_in(&plan, b, &plan.live_in_surfaces(b)).is_empty());
        }
    }

    #[test]
    fn requant_and_bias_violations_are_named() {
        let mut plan = clean_plan();
        if let PlanOp::Conv(c) = &mut plan.ops[0] {
            c.requant = vec![Requant::from_scale(0.5).unwrap(); 2]; // neither 1 nor k
            c.bias.pop();
        }
        let diags = verify_requant(&plan);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.invariant == Invariant::RequantRange));
        let mut bad_scale = clean_plan();
        bad_scale.input_scale = -1.0;
        assert!(invariants(&verify_requant(&bad_scale)).contains(&Invariant::RequantRange));
        // A negative scale also breaks the decode closure (decode_words
        // rejects it), which the codec pass reports independently.
        assert!(invariants(&verify_codec(&bad_scale)).contains(&Invariant::EncodeClosure));
    }

    #[test]
    fn misaligned_and_out_of_bounds_regions_are_named() {
        let mut plan = clean_plan();
        if let PlanOp::Conv(c) = &mut plan.ops[0] {
            c.weight_addr = 0x421; // off the 32-byte grid
        }
        assert!(invariants(&verify_surfaces(&plan)).contains(&Invariant::SurfaceAlignment));
        let mut small = clean_plan();
        small.dram_size = 0x100;
        assert!(invariants(&verify_surfaces(&small)).contains(&Invariant::SurfaceBounds));
    }

    #[test]
    fn reachability_no_op_and_empty_lanes() {
        let plan = clean_plan();
        assert_eq!(
            fault_reachability(&plan, &[0], 0, 0x3FFFF, 0, false, None),
            Reachability::ProvablyMasked(MaskReason::NoOpMask),
            "fsel 0 with xor 0 overrides nothing, whatever fdata says"
        );
        assert_eq!(
            fault_reachability(&plan, &[], I18::MASK, 0, 0, false, None),
            Reachability::ProvablyMasked(MaskReason::NoTargetLanes)
        );
    }

    #[test]
    fn reachability_window_outside_schedule() {
        let plan = clean_plan();
        let total = plan.total_mac_cycles();
        assert_eq!(
            fault_reachability(
                &plan,
                &[0],
                I18::MASK,
                0,
                0,
                false,
                Some(&(total + 10..total + 20))
            ),
            Reachability::ProvablyMasked(MaskReason::WindowOutsideSchedule)
        );
        assert_eq!(
            fault_reachability(&plan, &[0], I18::MASK, 0, 0, false, Some(&(1..2))),
            Reachability::Reachable
        );
    }

    #[test]
    fn reachability_idle_lane_semantics() {
        let plan = clean_plan(); // conv c_in=3, k=5; linear in_f=5, out_f=10
                                 // Lane (m=0, j=6): j >= 3 idle in the conv, j >= 5 idle in the
                                 // linear head — idle everywhere. Stuck-at-zero feeds zero into an
                                 // already-zero product: provably masked under the zero-fed policy.
        let lane_j6 = [6usize];
        assert_eq!(
            fault_reachability(&plan, &lane_j6, I18::MASK, 0, 0, false, None),
            Reachability::ProvablyMasked(MaskReason::TargetLanesIdle)
        );
        // A nonzero override on the same idle lane perturbs the zero-fed
        // adder tree: reachable.
        assert_eq!(
            fault_reachability(&plan, &lane_j6, I18::MASK, 1, 0, false, None),
            Reachability::Reachable
        );
        // Under gated idle lanes even the nonzero override cannot land.
        assert_eq!(
            fault_reachability(&plan, &lane_j6, I18::MASK, 1, 0, true, None),
            Reachability::ProvablyMasked(MaskReason::TargetLanesIdle)
        );
        // Kernel-tail MACs are discarded outright: with out_f=10 every MAC
        // unit serves the head, but a plan with k_out < 8 masks high MACs.
        let lane_m7 = [7 * 8usize]; // m=7, j=0
        assert_eq!(
            fault_reachability(&plan, &lane_m7, I18::MASK, 1, 0, false, None),
            Reachability::Reachable,
            "the 10-class head keeps every MAC unit live"
        );
        // Live lane: always conservatively reachable.
        assert_eq!(
            fault_reachability(&plan, &[0], I18::MASK, 0, 0, true, None),
            Reachability::Reachable
        );
    }

    #[test]
    fn reachability_is_monotone_in_lanes() {
        let plan = clean_plan();
        // Adding lanes can only move ProvablyMasked -> Reachable.
        for base in 0..64usize {
            let solo = fault_reachability(&plan, &[base], I18::MASK, 0, 0, false, None);
            let with_live = fault_reachability(&plan, &[base, 0], I18::MASK, 0, 0, false, None);
            assert_eq!(with_live, Reachability::Reachable);
            if solo == Reachability::Reachable {
                assert_eq!(with_live, Reachability::Reachable);
            }
        }
    }
}
