//! CSB / AXI4-Lite register map shared by the compiler (which emits register
//! writes) and the accelerator model (which decodes them).
//!
//! The fault-injection block mirrors Fig. 1 of the paper: a 64-bit
//! multiplier select split over `SEL_A`/`SEL_B`, an 18-bit per-wire select
//! `FSEL` and 18-bit override data `FDATA`, plus an enable bit in `CTRL`.
//! The command window (`CMD_*`) is a simple auto-incrementing descriptor
//! FIFO through which an execution plan can be streamed to the device, in
//! the spirit of NVDLA's configuration descriptors.

/// Device identification register (read-only).
pub const REG_ID: u32 = 0x0000;
/// Value read from [`REG_ID`]: "NvFI" emulator, version 1.
pub const ID_VALUE: u32 = 0x4E46_0001;

/// Global control: bit 0 starts plan execution (self-clearing in the model).
pub const REG_CTRL: u32 = 0x0004;
/// Status: bit 0 = done, bit 1 = error.
pub const REG_STATUS: u32 = 0x0008;

/// Fault-injection block base.
pub const FI_BASE: u32 = 0x0100;
/// FI control: bit 0 enables the injectors.
pub const REG_FI_CTRL: u32 = FI_BASE;
/// Low 32 bits of the 64-bit multiplier select.
pub const REG_FI_SEL_A: u32 = FI_BASE + 0x4;
/// High 32 bits of the 64-bit multiplier select.
pub const REG_FI_SEL_B: u32 = FI_BASE + 0x8;
/// 18-bit per-wire override select.
pub const REG_FI_FSEL: u32 = FI_BASE + 0xC;
/// 18-bit override data.
pub const REG_FI_FDATA: u32 = FI_BASE + 0x10;
/// 18-bit XOR (bit-flip) mask applied after the override mux — an extension
/// beyond the paper's stuck-at/constant models ("other fault models can
/// easily be incorporated").
pub const REG_FI_XOR: u32 = FI_BASE + 0x14;

/// Command window: writing [`REG_CMD_RESET`] clears the descriptor FIFO;
/// each write to [`REG_CMD_DATA`] appends one 32-bit word.
pub const REG_CMD_RESET: u32 = 0x0200;
/// Descriptor FIFO data port.
pub const REG_CMD_DATA: u32 = 0x0204;

/// Number of MAC units (also kernels per group).
pub const MAC_UNITS: usize = 8;
/// Multipliers per MAC unit (also channels per block).
pub const MULTS_PER_MAC: usize = 8;
/// Total multipliers in the CMAC array.
pub const TOTAL_MULTS: usize = MAC_UNITS * MULTS_PER_MAC;

/// Identifier of one physical multiplier: MAC unit `mac` (0..8), multiplier
/// `mult` (0..8). The flat lane index is `mac * 8 + mult`, matching the
/// `sel_a`/`sel_b` bit positions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MultId {
    /// MAC unit index, `0..MAC_UNITS`.
    pub mac: u8,
    /// Multiplier index within the MAC unit, `0..MULTS_PER_MAC`.
    pub mult: u8,
}

impl MultId {
    /// Creates an id, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if `mac` or `mult` is out of range.
    #[must_use]
    pub fn new(mac: u8, mult: u8) -> Self {
        assert!((mac as usize) < MAC_UNITS, "MAC id {mac} out of range");
        assert!(
            (mult as usize) < MULTS_PER_MAC,
            "multiplier id {mult} out of range"
        );
        MultId { mac, mult }
    }

    /// Flat lane index `0..64` (bit position in `sel_a:sel_b`).
    #[inline]
    #[must_use]
    pub fn lane(self) -> usize {
        self.mac as usize * MULTS_PER_MAC + self.mult as usize
    }

    /// Inverse of [`MultId::lane`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= TOTAL_MULTS`.
    #[must_use]
    pub fn from_lane(lane: usize) -> Self {
        assert!(lane < TOTAL_MULTS, "lane {lane} out of range");
        MultId {
            mac: (lane / MULTS_PER_MAC) as u8,
            mult: (lane % MULTS_PER_MAC) as u8,
        }
    }

    /// All 64 multiplier ids in lane order.
    pub fn all() -> impl Iterator<Item = MultId> {
        (0..TOTAL_MULTS).map(MultId::from_lane)
    }
}

impl std::fmt::Display for MultId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAC{}.M{}", self.mac + 1, self.mult + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip() {
        for lane in 0..TOTAL_MULTS {
            assert_eq!(MultId::from_lane(lane).lane(), lane);
        }
        assert_eq!(MultId::new(7, 7).lane(), 63);
        assert_eq!(MultId::new(1, 0).lane(), 8);
    }

    #[test]
    fn all_yields_64_distinct() {
        let v: Vec<MultId> = MultId::all().collect();
        assert_eq!(v.len(), 64);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mac_range_checked() {
        let _ = MultId::new(8, 0);
    }

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(MultId::new(0, 7).to_string(), "MAC1.M8");
    }
}
