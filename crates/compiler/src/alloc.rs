//! Bump allocator for the emulated DRAM address space.

use std::fmt;

/// Default alignment of every region (one atomic memory word).
pub const ALIGN: u64 = 32;

/// A named, allocated DRAM region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Debug name (layer/surface this region backs).
    pub name: String,
    /// Start address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

/// A bump allocator with alignment and a capacity limit, tracking every
/// region for diagnostics.
#[derive(Clone, Debug)]
pub struct DramAllocator {
    capacity: u64,
    next: u64,
    regions: Vec<Region>,
}

/// Error returned when the address space is exhausted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Requested size.
    pub requested: u64,
    /// Remaining bytes.
    pub remaining: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "emulated DRAM exhausted: requested {} bytes, {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl DramAllocator {
    /// Creates an allocator over `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        DramAllocator {
            capacity,
            next: 0,
            regions: Vec::new(),
        }
    }

    /// Allocates an aligned region.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the region does not fit.
    pub fn alloc(&mut self, name: impl Into<String>, size: u64) -> Result<u64, OutOfMemory> {
        let addr = self.next.div_ceil(ALIGN) * ALIGN;
        let end = addr.checked_add(size).ok_or(OutOfMemory {
            requested: size,
            remaining: self.capacity.saturating_sub(self.next),
        })?;
        if end > self.capacity {
            return Err(OutOfMemory {
                requested: size,
                remaining: self.capacity.saturating_sub(self.next),
            });
        }
        self.next = end;
        self.regions.push(Region {
            name: name.into(),
            addr,
            size,
        });
        Ok(addr)
    }

    /// Total bytes in use (including alignment gaps).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next
    }

    /// All allocated regions in allocation order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = DramAllocator::new(1 << 20);
        let r1 = a.alloc("a", 10).unwrap();
        let r2 = a.alloc("b", 100).unwrap();
        let r3 = a.alloc("c", 1).unwrap();
        for r in [r1, r2, r3] {
            assert_eq!(r % ALIGN, 0);
        }
        let regions = a.regions();
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (x, y) = (&regions[i], &regions[j]);
                assert!(
                    x.addr + x.size <= y.addr || y.addr + y.size <= x.addr,
                    "{x:?} overlaps {y:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_memory_reported() {
        let mut a = DramAllocator::new(100);
        assert!(a.alloc("ok", 64).is_ok());
        let err = a.alloc("big", 64).unwrap_err();
        assert_eq!(err.requested, 64);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn zero_sized_allocations_allowed() {
        let mut a = DramAllocator::new(64);
        let r = a.alloc("empty", 0).unwrap();
        assert_eq!(r, 0);
        assert_eq!(a.used(), 0);
    }
}
