//! Property-based tests of the layout and allocation machinery.

use nvfi_compiler::alloc::{DramAllocator, ALIGN};
use nvfi_compiler::surface;
use nvfi_tensor::{Shape4, Tensor};
use proptest::prelude::*;

proptest! {
    /// Surface pack/unpack is a bijection on tensor contents for arbitrary
    /// (C, H, W), including ragged channel counts.
    #[test]
    fn surface_roundtrip(
        c in 1usize..20,
        h in 1usize..9,
        w in 1usize..9,
        seed in any::<u64>(),
    ) {
        let t = Tensor::from_fn(Shape4::new(1, c, h, w), |_, ci, hi, wi| {
            (seed.wrapping_mul(0x9E37_79B9)
                .wrapping_add((ci * 131 + hi * 31 + wi) as u64) % 255) as i8
        });
        let packed = surface::pack_surface(&t);
        prop_assert_eq!(packed.len(), surface::surface_bytes(c, h, w));
        let back = surface::unpack_surface(&packed, t.shape());
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Padding lanes of the last channel block are always zero.
    #[test]
    fn surface_padding_is_zero(c in 1usize..16, h in 1usize..5, w in 1usize..5) {
        let t = Tensor::from_fn(Shape4::new(1, c, h, w), |_, ci, _, _| (ci as i8) + 1);
        let packed = surface::pack_surface(&t);
        let shape = t.shape();
        for hh in 0..h {
            for ww in 0..w {
                for lane in c..c.div_ceil(8) * 8 {
                    // Reconstruct the padded offset by hand: block of the
                    // lane, position within the word.
                    let base = surface::surface_offset(shape, (lane / 8) * 8, hh, ww)
                        - ((lane / 8) * 8) % 8;
                    prop_assert_eq!(packed[base + lane % 8], 0,
                        "lane {} at ({},{}) should be padding", lane, hh, ww);
                }
            }
        }
    }

    /// Weight pack/unpack is a bijection for arbitrary (K, C, R, S).
    #[test]
    fn weight_roundtrip(
        k in 1usize..18,
        c in 1usize..18,
        r in 1usize..4,
        s in 1usize..4,
        seed in any::<u64>(),
    ) {
        let t = Tensor::from_fn(Shape4::new(k, c, r, s), |ki, ci, ri, si| {
            (seed.wrapping_add((ki * 1009 + ci * 101 + ri * 11 + si) as u64) % 253) as i8
        });
        let packed = surface::pack_weights(&t);
        prop_assert_eq!(packed.len(), surface::weight_bytes(k, c, r, s));
        let back = surface::unpack_weights(&packed, t.shape());
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Allocations never overlap and are always aligned, regardless of the
    /// request sequence.
    #[test]
    fn allocator_invariants(sizes in proptest::collection::vec(0u64..10_000, 1..40)) {
        let mut alloc = DramAllocator::new(1 << 24);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let addr = alloc.alloc(format!("r{i}"), size).unwrap();
            prop_assert_eq!(addr % ALIGN, 0);
            regions.push((addr, size));
        }
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (a, b) = (regions[i], regions[j]);
                prop_assert!(a.0 + a.1 <= b.0 || b.0 + b.1 <= a.0,
                    "overlap: {:?} vs {:?}", a, b);
            }
        }
        prop_assert!(alloc.used() <= 1 << 24);
    }
}
