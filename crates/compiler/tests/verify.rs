//! The verifier against *real* compiled plans: every plan the compiler
//! emits for a family of ResNet configurations must pass the full invariant
//! catalogue clean, and static fault reachability on those plans must agree
//! with the engine's lane-liveness rules.

use nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY;
use nvfi_compiler::{fault_reachability, verify_plan, MaskReason, Reachability};
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_hwnum::I18;
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig};
use proptest::prelude::*;

fn compiled_plan(width: usize, stage_blocks: &[usize], seed: u64) -> nvfi_compiler::ExecutionPlan {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 8,
        test: 4,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(width, stage_blocks, 10, seed);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    nvfi_compiler::compile(&q, DEFAULT_DRAM_CAPACITY).unwrap()
}

#[test]
fn standard_fixture_plan_verifies_clean() {
    let plan = compiled_plan(4, &[1, 1], 3);
    let diags = verify_plan(&plan);
    assert!(
        diags.is_empty(),
        "compiled plan must satisfy every invariant:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn reachability_on_a_real_plan_matches_lane_liveness() {
    // Width 2, one stage: channel counts are 3 (stem) and 2, so lanes
    // j >= 3 never multiply real data and a zero-feeding fault on them is
    // provably masked; lanes j < 3 are live in the stem.
    let plan = compiled_plan(2, &[1], 3);
    let masked = fault_reachability(&plan, &[5], I18::MASK, 0, 0, false, None);
    assert_eq!(
        masked,
        Reachability::ProvablyMasked(MaskReason::TargetLanesIdle)
    );
    let live = fault_reachability(&plan, &[2], I18::MASK, 0, 0, false, None);
    assert_eq!(live, Reachability::Reachable);
    // A non-zero forced value on an idle lane perturbs its zero product
    // under the zero-fed policy: reachable.
    let forced = fault_reachability(&plan, &[5], I18::MASK, 1, 0, false, None);
    assert_eq!(forced, Reachability::Reachable);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every plan in a small family of ResNet configurations — widths that
    /// exercise ragged and full channel blocks, one or two stages — passes
    /// the whole invariant catalogue.
    #[test]
    fn compiled_plans_verify_clean(
        width in 2usize..6,
        two_stages in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let stages: &[usize] = if two_stages { &[1, 1] } else { &[1] };
        let plan = compiled_plan(width, stages, seed);
        let diags = verify_plan(&plan);
        prop_assert!(
            diags.is_empty(),
            "width {} stages {:?} seed {}: {:?}",
            width, stages, seed,
            diags.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}
