//! The performance (cycle/latency) model.
//!
//! The FPGA numbers of the paper's Table I come from a real 187.5 MHz
//! bitstream; here they come from an analytical cycle model grounded in the
//! same microarchitecture:
//!
//! * the MAC array retires **one atomic op per cycle**
//!   (`OH*OW * ceil(K/8) * ceil(C/8) * R * S` cycles per convolution);
//! * DMA moves 8 bytes per cycle on a 64-bit AXI port, overlapped with
//!   compute (an op costs `max(mac_cycles, dma_cycles)`);
//! * each op pays a fixed setup overhead (register programming + pipeline
//!   fill/drain).
//!
//! The fault injectors are purely combinational muxes in the multiplier
//! output path and add **zero** cycles — matching the paper's observation
//! that the FI variants run at the same 4.59 ms.

use nvfi_compiler::plan::{ExecutionPlan, PlanOp};
use nvfi_compiler::surface;

/// The paper's accelerator clock: 187.5 MHz.
pub const CLOCK_HZ_DEFAULT: f64 = 187.5e6;

/// Fixed per-op setup overhead in cycles (register writes + pipeline fill).
pub const OP_SETUP_CYCLES: u64 = 256;

/// Bytes moved per DMA cycle (64-bit AXI data port).
pub const DMA_BYTES_PER_CYCLE: u64 = 8;

/// Lanes the PDP processes per cycle.
pub const PDP_LANES_PER_CYCLE: u64 = 8;

/// Default host-side inference mini-batch (see [`AccelConfig::batch`]).
pub const BATCH_DEFAULT: usize = 8;

/// Accelerator configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AccelConfig {
    /// Functional execution mode.
    pub mode: crate::engine::ExecMode,
    /// Idle-lane policy for partial channel blocks.
    pub idle_lanes: crate::engine::IdleLanePolicy,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Emulated DRAM capacity in bytes.
    pub dram_capacity: u64,
    /// Host-side mini-batch for `classify_batch`: how many images share one
    /// im2col + GEMM pass on the fast path. Purely a host-emulation
    /// throughput knob — results are bit-identical for every value; the
    /// modelled FPGA latency is per-image regardless.
    pub batch: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            mode: crate::engine::ExecMode::Auto,
            idle_lanes: crate::engine::IdleLanePolicy::ZeroFed,
            clock_hz: CLOCK_HZ_DEFAULT,
            dram_capacity: nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY,
            batch: BATCH_DEFAULT,
        }
    }
}

/// Cycle breakdown of one inference.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Cycles per op in plan order.
    pub op_cycles: Vec<u64>,
    /// Total cycles.
    pub total_cycles: u64,
    /// MAC (compute-bound) cycles only.
    pub mac_cycles: u64,
    /// DMA bytes moved.
    pub dma_bytes: u64,
    /// Clock used to convert to time.
    pub clock_hz: f64,
}

impl PerfReport {
    /// Latency of one inference in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles as f64 / self.clock_hz * 1e3
    }

    /// Inference throughput in inferences/second.
    #[must_use]
    pub fn inferences_per_second(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.clock_hz / self.total_cycles as f64
    }
}

/// Cycles one plan op takes.
#[must_use]
pub fn op_cycles(op: &PlanOp) -> (u64, u64) {
    // Returns (cycles, dma_bytes).
    match op {
        PlanOp::Conv(c) => {
            let g = &c.geom;
            let kg = g.k.div_ceil(8) as u64;
            let cb = g.input.c.div_ceil(8) as u64;
            let mac = (g.oh * g.ow) as u64 * kg * cb * (g.r * g.s) as u64;
            let in_bytes = surface::surface_bytes(g.input.c, g.input.h, g.input.w) as u64;
            let w_bytes = surface::weight_bytes(g.k, g.input.c, g.r, g.s) as u64;
            let out_bytes = surface::surface_bytes(g.k, g.oh, g.ow) as u64;
            let res_bytes = if c.fuse_add_addr.is_some() {
                out_bytes
            } else {
                0
            };
            let dma = in_bytes + w_bytes + out_bytes + res_bytes;
            (mac.max(dma / DMA_BYTES_PER_CYCLE) + OP_SETUP_CYCLES, dma)
        }
        PlanOp::Pool(p) => {
            let s = p.in_shape;
            let in_bytes = surface::surface_bytes(s.c, s.h, s.w) as u64;
            let o = p.out_shape();
            let out_bytes = surface::surface_bytes(o.c, o.h, o.w) as u64;
            let work = (s.c.div_ceil(8) * s.h * s.w) as u64 * 8 / PDP_LANES_PER_CYCLE;
            let dma = in_bytes + out_bytes;
            (work.max(dma / DMA_BYTES_PER_CYCLE) + OP_SETUP_CYCLES, dma)
        }
        PlanOp::Linear(l) => {
            let kg = l.out_f.div_ceil(8) as u64;
            let cb = l.in_f.div_ceil(8) as u64;
            let mac = kg * cb;
            let dma = surface::weight_bytes(l.out_f, l.in_f, 1, 1) as u64
                + surface::surface_bytes(l.in_f, 1, 1) as u64
                + l.out_f as u64 * 4;
            (mac.max(dma / DMA_BYTES_PER_CYCLE) + OP_SETUP_CYCLES, dma)
        }
    }
}

/// Builds the full report for a plan at a given clock.
#[must_use]
pub fn plan_report(plan: &ExecutionPlan, clock_hz: f64) -> PerfReport {
    let mut report = PerfReport {
        clock_hz,
        ..Default::default()
    };
    for op in &plan.ops {
        let (cycles, dma) = op_cycles(op);
        report.op_cycles.push(cycles);
        report.total_cycles += cycles;
        report.dma_bytes += dma;
        if let PlanOp::Conv(c) = op {
            let g = &c.geom;
            report.mac_cycles +=
                (g.oh * g.ow * g.k.div_ceil(8) * g.input.c.div_ceil(8) * g.r * g.s) as u64;
        }
        if let PlanOp::Pool(p) = op {
            // PDP work is accounted in op cycles only.
            let _ = p;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_compiler::plan::{ConvOp, PoolKind, PoolOp};
    use nvfi_hwnum::Requant;
    use nvfi_tensor::{ConvGeom, Shape4};

    fn conv_op(c: usize, h: usize, k: usize, r: usize) -> PlanOp {
        let geom = ConvGeom::new(Shape4::new(1, c, h, h), k, r, r, 1, r / 2);
        PlanOp::Conv(ConvOp {
            geom,
            input_addr: 0,
            output_addr: 0,
            weight_addr: 0,
            bias: vec![0; k],
            requant: vec![Requant::IDENTITY],
            add_requant: None,
            fuse_add_addr: None,
            relu: false,
        })
    }

    #[test]
    fn conv_cycles_scale_with_work() {
        let (small, _) = op_cycles(&conv_op(8, 8, 8, 3));
        let (big, _) = op_cycles(&conv_op(16, 8, 8, 3));
        assert!(big > small, "{big} vs {small}");
        // Doubling channels doubles channel blocks.
        assert_eq!(big - OP_SETUP_CYCLES, 2 * (small - OP_SETUP_CYCLES));
    }

    #[test]
    fn atomic_op_math() {
        // 8x8 input, 8 channels, 8 kernels, 3x3: 64 pixels * 1 * 1 * 9 = 576.
        let (cycles, _) = op_cycles(&conv_op(8, 8, 8, 3));
        assert_eq!(cycles, 576 + OP_SETUP_CYCLES);
    }

    #[test]
    fn pool_counts_dma() {
        let p = PlanOp::Pool(PoolOp {
            kind: PoolKind::GlobalAvg,
            k: 0,
            stride: 0,
            in_shape: Shape4::new(1, 16, 4, 4),
            input_addr: 0,
            output_addr: 0,
        });
        let (cycles, dma) = op_cycles(&p);
        assert!(cycles > OP_SETUP_CYCLES);
        assert_eq!(dma, (2 * 4 * 4 * 8 + 2 * 8) as u64);
    }

    #[test]
    fn report_latency_uses_clock() {
        let plan = ExecutionPlan {
            input_shape: Shape4::new(1, 8, 8, 8),
            input_scale: 0.1,
            input_addr: 0,
            output_addr: 0,
            num_classes: 0,
            ops: vec![conv_op(8, 8, 8, 3)],
            dram_size: 0,
            weight_image: vec![],
            macs_per_inference: 0,
        };
        let r = plan_report(&plan, 1e6); // 1 MHz: 1 cycle = 1 us
        assert!((r.latency_ms() - r.total_cycles as f64 / 1e3).abs() < 1e-9);
        assert!(r.inferences_per_second() > 0.0);
    }
}
