//! The execution engine: runs compiled plans on the modelled datapath.

use nvfi_compiler::plan::{ConvOp, ExecutionPlan, LinearOp, PlanOp, PoolKind, PoolOp, RegWrite};
use nvfi_compiler::surface;
use nvfi_hwnum::{sat, I18};
use nvfi_quant::exec::{pdp_global_avg, sdp_postprocess};
use nvfi_tensor::{conv, pool, ConvGeom, Shape4, Tensor};
use std::ops::Range;

use crate::csb::CsbSpace;
use crate::dram::Dram;
use crate::error::AccelError;
use crate::fi::FaultConfig;
use crate::perf::{self, AccelConfig, PerfReport};

/// How convolutions are evaluated functionally.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Every product goes through its injector mux; honours bit-granular
    /// faults and transient windows. Slow — ground truth.
    Exact,
    /// Clean GEMM plus per-faulted-lane algebraic corrections. Only valid
    /// for permanent full-lane overrides; errors otherwise.
    Fast,
    /// Use `Fast` whenever the programmed faults allow it, else `Exact`.
    #[default]
    Auto,
}

/// What happens on multiplier lanes whose channel index exceeds the layer's
/// channel count (partial channel blocks).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum IdleLanePolicy {
    /// Idle lanes multiply zeros — their (overridable!) products still enter
    /// the adder tree, as in CMAC's zero-padded atomic ops. Default.
    #[default]
    ZeroFed,
    /// Idle lanes are clock-gated: no product, faults have no effect there.
    Gated,
}

/// Result of one inference.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Raw i32 logits read back from DRAM.
    pub logits: Vec<i32>,
    /// Argmax class.
    pub class: u8,
    /// Cycle/latency model output for this inference.
    pub perf: PerfReport,
}

/// The emulated accelerator device.
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AccelConfig,
    csb: CsbSpace,
    dram: Dram,
    plan: Option<ExecutionPlan>,
    /// Functional MAC-array cycle counter (atomic ops retired); used to gate
    /// transient fault windows in exact mode.
    cycle: u64,
}

impl Accelerator {
    /// Creates a device with the given configuration.
    #[must_use]
    pub fn new(config: AccelConfig) -> Self {
        Accelerator {
            config,
            csb: CsbSpace::new(),
            dram: Dram::new(config.dram_capacity),
            plan: None,
            cycle: 0,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// CSB register write (AXI4-Lite).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn csb_write(&mut self, addr: u32, value: u32) -> Result<(), AccelError> {
        self.csb.write(addr, value)
    }

    /// CSB register read (AXI4-Lite).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn csb_read(&self, addr: u32) -> Result<u32, AccelError> {
        self.csb.read(addr)
    }

    /// Host DMA into DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn dma_write(&mut self, addr: u64, bytes: &[i8]) -> Result<(), AccelError> {
        self.dram.write_i8(addr, bytes)
    }

    /// Host DMA out of DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn dma_read(&mut self, addr: u64, len: u64) -> Result<Vec<i8>, AccelError> {
        self.dram.read_i8(addr, len)
    }

    /// Flips one bit of DRAM — a memory single-event upset (SEU). Pointing
    /// this at a weight region emulates weight-memory faults, complementing
    /// the datapath injectors (part of the paper's "study the impact of
    /// introducing various FT mechanisms" future-work agenda).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] if `addr` is outside DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_dram_bit(&mut self, addr: u64, bit: u8) -> Result<(), AccelError> {
        assert!(bit < 8, "bit index {bit} out of a byte");
        let byte = self.dram.read_i8(addr, 1)?[0];
        self.dram.write_i8(addr, &[byte ^ (1 << bit)])
    }

    /// Loads a compiled plan: validates it against the DRAM capacity and
    /// preloads the packed weight regions.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadPlan`] if the plan does not fit.
    pub fn load_plan(&mut self, plan: &ExecutionPlan) -> Result<(), AccelError> {
        if plan.dram_size > self.config.dram_capacity {
            return Err(AccelError::BadPlan(format!(
                "plan needs {} bytes, device has {}",
                plan.dram_size, self.config.dram_capacity
            )));
        }
        for (addr, bytes) in &plan.weight_image {
            self.dram.write_i8(*addr, bytes)?;
        }
        self.plan = Some(plan.clone());
        self.cycle = 0;
        Ok(())
    }

    /// Loads a plan that was streamed into the command FIFO as register
    /// writes (see [`nvfi_compiler::plan::encode_reg_stream`]). Weights must
    /// be DMA'd separately, exactly as a real driver would.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadPlan`] if the FIFO contents do not decode.
    pub fn commit_cmd_fifo(&mut self) -> Result<(), AccelError> {
        let plan = nvfi_compiler::plan::decode_words(&self.csb.cmd_fifo)
            .map_err(|e| AccelError::BadPlan(e.to_string()))?;
        if plan.dram_size > self.config.dram_capacity {
            return Err(AccelError::BadPlan("plan exceeds dram".into()));
        }
        self.plan = Some(plan);
        self.cycle = 0;
        Ok(())
    }

    /// Applies the register writes of `stream` (FI programming, command
    /// FIFO, ...) in order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing write.
    pub fn apply_reg_stream(&mut self, stream: &[RegWrite]) -> Result<(), AccelError> {
        for w in stream {
            self.csb_write(w.addr, w.value)?;
        }
        Ok(())
    }

    /// Programs a fault configuration through the CSB registers.
    pub fn inject(&mut self, fault: &FaultConfig) {
        for w in fault.reg_writes() {
            self.csb.write(w.addr, w.value).expect("FI registers are mapped");
        }
    }

    /// Disables all fault injection.
    pub fn clear_faults(&mut self) {
        self.csb.fi = crate::fi::FaultInjectorBank::new();
    }

    /// Restricts injection to a cycle window (a transient / "pulse" fault).
    /// Only honoured in [`ExecMode::Exact`]; `Auto` falls back to exact
    /// while a window is set.
    pub fn set_fault_window(&mut self, window: Option<Range<u64>>) {
        self.csb.fi.window = window;
    }

    /// The functional MAC-array cycle counter.
    #[must_use]
    pub fn mac_cycles_retired(&self) -> u64 {
        self.cycle
    }

    /// Quantizes, runs and classifies one f32 image (shape `(1, C, H, W)`).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan, or any engine
    /// error.
    pub fn run_inference(&mut self, image: &Tensor<f32>) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let scale = plan.input_scale;
        let qimg = image.map(|v| sat::quantize_f32_to_i8(v, scale));
        self.run_inference_i8(&qimg)
    }

    /// Runs one pre-quantized i8 image.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan, or any engine
    /// error.
    pub fn run_inference_i8(&mut self, image: &Tensor<i8>) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.clone().ok_or(AccelError::NoPlan)?;
        let s = image.shape();
        if s.with_n(1) != plan.input_shape.with_n(1) {
            return Err(AccelError::BadPlan(format!(
                "input {s} does not match plan input {}",
                plan.input_shape
            )));
        }
        // Host writes the input surface.
        let packed = surface::pack_surface(&image.slice_image(0));
        self.dram.write_i8(plan.input_addr, &packed)?;
        // Execute ops.
        for op in &plan.ops {
            match op {
                PlanOp::Conv(c) => self.exec_conv(c)?,
                PlanOp::Pool(p) => self.exec_pool(p)?,
                PlanOp::Linear(l) => self.exec_linear(l)?,
            }
        }
        let logits = self.dram.read_i32(plan.output_addr, plan.num_classes)?;
        let class = nvfi_quant::exec::argmax(&logits);
        let perf = perf::plan_report(&plan, self.config.clock_hz);
        Ok(InferenceResult { logits, class, perf })
    }

    /// Classifies a batch of f32 images, one inference each.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    pub fn classify_batch(&mut self, images: &Tensor<f32>) -> Result<Vec<u8>, AccelError> {
        let mut out = Vec::with_capacity(images.shape().n);
        for n in 0..images.shape().n {
            let img = images.slice_image(n);
            out.push(self.run_inference(&img)?.class);
        }
        Ok(out)
    }

    /// Top-1 accuracy over a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.shape().n`.
    pub fn accuracy(
        &mut self,
        images: &Tensor<f32>,
        labels: &[u8],
    ) -> Result<f64, AccelError> {
        assert_eq!(images.shape().n, labels.len());
        if labels.is_empty() {
            return Ok(0.0);
        }
        let preds = self.classify_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    // -- internal op execution ---------------------------------------------

    fn effective_exact(&self) -> Result<bool, AccelError> {
        let fi = &self.csb.fi;
        let needs_exact = fi.any_active() && (!fi.is_full_override() || fi.window.is_some());
        match self.config.mode {
            ExecMode::Exact => Ok(true),
            ExecMode::Fast => {
                if needs_exact {
                    Err(AccelError::FastPathUnsupported)
                } else {
                    Ok(false)
                }
            }
            ExecMode::Auto => Ok(needs_exact),
        }
    }

    fn exec_conv(&mut self, op: &ConvOp) -> Result<(), AccelError> {
        let g = op.geom;
        let in_bytes = surface::surface_bytes(g.input.c, g.input.h, g.input.w) as u64;
        let input =
            surface::unpack_surface(&self.dram.read_i8(op.input_addr, in_bytes)?, g.input);
        let w_bytes = surface::weight_bytes(g.k, g.input.c, g.r, g.s) as u64;
        let weights = surface::unpack_weights(
            &self.dram.read_i8(op.weight_addr, w_bytes)?,
            g.weight_shape(),
        );
        let acc = if self.effective_exact()? {
            self.conv_exact(&input, &weights, &g)
        } else {
            let mut acc = conv::conv2d_i8(&input, &weights, &g, 1);
            self.cycle +=
                (g.oh * g.ow * g.k.div_ceil(8) * g.input.c.div_ceil(8) * g.r * g.s) as u64;
            if self.csb.fi.any_active() {
                self.apply_fast_corrections(&mut acc, &input, &weights, &g);
            }
            acc
        };
        // SDP: bias, requant, optional residual add, relu, saturate.
        let out_shape = Shape4::new(1, g.k, g.oh, g.ow);
        let residual = match op.fuse_add_addr {
            Some(addr) => {
                let bytes = surface::surface_bytes(g.k, g.oh, g.ow) as u64;
                Some(surface::unpack_surface(&self.dram.read_i8(addr, bytes)?, out_shape))
            }
            None => None,
        };
        let mut out = Tensor::<i8>::zeros(out_shape);
        for k in 0..g.k {
            let rq = op.requant_for(k);
            for y in 0..g.oh {
                for x in 0..g.ow {
                    let a = acc.at(0, k, y, x).wrapping_add(op.bias[k]);
                    let res = residual
                        .as_ref()
                        .map(|r| (r.at(0, k, y, x), op.add_requant.expect("add requant")));
                    out.set(0, k, y, x, sdp_postprocess(a, rq, res, op.relu));
                }
            }
        }
        self.dram.write_i8(op.output_addr, &surface::pack_surface(&out))
    }

    /// Ground-truth convolution: every product through its injector mux.
    /// Schedule (defines the cycle numbering for transient windows):
    /// kernel-group -> output row -> output col -> channel-block -> tap.
    fn conv_exact(
        &mut self,
        input: &Tensor<i8>,
        weights: &Tensor<i8>,
        g: &ConvGeom,
    ) -> Tensor<i32> {
        let gated = self.config.idle_lanes == IdleLanePolicy::Gated;
        let (kg_n, cb_n) = (g.k.div_ceil(8), g.input.c.div_ceil(8));
        let mut acc = Tensor::<i32>::zeros(Shape4::new(1, g.k, g.oh, g.ow));
        for kg in 0..kg_n {
            for oy in 0..g.oh {
                for ox in 0..g.ow {
                    for cb in 0..cb_n {
                        for r in 0..g.r {
                            for s in 0..g.s {
                                self.cycle += 1;
                                let iy = (oy * g.stride + r) as isize - g.pad as isize;
                                let ix = (ox * g.stride + s) as isize - g.pad as isize;
                                let in_bounds = iy >= 0
                                    && ix >= 0
                                    && iy < g.input.h as isize
                                    && ix < g.input.w as isize;
                                for m in 0..8usize {
                                    let k = kg * 8 + m;
                                    if k >= g.k {
                                        continue; // kernel-tail MAC output discarded
                                    }
                                    let mut psum = 0i32;
                                    for j in 0..8usize {
                                        let c = cb * 8 + j;
                                        let idle = c >= g.input.c;
                                        if idle && gated {
                                            continue;
                                        }
                                        let a = if idle || !in_bounds {
                                            0i8
                                        } else {
                                            input.at(0, c, iy as usize, ix as usize)
                                        };
                                        let w = if idle { 0i8 } else { weights.at(k, c, r, s) };
                                        let p = self.csb.fi.apply(
                                            m * 8 + j,
                                            I18::from_product(a, w),
                                            self.cycle,
                                        );
                                        psum = psum.wrapping_add(p.value());
                                    }
                                    let cur = acc.at(0, k, oy, ox);
                                    acc.set(0, k, oy, ox, cur.wrapping_add(psum));
                                }
                            }
                        }
                    }
                }
            }
        }
        acc
    }

    /// Fast-path correction: for each faulted lane, replace its clean
    /// contribution with `forced_value * #products`. Exactly equal to the
    /// exact path for permanent full-lane overrides (see the property
    /// tests).
    fn apply_fast_corrections(
        &self,
        acc: &mut Tensor<i32>,
        input: &Tensor<i8>,
        weights: &Tensor<i8>,
        g: &ConvGeom,
    ) {
        let fi = &self.csb.fi;
        let v = i64::from(fi.forced_value());
        let gated = self.config.idle_lanes == IdleLanePolicy::Gated;
        let cb_n = g.input.c.div_ceil(8);
        for lane in fi.selected_lanes() {
            let (m, j) = (lane.mac as usize, lane.mult as usize);
            let real_blocks =
                if j < g.input.c { (g.input.c - 1 - j) / 8 + 1 } else { 0 };
            let blocks = if gated { real_blocks } else { cb_n };
            let nprod = (blocks * g.r * g.s) as i64;
            let mut k = m;
            while k < g.k {
                for oy in 0..g.oh {
                    for ox in 0..g.ow {
                        let mut lanesum = 0i64;
                        let mut c = j;
                        while c < g.input.c {
                            for r in 0..g.r {
                                for s in 0..g.s {
                                    let iy = (oy * g.stride + r) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + s) as isize - g.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && iy < g.input.h as isize
                                        && ix < g.input.w as isize
                                    {
                                        lanesum += i64::from(input.at(0, c, iy as usize, ix as usize))
                                            * i64::from(weights.at(k, c, r, s));
                                    }
                                }
                            }
                            c += 8;
                        }
                        let corr = (v * nprod - lanesum) as i32;
                        let cur = acc.at(0, k, oy, ox);
                        acc.set(0, k, oy, ox, cur.wrapping_add(corr));
                    }
                }
                k += 8;
            }
        }
    }

    fn exec_pool(&mut self, op: &PoolOp) -> Result<(), AccelError> {
        let s = op.in_shape;
        let bytes = surface::surface_bytes(s.c, s.h, s.w) as u64;
        let input = surface::unpack_surface(&self.dram.read_i8(op.input_addr, bytes)?, s);
        let out = match op.kind {
            PoolKind::Max => pool::maxpool2d(&input, op.k, op.stride),
            PoolKind::GlobalAvg => pdp_global_avg(&input),
        };
        self.dram.write_i8(op.output_addr, &surface::pack_surface(&out))
    }

    fn exec_linear(&mut self, op: &LinearOp) -> Result<(), AccelError> {
        let in_shape = Shape4::new(1, op.in_f, 1, 1);
        let bytes = surface::surface_bytes(op.in_f, 1, 1) as u64;
        let input = surface::unpack_surface(&self.dram.read_i8(op.input_addr, bytes)?, in_shape);
        let w_bytes = surface::weight_bytes(op.out_f, op.in_f, 1, 1) as u64;
        let weights = surface::unpack_weights(
            &self.dram.read_i8(op.weight_addr, w_bytes)?,
            Shape4::new(op.out_f, op.in_f, 1, 1),
        );
        // The head runs on the same MAC array as a 1x1 convolution over a
        // 1x1 spatial extent — faults apply here too.
        let g = ConvGeom::new(in_shape, op.out_f, 1, 1, 1, 0);
        let acc = if self.effective_exact()? {
            self.conv_exact(&input, &weights, &g)
        } else {
            let mut acc = conv::conv2d_i8(&input, &weights, &g, 1);
            self.cycle += (g.k.div_ceil(8) * g.input.c.div_ceil(8)) as u64;
            if self.csb.fi.any_active() {
                self.apply_fast_corrections(&mut acc, &input, &weights, &g);
            }
            acc
        };
        let logits: Vec<i32> = (0..op.out_f)
            .map(|o| acc.at(0, o, 0, 0).wrapping_add(op.bias[o]))
            .collect();
        self.dram.write_i32(op.output_addr, &logits)
    }
}
