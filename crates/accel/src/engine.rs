//! The execution engine: runs compiled plans on the modelled datapath.
//!
//! # Campaign-lifetime reuse
//!
//! A fault-injection campaign runs the *same* plan for every image of every
//! fault configuration, so all per-plan work is hoisted out of the
//! per-inference path:
//!
//! * the **weight arena** ([`WeightArena`]) unpacks every conv/linear
//!   layer's weights from the blocked DRAM surface format once, at
//!   [`Accelerator::load_plan`] time, and keeps them laid out as the dense
//!   `K x (C*R*S)` GEMM operand. Host-visible DRAM mutation
//!   ([`Accelerator::dma_write`], [`Accelerator::flip_dram_bit`]) that
//!   overlaps a cached weight region marks the entry dirty, and the next use
//!   re-unpacks from DRAM — so weight-memory SEU experiments observe exactly
//!   the same data a cold device would;
//! * the **scratch arena** ([`Scratch`]) owns every intermediate buffer the
//!   op executors need (DMA staging, unpacked activations, im2col columns,
//!   i32 accumulators, SDP output, packed surfaces). Buffers are resized per
//!   op but their capacity only grows, so steady-state inference performs
//!   zero heap allocation;
//! * [`Accelerator::run_batch_i8`] executes the fast path over an image
//!   mini-batch: one im2col + GEMM per layer with the mini-batch's columns
//!   side by side. Per-column independence of GEMM makes the batched result
//!   bit-identical to the per-image path; intermediate surfaces live in the
//!   scratch arena rather than DRAM (DRAM access counters therefore account
//!   weights once per arena fill, and intermediate traffic only on the
//!   per-image path).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use nvfi_obs::metrics::{self, Counter};

use nvfi_compiler::plan::{ConvOp, ExecutionPlan, LinearOp, PlanOp, PoolKind, PoolOp, RegWrite};
use nvfi_compiler::surface;
use nvfi_hwnum::{sat, I18};
use nvfi_quant::exec::sdp_postprocess;
use nvfi_tensor::{conv, gemm, im2col, pool, ConvGeom, Shape4, Tensor};

use crate::csb::CsbSpace;
use crate::dram::Dram;
use crate::error::AccelError;
use crate::fi::{FaultConfig, FaultInjectorBank};
use crate::perf::{self, AccelConfig, PerfReport};

/// How convolutions are evaluated functionally.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Every product goes through its injector mux; honours bit-granular
    /// faults and transient windows. Slow — ground truth.
    Exact,
    /// Clean GEMM plus per-faulted-lane algebraic corrections. Only valid
    /// for permanent full-lane overrides; errors otherwise (transient
    /// windows already at [`Accelerator::set_fault_window`] time).
    Fast,
    /// Resolve **per op**: `Fast` wherever the programmed faults allow it,
    /// `Exact` where they do not. Under a transient window only the ops
    /// whose MAC-cycle span intersects the window run exact — the
    /// fault-free prefix and the post-pulse suffix keep the fast path
    /// (op-scoped execution, bit-identical to all-exact).
    #[default]
    Auto,
}

/// How one plan op is evaluated — the per-op refinement of [`ExecMode`].
///
/// A transient fault window only touches the ops whose MAC-cycle span
/// intersects it, so everything outside the window runs the fast path with
/// **no** corrections (the injectors are provably inactive for every one of
/// those ops' cycles), and only the intersecting ops pay for the per-product
/// exact engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum OpPath {
    /// Clean register-tiled im2col + GEMM; no fault can observe this op.
    Fast,
    /// Fast plus per-faulted-lane algebraic corrections (permanent
    /// full-lane overrides).
    FastCorrected,
    /// Per-product exact engine with injection armed.
    Exact,
}

/// Process-wide count of golden-prefix captures
/// ([`Accelerator::run_prefix_i8_view`] calls), backed by the `nvfi_obs`
/// metrics registry under `golden_prefix_passes`. A test probe in the
/// spirit of `nvfi_quant::batch::quantization_passes`: a campaign must
/// capture the golden prefix of each image exactly once, however many
/// windowed work items later restore it.
fn golden_prefix_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("golden_prefix_passes"))
}

/// Process-wide count of golden restores
/// ([`Accelerator::run_suffix_i8_view`] calls) — the cheap half of the
/// golden-prefix protocol. Registry name: `golden_restores`.
fn golden_restore_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("golden_restores"))
}

/// Per-op path-decision counters (`engine_path_fast`,
/// `engine_path_fast_corrected`, `engine_path_exact`): how often the
/// engine took each [`OpPath`]. The fast/exact split is the whole point
/// of the windowed-execution optimization, so the registry exposes it.
fn path_counter(path: OpPath) -> &'static Counter {
    static FAST: OnceLock<Counter> = OnceLock::new();
    static CORRECTED: OnceLock<Counter> = OnceLock::new();
    static EXACT: OnceLock<Counter> = OnceLock::new();
    match path {
        OpPath::Fast => FAST.get_or_init(|| metrics::counter("engine_path_fast")),
        OpPath::FastCorrected => {
            CORRECTED.get_or_init(|| metrics::counter("engine_path_fast_corrected"))
        }
        OpPath::Exact => EXACT.get_or_init(|| metrics::counter("engine_path_exact")),
    }
}

/// Reads the process-wide golden-prefix capture counter (test probe).
#[must_use]
pub fn golden_prefix_passes() -> u64 {
    golden_prefix_counter().get()
}

/// Reads the process-wide golden-restore counter (test probe).
#[must_use]
pub fn golden_restores() -> u64 {
    golden_restore_counter().get()
}

/// What happens on multiplier lanes whose channel index exceeds the layer's
/// channel count (partial channel blocks).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum IdleLanePolicy {
    /// Idle lanes multiply zeros — their (overridable!) products still enter
    /// the adder tree, as in CMAC's zero-padded atomic ops. Default.
    #[default]
    ZeroFed,
    /// Idle lanes are clock-gated: no product, faults have no effect there.
    Gated,
}

/// Result of one inference.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Raw i32 logits read back from DRAM.
    pub logits: Vec<i32>,
    /// Argmax class.
    pub class: u8,
    /// Cycle/latency model output for this inference.
    pub perf: PerfReport,
}

/// One cached weight region: the DRAM backing range plus the unpacked
/// `(K, C, R, S)` tensor (whose dense buffer is also the row-major
/// `K x (C*R*S)` GEMM operand).
#[derive(Clone, Debug)]
struct WeightEntry {
    addr: u64,
    bytes: u64,
    shape: Shape4,
    weights: Tensor<i8>,
    /// DRAM under this entry changed since the last unpack.
    dirty: bool,
}

/// Plan-lifetime cache of unpacked weights, indexed by plan-op position.
#[derive(Clone, Debug, Default)]
struct WeightArena {
    entries: Vec<WeightEntry>,
    /// `by_op[i]` is the entry index of plan op `i`, if it has weights.
    by_op: Vec<Option<usize>>,
}

impl WeightArena {
    fn clear(&mut self) {
        self.entries.clear();
        self.by_op.clear();
    }

    /// Marks every entry overlapping `[addr, addr + len)` dirty.
    fn invalidate_overlap(&mut self, addr: u64, len: u64) {
        for e in &mut self.entries {
            if addr < e.addr.saturating_add(e.bytes) && e.addr < addr.saturating_add(len) {
                e.dirty = true;
            }
        }
    }
}

/// Reusable intermediate buffers of the op executors. Every field is
/// resized per use; capacities persist, so the steady state allocates
/// nothing.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// DMA staging for surface reads and arena refills.
    dma: Vec<i8>,
    /// Unpacked (dense CHW) input of the current op.
    input: Vec<i8>,
    /// im2col column matrix.
    cols: Vec<i8>,
    /// i32 accumulators of the current op.
    acc: Vec<i32>,
    /// Dense CHW output of the current op (pre-packing).
    out: Vec<i8>,
    /// DMA staging for the residual surface.
    res_raw: Vec<i8>,
    /// Unpacked residual input.
    res: Vec<i8>,
    /// Packed output surface to write back.
    packed: Vec<i8>,
    /// Logit staging for the linear head.
    logits: Vec<i32>,
    /// Quantized-input staging of the f32 convenience wrappers.
    qinput: Vec<i8>,
    /// Batched intermediate surfaces (dense CHW, batch-major), by address.
    batch_surfaces: HashMap<u64, Vec<i8>>,
}

/// The emulated accelerator device.
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: AccelConfig,
    csb: CsbSpace,
    dram: Dram,
    plan: Option<Arc<ExecutionPlan>>,
    /// Functional MAC-array cycle counter (atomic ops retired); used to gate
    /// transient fault windows in exact mode.
    cycle: u64,
    arena: WeightArena,
    scratch: Scratch,
    /// Cycle-model report of the loaded plan (fault-independent, so it is
    /// computed once per plan and cloned per inference).
    perf_template: Option<PerfReport>,
    /// Per-op MAC-cycle spans of the loaded plan
    /// ([`ExecutionPlan::mac_cycle_spans`], computed once per plan) — the
    /// schedule table op-scoped exact execution consults per op.
    spans: Vec<Range<u64>>,
}

impl Accelerator {
    /// Creates a device with the given configuration.
    #[must_use]
    pub fn new(config: AccelConfig) -> Self {
        Accelerator {
            config,
            csb: CsbSpace::new(),
            dram: Dram::new(config.dram_capacity),
            plan: None,
            cycle: 0,
            arena: WeightArena::default(),
            scratch: Scratch::default(),
            perf_template: None,
            spans: Vec::new(),
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// CSB register write (AXI4-Lite).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn csb_write(&mut self, addr: u32, value: u32) -> Result<(), AccelError> {
        self.csb.write(addr, value)
    }

    /// CSB register read (AXI4-Lite).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn csb_read(&self, addr: u32) -> Result<u32, AccelError> {
        self.csb.read(addr)
    }

    /// Host DMA into DRAM. Invalidates any weight-arena entry whose backing
    /// region overlaps the written range.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn dma_write(&mut self, addr: u64, bytes: &[i8]) -> Result<(), AccelError> {
        self.dram.write_i8(addr, bytes)?;
        self.arena.invalidate_overlap(addr, bytes.len() as u64);
        Ok(())
    }

    /// Host DMA out of DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn dma_read(&mut self, addr: u64, len: u64) -> Result<Vec<i8>, AccelError> {
        self.dram.read_i8(addr, len)
    }

    /// Flips one bit of DRAM — a memory single-event upset (SEU). Pointing
    /// this at a weight region emulates weight-memory faults, complementing
    /// the datapath injectors (part of the paper's "study the impact of
    /// introducing various FT mechanisms" future-work agenda). A flip that
    /// lands in a cached weight region invalidates the arena entry, so the
    /// next inference re-reads the faulted bytes exactly as a cold device
    /// would.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] if `addr` is outside DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_dram_bit(&mut self, addr: u64, bit: u8) -> Result<(), AccelError> {
        assert!(bit < 8, "bit index {bit} out of a byte");
        let byte = self.dram.read_i8(addr, 1)?[0];
        self.dram.write_i8(addr, &[byte ^ (1 << bit)])?;
        self.arena.invalidate_overlap(addr, 1);
        Ok(())
    }

    /// Exports the loaded plan's weight regions as a DRAM image: one
    /// `(addr, bytes)` record per conv/linear weight region, read from the
    /// device's **current** DRAM contents — so a weight-memory SEU injected
    /// with [`Accelerator::flip_dram_bit`] travels with the image. This is
    /// what a distributed campaign ships to remote workers once per session
    /// (the `nvfi-dist` coordinator), the software analogue of DMA-ing the
    /// programmed bitstream's weight memory to another board.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] if no plan is loaded; propagates DRAM
    /// errors.
    pub fn export_weight_image(&mut self) -> Result<Vec<(u64, Vec<i8>)>, AccelError> {
        if self.plan.is_none() {
            return Err(AccelError::NoPlan);
        }
        let regions: Vec<(u64, u64)> = self
            .arena
            .entries
            .iter()
            .map(|e| (e.addr, e.bytes))
            .collect();
        let mut out = Vec::with_capacity(regions.len());
        for (addr, bytes) in regions {
            out.push((addr, self.dram.read_i8(addr, bytes)?));
        }
        Ok(out)
    }

    /// Imports a weight image exported by [`Accelerator::export_weight_image`]
    /// (or carried by [`ExecutionPlan::weight_image`]): DMA-writes every
    /// region, invalidating overlapping weight-arena entries so the next
    /// inference unpacks the imported bytes exactly as a cold device would.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] if a region does not fit.
    pub fn import_weight_image(&mut self, regions: &[(u64, Vec<i8>)]) -> Result<(), AccelError> {
        for (addr, bytes) in regions {
            self.dma_write(*addr, bytes)?;
        }
        Ok(())
    }

    /// Loads a compiled plan: validates it against the DRAM capacity,
    /// preloads the packed weight regions and builds the weight arena.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadPlan`] if the plan does not fit.
    pub fn load_plan(&mut self, plan: &ExecutionPlan) -> Result<(), AccelError> {
        if plan.dram_size > self.config.dram_capacity {
            return Err(AccelError::BadPlan(format!(
                "plan needs {} bytes, device has {}",
                plan.dram_size, self.config.dram_capacity
            )));
        }
        for (addr, bytes) in &plan.weight_image {
            self.dram.write_i8(*addr, bytes)?;
        }
        self.install_plan(Arc::new(plan.clone()))
    }

    /// Loads a plan that was streamed into the command FIFO as register
    /// writes (see [`nvfi_compiler::plan::encode_reg_stream`]). Weights must
    /// be DMA'd separately, exactly as a real driver would; the arena
    /// entries built here start dirty-on-write, so weight DMA arriving after
    /// the commit is picked up on first use.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadPlan`] if the FIFO contents do not decode.
    pub fn commit_cmd_fifo(&mut self) -> Result<(), AccelError> {
        let plan = nvfi_compiler::plan::decode_words(&self.csb.cmd_fifo)
            .map_err(|e| AccelError::BadPlan(e.to_string()))?;
        if plan.dram_size > self.config.dram_capacity {
            return Err(AccelError::BadPlan("plan exceeds dram".into()));
        }
        self.install_plan(Arc::new(plan))
    }

    /// Shared tail of the two plan loaders: resets the run state and builds
    /// the weight arena from the plan's current DRAM contents.
    fn install_plan(&mut self, plan: Arc<ExecutionPlan>) -> Result<(), AccelError> {
        // A window programmed before the plan (or valid for a previous
        // plan) must be re-validated against this plan's schedule, or a
        // stale past-the-end window would silently disarm every injection.
        if let Some(w) = &self.csb.fi.window {
            Self::validate_window(w, plan.total_mac_cycles())?;
        }
        self.cycle = 0;
        self.perf_template = Some(perf::plan_report(&plan, self.config.clock_hz));
        self.spans = plan.mac_cycle_spans();
        self.arena.clear();
        self.arena.by_op = vec![None; plan.ops.len()];
        for (i, op) in plan.ops.iter().enumerate() {
            let (addr, shape) = match op {
                PlanOp::Conv(c) => (c.weight_addr, c.geom.weight_shape()),
                PlanOp::Linear(l) => (l.weight_addr, Shape4::new(l.out_f, l.in_f, 1, 1)),
                PlanOp::Pool(_) => continue,
            };
            let bytes = surface::weight_bytes(shape.n, shape.c, shape.h, shape.w) as u64;
            self.arena.by_op[i] = Some(self.arena.entries.len());
            self.arena.entries.push(WeightEntry {
                addr,
                bytes,
                shape,
                weights: Tensor::zeros(shape),
                dirty: true,
            });
        }
        self.plan = Some(plan);
        // Eager unpack so campaign steady state starts warm.
        for i in 0..self.arena.by_op.len() {
            self.refresh_weights(i)?;
        }
        Ok(())
    }

    /// Re-unpacks the weights of plan op `op_idx` from DRAM if the cached
    /// copy is stale (or was never filled).
    fn refresh_weights(&mut self, op_idx: usize) -> Result<(), AccelError> {
        let Some(Some(ei)) = self.arena.by_op.get(op_idx).copied() else {
            return Ok(());
        };
        if !self.arena.entries[ei].dirty {
            return Ok(());
        }
        let (addr, bytes, shape) = {
            let e = &self.arena.entries[ei];
            (e.addr, e.bytes, e.shape)
        };
        self.dram.read_i8_into(addr, bytes, &mut self.scratch.dma)?;
        let e = &mut self.arena.entries[ei];
        surface::unpack_weights_into(&self.scratch.dma, shape, e.weights.as_mut_slice());
        e.dirty = false;
        Ok(())
    }

    /// Applies the register writes of `stream` (FI programming, command
    /// FIFO, ...) in order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing write.
    pub fn apply_reg_stream(&mut self, stream: &[RegWrite]) -> Result<(), AccelError> {
        for w in stream {
            self.csb_write(w.addr, w.value)?;
        }
        Ok(())
    }

    /// Programs a fault configuration through the CSB registers.
    pub fn inject(&mut self, fault: &FaultConfig) {
        self.inject_writes(&fault.reg_writes());
    }

    /// Programs a fault from an already-encoded register stream.
    ///
    /// [`FaultConfig::reg_writes`] allocates the stream; when the same fault
    /// is re-injected across every member of a device pool, encoding it once
    /// and replaying the writes per device keeps re-injection allocation-free.
    pub fn inject_writes(&mut self, writes: &[RegWrite]) {
        for w in writes {
            self.csb
                .write(w.addr, w.value)
                .expect("FI registers are mapped");
        }
    }

    /// Disables all fault injection.
    pub fn clear_faults(&mut self) {
        self.csb.fi = FaultInjectorBank::new();
    }

    /// Restricts injection to a cycle window (a transient / "pulse" fault).
    /// Windows need the per-product exact engine, but only for the ops whose
    /// MAC-cycle span intersects the window: under [`ExecMode::Auto`] the
    /// fault-free prefix and the post-pulse suffix keep the fast
    /// register-tiled path (op-scoped execution); [`ExecMode::Exact`] runs
    /// everything exact.
    ///
    /// Cycle numbering restarts at every launched inference (see
    /// [`Accelerator::mac_cycles_retired`]), so the window describes a pulse
    /// relative to inference start: every image of a campaign experiences
    /// the same transient, regardless of which device of a pool — or which
    /// position in a mini-batch — it lands on.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::FastPathUnsupported`] for a non-`None` window
    /// under [`ExecMode::Fast`] (the fast path cannot arm injection for the
    /// intersecting ops — previously this surfaced only at inference time,
    /// deep in the engine), and [`AccelError::BadPlan`] if a plan is loaded
    /// and the window cannot overlap any retired MAC cycle (`1..=total`):
    /// such a "pulse" would silently run a fault-free campaign at exact-mode
    /// cost.
    pub fn set_fault_window(&mut self, window: Option<Range<u64>>) -> Result<(), AccelError> {
        if let Some(w) = &window {
            self.validate_fault_window(w)?;
        }
        self.csb.fi.window = window;
        Ok(())
    }

    /// Read-only validation of a prospective transient window: everything
    /// [`Accelerator::set_fault_window`] checks (execution-mode conflict,
    /// plan-schedule overlap when a plan is loaded) without mutating the
    /// device — for callers that want to surface window errors up front.
    ///
    /// # Errors
    ///
    /// Same contract as [`Accelerator::set_fault_window`].
    pub fn validate_fault_window(&self, window: &Range<u64>) -> Result<(), AccelError> {
        if self.config.mode == ExecMode::Fast {
            return Err(AccelError::FastPathUnsupported);
        }
        if let Some(plan) = &self.plan {
            Self::validate_window(window, plan.total_mac_cycles())?;
        }
        Ok(())
    }

    /// Rejects a transient window that cannot overlap any retired MAC cycle
    /// (`1..=total`) of a plan. Shared by [`Accelerator::set_fault_window`]
    /// and the plan loaders (a window programmed before — or across — plan
    /// loads is re-validated at install time).
    fn validate_window(w: &Range<u64>, total: u64) -> Result<(), AccelError> {
        if w.start >= w.end || w.end <= 1 || w.start > total {
            return Err(AccelError::BadPlan(format!(
                "transient fault window {}..{} cannot overlap any MAC \
                 cycle of this plan (the per-inference counter retires \
                 cycles 1..={total}); the campaign would be a \
                 fault-free no-op",
                w.start, w.end
            )));
        }
        Ok(())
    }

    /// The per-inference MAC-cycle span `[start, end)` of every plan op, in
    /// retired-counter numbering (see [`ExecutionPlan::mac_cycle_spans`]).
    /// Empty without a loaded plan.
    #[must_use]
    pub fn mac_cycle_spans(&self) -> &[Range<u64>] {
        &self.spans
    }

    /// Total MAC cycles one inference of the loaded plan retires.
    #[must_use]
    pub fn total_mac_cycles(&self) -> Option<u64> {
        self.plan.as_ref().map(|p| p.total_mac_cycles())
    }

    /// Index of the first plan op whose MAC-cycle span intersects `window`
    /// — the earliest op that can observe a transient fault in that window.
    /// `None` without a plan or when the window misses every op.
    #[must_use]
    pub fn first_op_in_window(&self, window: &Range<u64>) -> Option<usize> {
        self.spans.iter().position(|s| span_intersects(s, window))
    }

    /// MAC cycles retired by ops `0..boundary` — the value the cycle counter
    /// holds when op `boundary` starts, which a golden restore
    /// ([`Accelerator::run_suffix_i8_view`]) must re-seed.
    ///
    /// # Panics
    ///
    /// Panics if `boundary > ops.len()` of the loaded plan (or none is).
    #[must_use]
    pub fn prefix_mac_cycles(&self, boundary: usize) -> u64 {
        if boundary == self.spans.len() {
            return self.spans.last().map_or(0, |s| s.end - 1);
        }
        self.spans[boundary].start - 1
    }

    /// The functional MAC-array cycle counter: atomic ops retired by the
    /// most recent inference launch ([`Accelerator::run_inference_i8`] run,
    /// or one [`Accelerator::run_batch_i8`] fast-path batch). The counter
    /// restarts at each launch so transient fault windows are
    /// per-inference-deterministic.
    #[must_use]
    pub fn mac_cycles_retired(&self) -> u64 {
        self.cycle
    }

    /// Quantizes, runs and classifies one f32 image (shape `(1, C, H, W)`).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] if `image` is not exactly one plan-shaped
    /// image, or any engine error.
    pub fn run_inference(&mut self, image: &Tensor<f32>) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let s = image.shape();
        if s.n != 1 || s != plan.input_shape.with_n(1) {
            return Err(AccelError::BadPlan(format!(
                "input {s} does not match plan input {} (single image)",
                plan.input_shape
            )));
        }
        let scale = plan.input_scale;
        let mut qimg = std::mem::take(&mut self.scratch.qinput);
        nvfi_quant::batch::quantize_slice_into(image.as_slice(), scale, &mut qimg);
        let result = self.run_inference_i8_view(&qimg);
        self.scratch.qinput = qimg;
        result
    }

    /// Runs one pre-quantized i8 image.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] if `image` is not exactly one plan-shaped
    /// image (multi-image batches go through
    /// [`Accelerator::run_batch_i8`]), or any engine error.
    pub fn run_inference_i8(&mut self, image: &Tensor<i8>) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let s = image.shape();
        if s.n != 1 || s != plan.input_shape.with_n(1) {
            return Err(AccelError::BadPlan(format!(
                "input {s} does not match plan input {} (single image)",
                plan.input_shape
            )));
        }
        self.run_inference_i8_view(image.image(0))
    }

    /// Runs one pre-quantized i8 image borrowed as a dense CHW slice — the
    /// zero-copy entry point device pools drive with sub-views of a
    /// campaign-lifetime quantized evaluation set.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] if `image.len()` is not exactly one plan
    /// input image, or any engine error.
    pub fn run_inference_i8_view(&mut self, image: &[i8]) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.clone().ok_or(AccelError::NoPlan)?;
        // Per-inference cycle numbering: transient windows gate on cycles
        // since *this* launch, not since plan load.
        self.cycle = 0;
        self.write_input_surface(&plan, image)?;
        self.exec_ops(&plan, 0, plan.ops.len())?;
        self.read_result(&plan)
    }

    /// Runs only the plan's prefix `ops[0..boundary]` on one pre-quantized
    /// i8 image, leaving DRAM in exactly the state a full run would have at
    /// that op boundary (and the cycle counter at the prefix's retired
    /// count). This is the **capture** half of the golden-prefix protocol: a
    /// campaign runs it fault-free once per image, snapshots the boundary's
    /// live-in surfaces (see `ExecutionPlan::live_in_surfaces`) and replays
    /// them into [`Accelerator::run_suffix_i8_view`] for every windowed work
    /// item. Counted by the process-wide [`golden_prefix_passes`] probe.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] on a shape mismatch or `boundary` outside the
    /// plan, or any engine error.
    pub fn run_prefix_i8_view(&mut self, image: &[i8], boundary: usize) -> Result<(), AccelError> {
        let plan = self.plan.clone().ok_or(AccelError::NoPlan)?;
        if boundary > plan.ops.len() {
            return Err(AccelError::BadPlan(format!(
                "prefix boundary {boundary} outside the {}-op plan",
                plan.ops.len()
            )));
        }
        self.cycle = 0;
        self.write_input_surface(&plan, image)?;
        self.exec_ops(&plan, 0, boundary)?;
        golden_prefix_counter().inc();
        Ok(())
    }

    /// Runs the plan's suffix `ops[boundary..]` from a restored golden
    /// prefix: `surfaces` names the boundary's live-in `(addr, bytes)`
    /// regions and `data` holds their bytes back to back, exactly as
    /// captured after [`Accelerator::run_prefix_i8_view`]. The cycle counter
    /// is re-seeded with the prefix's retired count, so transient fault
    /// windows observe the same absolute cycle numbers as a full run —
    /// results are bit-identical to [`Accelerator::run_inference_i8_view`]
    /// of the same image (property-tested in `tests/equivalence.rs`).
    /// Counted by the process-wide [`golden_restores`] probe.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] if `boundary` is outside the plan or `data`
    /// does not match `surfaces`, or any engine error.
    pub fn run_suffix_i8_view(
        &mut self,
        boundary: usize,
        surfaces: &[(u64, u64)],
        data: &[i8],
    ) -> Result<InferenceResult, AccelError> {
        let plan = self.plan.clone().ok_or(AccelError::NoPlan)?;
        if boundary > plan.ops.len() {
            return Err(AccelError::BadPlan(format!(
                "suffix boundary {boundary} outside the {}-op plan",
                plan.ops.len()
            )));
        }
        let need: u64 = surfaces.iter().map(|(_, b)| b).sum();
        if need != data.len() as u64 {
            return Err(AccelError::BadPlan(format!(
                "golden restore of {} bytes against a {}-byte live-in set",
                data.len(),
                need
            )));
        }
        let mut off = 0usize;
        for &(addr, bytes) in surfaces {
            let bytes = bytes as usize;
            self.dram.write_i8(addr, &data[off..off + bytes])?;
            // Activation surfaces never alias weight regions by allocator
            // construction, but keep the DRAM-mutation contract anyway.
            self.arena.invalidate_overlap(addr, bytes as u64);
            off += bytes;
        }
        self.cycle = self.prefix_mac_cycles(boundary);
        self.exec_ops(&plan, boundary, plan.ops.len())?;
        golden_restore_counter().inc();
        self.read_result(&plan)
    }

    /// Packs one dense-CHW i8 image into the plan's input surface.
    fn write_input_surface(
        &mut self,
        plan: &ExecutionPlan,
        image: &[i8],
    ) -> Result<(), AccelError> {
        let in_shape = plan.input_shape.with_n(1);
        if image.len() != in_shape.image_len() {
            return Err(AccelError::BadPlan(format!(
                "input of {} pixels does not match plan input {} ({} pixels)",
                image.len(),
                plan.input_shape,
                in_shape.image_len()
            )));
        }
        self.scratch.packed.resize(
            surface::surface_bytes(in_shape.c, in_shape.h, in_shape.w),
            0,
        );
        surface::pack_surface_into(image, in_shape, &mut self.scratch.packed);
        let packed = std::mem::take(&mut self.scratch.packed);
        self.dram.write_i8(plan.input_addr, &packed)?;
        self.scratch.packed = packed;
        Ok(())
    }

    /// Executes plan ops `[from, to)` on the per-image path.
    fn exec_ops(&mut self, plan: &ExecutionPlan, from: usize, to: usize) -> Result<(), AccelError> {
        for (i, op) in plan.ops.iter().enumerate().take(to).skip(from) {
            match op {
                PlanOp::Conv(c) => self.exec_conv(i, c)?,
                PlanOp::Pool(p) => self.exec_pool(p)?,
                PlanOp::Linear(l) => self.exec_linear(i, l)?,
            }
        }
        Ok(())
    }

    /// Reads the logits back and assembles an [`InferenceResult`].
    fn read_result(&mut self, plan: &ExecutionPlan) -> Result<InferenceResult, AccelError> {
        let logits = self.dram.read_i32(plan.output_addr, plan.num_classes)?;
        let class = nvfi_quant::exec::argmax(&logits);
        Ok(InferenceResult {
            logits,
            class,
            perf: self.perf_report(),
        })
    }

    fn perf_report(&self) -> PerfReport {
        self.perf_template.clone().expect("plan loaded")
    }

    /// Runs a mini-batch of pre-quantized i8 images.
    ///
    /// On the fast path this executes each layer once for the whole batch —
    /// the images' im2col columns sit side by side in one GEMM — with
    /// intermediate surfaces held in the scratch arena instead of DRAM. The
    /// result is bit-identical to running [`Accelerator::run_inference_i8`]
    /// per image (GEMM output columns are independent). Whenever the exact
    /// engine is required (bit-granular faults, transient windows, exact
    /// mode), the batch transparently degrades to the per-image path.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan, or any engine
    /// error.
    pub fn run_batch_i8(
        &mut self,
        images: &Tensor<i8>,
    ) -> Result<Vec<InferenceResult>, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let bs = images.shape();
        if bs.n > 0 && bs.with_n(1) != plan.input_shape.with_n(1) {
            return Err(AccelError::BadPlan(format!(
                "input {bs} does not match plan input {}",
                plan.input_shape
            )));
        }
        self.run_batch_i8_view(images.as_slice())
    }

    /// Runs a mini-batch of pre-quantized i8 images borrowed as dense,
    /// back-to-back CHW slices — [`Accelerator::run_batch_i8`] without the
    /// owning [`Tensor`]: device pools point this at sub-views of a
    /// campaign-lifetime quantized evaluation set, so the per-call cost is
    /// zero copies and zero quantization.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::NoPlan`] without a loaded plan,
    /// [`AccelError::BadPlan`] if `images.len()` is not a whole number of
    /// plan input images, or any engine error.
    pub fn run_batch_i8_view(&mut self, images: &[i8]) -> Result<Vec<InferenceResult>, AccelError> {
        let plan = self.plan.clone().ok_or(AccelError::NoPlan)?;
        let image_len = plan.input_shape.with_n(1).image_len();
        if !images.len().is_multiple_of(image_len) {
            return Err(AccelError::BadPlan(format!(
                "batch of {} pixels is not a whole number of plan input images \
                 ({} pixels each)",
                images.len(),
                image_len
            )));
        }
        let b_n = images.len() / image_len;
        if b_n == 0 {
            return Ok(Vec::new());
        }
        if b_n == 1 || self.effective_exact()? {
            let mut out = Vec::with_capacity(b_n);
            for n in 0..b_n {
                out.push(self.run_inference_i8_view(&images[n * image_len..(n + 1) * image_len])?);
            }
            return Ok(out);
        }
        self.cycle = 0;
        // Seed the surface map with the (already dense NCHW) input batch.
        let input_buf = self
            .scratch
            .batch_surfaces
            .entry(plan.input_addr)
            .or_default();
        input_buf.clear();
        input_buf.extend_from_slice(images);
        let mut logits_per_image: Vec<Vec<i32>> = Vec::new();
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PlanOp::Conv(c) => self.exec_conv_batch(i, c, b_n)?,
                PlanOp::Pool(p) => self.exec_pool_batch(p, b_n),
                PlanOp::Linear(l) => {
                    logits_per_image = self.exec_linear_batch(i, l, b_n)?;
                }
            }
        }
        if logits_per_image.len() != b_n {
            return Err(AccelError::BadPlan("plan has no linear head".into()));
        }
        // DRAM parity for the last image's logits (per-image runs leave the
        // most recent inference's logits at the output address).
        if let Some(last) = logits_per_image.last() {
            self.dram.write_i32(plan.output_addr, last)?;
        }
        Ok(logits_per_image
            .into_iter()
            .map(|logits| {
                let class = nvfi_quant::exec::argmax(&logits);
                InferenceResult {
                    logits,
                    class,
                    perf: self.perf_report(),
                }
            })
            .collect())
    }

    /// Classifies a batch of f32 images: one quantization pass over the
    /// whole batch, then [`Accelerator::classify_batch_i8`]. A thin
    /// quantize-then-delegate wrapper — quantization is elementwise, so the
    /// predictions are bit-identical to quantizing per mini-batch (or per
    /// image).
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    pub fn classify_batch(&mut self, images: &Tensor<f32>) -> Result<Vec<u8>, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let s = images.shape();
        if s.n > 0 && s.with_n(1) != plan.input_shape.with_n(1) {
            return Err(AccelError::BadPlan(format!(
                "input {s} does not match plan input {}",
                plan.input_shape
            )));
        }
        let scale = plan.input_scale;
        let mut qbatch = std::mem::take(&mut self.scratch.qinput);
        nvfi_quant::batch::quantize_slice_into(images.as_slice(), scale, &mut qbatch);
        let result = self.classify_batch_i8(&qbatch);
        self.scratch.qinput = qbatch;
        result
    }

    /// Classifies a batch of pre-quantized i8 images borrowed as dense,
    /// back-to-back CHW slices, running the fast path over mini-batches of
    /// [`AccelConfig::batch`] images. Each mini-batch is a borrowed sub-view
    /// — no per-call copy and no quantization, which is what lets a
    /// fault-injection campaign quantize its evaluation set exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadPlan`] if `images.len()` is not a whole
    /// number of plan input images; propagates the first engine error.
    pub fn classify_batch_i8(&mut self, images: &[i8]) -> Result<Vec<u8>, AccelError> {
        let plan = self.plan.as_ref().ok_or(AccelError::NoPlan)?;
        let image_len = plan.input_shape.with_n(1).image_len();
        if !images.len().is_multiple_of(image_len) {
            return Err(AccelError::BadPlan(format!(
                "batch of {} pixels is not a whole number of plan input images \
                 ({} pixels each)",
                images.len(),
                image_len
            )));
        }
        let n = images.len() / image_len;
        let batch = self.config.batch.max(1);
        let mut out = Vec::with_capacity(n);
        let mut n0 = 0;
        while n0 < n {
            let nn = (n0 + batch).min(n);
            for r in self.run_batch_i8_view(&images[n0 * image_len..nn * image_len])? {
                out.push(r.class);
            }
            n0 = nn;
        }
        Ok(out)
    }

    /// Top-1 accuracy over a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.shape().n`.
    pub fn accuracy(&mut self, images: &Tensor<f32>, labels: &[u8]) -> Result<f64, AccelError> {
        assert_eq!(images.shape().n, labels.len());
        if labels.is_empty() {
            return Ok(0.0);
        }
        let preds = self.classify_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    // -- internal op execution ---------------------------------------------

    /// Whether any op of the next inference may need the per-image exact
    /// engine — the batch-level decision that drops
    /// [`Accelerator::run_batch_i8_view`] to the per-image path, where
    /// [`Accelerator::op_path`] refines the choice per op.
    fn effective_exact(&self) -> Result<bool, AccelError> {
        let fi = &self.csb.fi;
        let needs_exact = fi.any_active() && (!fi.is_full_override() || fi.window.is_some());
        match self.config.mode {
            ExecMode::Exact => Ok(true),
            ExecMode::Fast => {
                if needs_exact {
                    Err(AccelError::FastPathUnsupported)
                } else {
                    Ok(false)
                }
            }
            ExecMode::Auto => Ok(needs_exact),
        }
    }

    /// The execution path of plan op `op_idx` under the current fault
    /// programming — op-scoped exact execution:
    ///
    /// * no active fault → [`OpPath::Fast`];
    /// * permanent full-lane override → [`OpPath::FastCorrected`]
    ///   (algebraic corrections, no exact engine anywhere);
    /// * permanent bit-granular fault → [`OpPath::Exact`] for every op
    ///   (full-inference exact, as before);
    /// * transient window → [`OpPath::Exact`] only for ops whose MAC-cycle
    ///   span intersects the window; every other op — the golden prefix and
    ///   the tainted suffix — runs [`OpPath::Fast`] with **no** corrections,
    ///   because the injectors are inactive for all of its cycles.
    ///
    /// [`ExecMode::Exact`] forces everything exact; [`ExecMode::Fast`]
    /// errors whenever the exact engine would be needed.
    fn op_path(&self, op_idx: usize) -> Result<OpPath, AccelError> {
        // Count every decision in the registry (`engine_path_*`).
        fn counted(path: OpPath) -> Result<OpPath, AccelError> {
            path_counter(path).inc();
            Ok(path)
        }
        if self.config.mode == ExecMode::Exact {
            return counted(OpPath::Exact);
        }
        let fi = &self.csb.fi;
        if !fi.any_active() {
            return counted(OpPath::Fast);
        }
        let needs_exact = match &fi.window {
            Some(w) => span_intersects(&self.spans[op_idx], w),
            None => !fi.is_full_override(),
        };
        if needs_exact {
            if self.config.mode == ExecMode::Fast {
                return Err(AccelError::FastPathUnsupported);
            }
            return counted(OpPath::Exact);
        }
        if fi.window.is_some() {
            // Windowed fault missing this op entirely: plain fast, no
            // corrections — the mux output equals the product for every
            // cycle of this op's span.
            return counted(OpPath::Fast);
        }
        counted(OpPath::FastCorrected)
    }

    /// Atomic-op (MAC-array cycle) count of plan op `op_idx`, read from the
    /// cached schedule table — the *same* numbers the exact engine retires
    /// one by one, so fast-path bulk bumps and exact per-product counting
    /// can never drift apart.
    fn op_mac_cycles(&self, op_idx: usize) -> u64 {
        let s = &self.spans[op_idx];
        s.end - s.start
    }

    fn exec_conv(&mut self, op_idx: usize, op: &ConvOp) -> Result<(), AccelError> {
        let path = self.op_path(op_idx)?;
        let op_cycles = self.op_mac_cycles(op_idx);
        self.refresh_weights(op_idx)?;
        let g = op.geom;
        let in_shape = g.input.with_n(1);
        let in_bytes = surface::surface_bytes(g.input.c, g.input.h, g.input.w) as u64;
        self.dram
            .read_i8_into(op.input_addr, in_bytes, &mut self.scratch.dma)?;
        self.scratch.input.resize(in_shape.image_len(), 0);
        surface::unpack_surface_into(&self.scratch.dma, in_shape, &mut self.scratch.input);
        // Residual surface, if fused.
        let out_shape = Shape4::new(1, g.k, g.oh, g.ow);
        let residual = match op.fuse_add_addr {
            Some(addr) => {
                let bytes = surface::surface_bytes(g.k, g.oh, g.ow) as u64;
                self.dram
                    .read_i8_into(addr, bytes, &mut self.scratch.res_raw)?;
                self.scratch.res.resize(out_shape.image_len(), 0);
                surface::unpack_surface_into(
                    &self.scratch.res_raw,
                    out_shape,
                    &mut self.scratch.res,
                );
                true
            }
            None => false,
        };
        // Accumulate.
        let this = &mut *self;
        let fi = &this.csb.fi;
        let gated = this.config.idle_lanes == IdleLanePolicy::Gated;
        let weights =
            &this.arena.entries[this.arena.by_op[op_idx].expect("conv has weights")].weights;
        let scratch = &mut this.scratch;
        scratch.acc.resize(g.k * g.oh * g.ow, 0);
        if path == OpPath::Exact {
            scratch.acc.fill(0);
            conv_exact_into(
                fi,
                gated,
                &mut this.cycle,
                &scratch.input,
                weights,
                &g,
                &mut scratch.acc,
            );
        } else {
            conv::conv2d_i8_into(
                &scratch.input,
                weights.as_slice(),
                &g,
                &mut scratch.cols,
                &mut scratch.acc,
                1,
            );
            this.cycle += op_cycles;
            if path == OpPath::FastCorrected {
                apply_fast_corrections_into(
                    fi,
                    gated,
                    &scratch.input,
                    weights,
                    &g,
                    &mut scratch.acc,
                    g.oh * g.ow,
                    0,
                );
            }
        }
        // SDP: bias, requant, optional residual add, relu, saturate.
        scratch.out.resize(out_shape.image_len(), 0);
        sdp_into(
            op,
            &g,
            &scratch.acc,
            g.oh * g.ow,
            0,
            residual.then_some(&scratch.res[..]),
            &mut scratch.out,
        );
        scratch
            .packed
            .resize(surface::surface_bytes(g.k, g.oh, g.ow), 0);
        surface::pack_surface_into(&scratch.out, out_shape, &mut scratch.packed);
        let packed = std::mem::take(&mut this.scratch.packed);
        this.dram.write_i8(op.output_addr, &packed)?;
        this.scratch.packed = packed;
        Ok(())
    }

    /// Batched fast-path convolution: surfaces come from and go to the
    /// scratch surface map; one GEMM covers the whole mini-batch.
    fn exec_conv_batch(
        &mut self,
        op_idx: usize,
        op: &ConvOp,
        b_n: usize,
    ) -> Result<(), AccelError> {
        let op_cycles = self.op_mac_cycles(op_idx);
        self.refresh_weights(op_idx)?;
        let g = op.geom;
        let in_len = g.input.image_len();
        let out_shape = Shape4::new(1, g.k, g.oh, g.ow);
        let out_len = out_shape.image_len();
        let n_cols = g.oh * g.ow;
        let wide_n = b_n * n_cols;
        let crs = g.input.c * g.r * g.s;

        let this = &mut *self;
        let fi = &this.csb.fi;
        let gated = this.config.idle_lanes == IdleLanePolicy::Gated;
        let weights =
            &this.arena.entries[this.arena.by_op[op_idx].expect("conv has weights")].weights;
        let scratch = &mut this.scratch;
        let input = scratch
            .batch_surfaces
            .remove(&op.input_addr)
            .expect("batched conv input surface computed");
        assert_eq!(input.len(), b_n * in_len, "batched input length mismatch");
        // im2col the whole batch side by side, then one GEMM.
        scratch.cols.resize(crs * wide_n, 0);
        for b in 0..b_n {
            im2col::im2col_into_offset(
                &input[b * in_len..(b + 1) * in_len],
                &g,
                &mut scratch.cols,
                wide_n,
                b * n_cols,
            );
        }
        scratch.acc.resize(g.k * wide_n, 0);
        scratch.acc.fill(0);
        gemm::gemm_i8_i32_into(
            weights.as_slice(),
            &scratch.cols,
            &mut scratch.acc,
            g.k,
            crs,
            wide_n,
        );
        this.cycle += op_cycles * b_n as u64;
        if fi.any_active() {
            for b in 0..b_n {
                apply_fast_corrections_into(
                    fi,
                    gated,
                    &input[b * in_len..(b + 1) * in_len],
                    weights,
                    &g,
                    &mut scratch.acc,
                    wide_n,
                    b * n_cols,
                );
            }
        }
        // SDP per image into the batched output surface. The output buffer
        // is owned (pulled out of the map), so the residual can stay a
        // borrow of its map entry.
        let mut out = scratch
            .batch_surfaces
            .remove(&op.output_addr)
            .unwrap_or_default();
        out.resize(b_n * out_len, 0);
        {
            let residual = op.fuse_add_addr.map(|addr| {
                scratch
                    .batch_surfaces
                    .get(&addr)
                    .expect("batched residual surface computed")
            });
            for b in 0..b_n {
                sdp_into(
                    op,
                    &g,
                    &scratch.acc,
                    wide_n,
                    b * n_cols,
                    residual.map(|r| &r[b * out_len..(b + 1) * out_len]),
                    &mut out[b * out_len..(b + 1) * out_len],
                );
            }
        }
        // Re-insert the input first: if the allocator aliased the output
        // onto the input region, DRAM semantics say the write wins.
        scratch.batch_surfaces.insert(op.input_addr, input);
        scratch.batch_surfaces.insert(op.output_addr, out);
        Ok(())
    }

    fn exec_pool(&mut self, op: &PoolOp) -> Result<(), AccelError> {
        let s = op.in_shape;
        let bytes = surface::surface_bytes(s.c, s.h, s.w) as u64;
        self.dram
            .read_i8_into(op.input_addr, bytes, &mut self.scratch.dma)?;
        self.scratch.input.resize(s.image_len(), 0);
        surface::unpack_surface_into(&self.scratch.dma, s.with_n(1), &mut self.scratch.input);
        let o = op.out_shape();
        self.scratch.out.resize(o.image_len(), 0);
        pool_into(op, &self.scratch.input, &mut self.scratch.out);
        self.scratch
            .packed
            .resize(surface::surface_bytes(o.c, o.h, o.w), 0);
        surface::pack_surface_into(&self.scratch.out, o, &mut self.scratch.packed);
        let packed = std::mem::take(&mut self.scratch.packed);
        self.dram.write_i8(op.output_addr, &packed)?;
        self.scratch.packed = packed;
        Ok(())
    }

    fn exec_pool_batch(&mut self, op: &PoolOp, b_n: usize) {
        let s = op.in_shape;
        let in_len = s.image_len();
        let o = op.out_shape();
        let out_len = o.image_len();
        let input = self
            .scratch
            .batch_surfaces
            .remove(&op.input_addr)
            .expect("batched pool input surface computed");
        let mut out = self
            .scratch
            .batch_surfaces
            .remove(&op.output_addr)
            .unwrap_or_default();
        out.resize(b_n * out_len, 0);
        for b in 0..b_n {
            pool_into(
                op,
                &input[b * in_len..(b + 1) * in_len],
                &mut out[b * out_len..(b + 1) * out_len],
            );
        }
        self.scratch.batch_surfaces.insert(op.input_addr, input);
        self.scratch.batch_surfaces.insert(op.output_addr, out);
    }

    fn exec_linear(&mut self, op_idx: usize, op: &LinearOp) -> Result<(), AccelError> {
        let path = self.op_path(op_idx)?;
        let op_cycles = self.op_mac_cycles(op_idx);
        self.refresh_weights(op_idx)?;
        let in_shape = Shape4::new(1, op.in_f, 1, 1);
        let bytes = surface::surface_bytes(op.in_f, 1, 1) as u64;
        self.dram
            .read_i8_into(op.input_addr, bytes, &mut self.scratch.dma)?;
        self.scratch.input.resize(in_shape.image_len(), 0);
        surface::unpack_surface_into(&self.scratch.dma, in_shape, &mut self.scratch.input);
        // The head runs on the same MAC array as a 1x1 convolution over a
        // 1x1 spatial extent — faults apply here too.
        let g = ConvGeom::new(in_shape, op.out_f, 1, 1, 1, 0);
        let this = &mut *self;
        let fi = &this.csb.fi;
        let gated = this.config.idle_lanes == IdleLanePolicy::Gated;
        let weights =
            &this.arena.entries[this.arena.by_op[op_idx].expect("linear has weights")].weights;
        let scratch = &mut this.scratch;
        scratch.acc.resize(op.out_f, 0);
        if path == OpPath::Exact {
            scratch.acc.fill(0);
            conv_exact_into(
                fi,
                gated,
                &mut this.cycle,
                &scratch.input,
                weights,
                &g,
                &mut scratch.acc,
            );
        } else {
            conv::conv2d_i8_into(
                &scratch.input,
                weights.as_slice(),
                &g,
                &mut scratch.cols,
                &mut scratch.acc,
                1,
            );
            this.cycle += op_cycles;
            if path == OpPath::FastCorrected {
                apply_fast_corrections_into(
                    fi,
                    gated,
                    &scratch.input,
                    weights,
                    &g,
                    &mut scratch.acc,
                    1,
                    0,
                );
            }
        }
        scratch.logits.clear();
        scratch
            .logits
            .extend((0..op.out_f).map(|o| scratch.acc[o].wrapping_add(op.bias[o])));
        let logits = std::mem::take(&mut this.scratch.logits);
        this.dram.write_i32(op.output_addr, &logits)?;
        this.scratch.logits = logits;
        Ok(())
    }

    fn exec_linear_batch(
        &mut self,
        op_idx: usize,
        op: &LinearOp,
        b_n: usize,
    ) -> Result<Vec<Vec<i32>>, AccelError> {
        let op_cycles = self.op_mac_cycles(op_idx);
        self.refresh_weights(op_idx)?;
        let in_shape = Shape4::new(1, op.in_f, 1, 1);
        let g = ConvGeom::new(in_shape, op.out_f, 1, 1, 1, 0);
        let this = &mut *self;
        let fi = &this.csb.fi;
        let gated = this.config.idle_lanes == IdleLanePolicy::Gated;
        let weights =
            &this.arena.entries[this.arena.by_op[op_idx].expect("linear has weights")].weights;
        let scratch = &mut this.scratch;
        let input = scratch
            .batch_surfaces
            .remove(&op.input_addr)
            .expect("batched linear input surface computed");
        assert_eq!(
            input.len(),
            b_n * op.in_f,
            "batched linear input length mismatch"
        );
        // B operand: (in_f x b_n), i.e. the batch-major input transposed.
        scratch.cols.resize(op.in_f * b_n, 0);
        for b in 0..b_n {
            for c in 0..op.in_f {
                scratch.cols[c * b_n + b] = input[b * op.in_f + c];
            }
        }
        scratch.acc.resize(op.out_f * b_n, 0);
        scratch.acc.fill(0);
        gemm::gemm_i8_i32_into(
            weights.as_slice(),
            &scratch.cols,
            &mut scratch.acc,
            op.out_f,
            op.in_f,
            b_n,
        );
        this.cycle += op_cycles * b_n as u64;
        if fi.any_active() {
            for b in 0..b_n {
                apply_fast_corrections_into(
                    fi,
                    gated,
                    &input[b * op.in_f..(b + 1) * op.in_f],
                    weights,
                    &g,
                    &mut scratch.acc,
                    b_n,
                    b,
                );
            }
        }
        let logits = (0..b_n)
            .map(|b| {
                (0..op.out_f)
                    .map(|o| scratch.acc[o * b_n + b].wrapping_add(op.bias[o]))
                    .collect()
            })
            .collect();
        scratch.batch_surfaces.insert(op.input_addr, input);
        Ok(logits)
    }
}

/// Whether two half-open cycle ranges overlap (an empty range — e.g. a
/// pool op's span — never does, even when it sits strictly inside the
/// other range).
fn span_intersects(a: &Range<u64>, b: &Range<u64>) -> bool {
    !a.is_empty() && !b.is_empty() && a.start < b.end && b.start < a.end
}

/// Ground-truth convolution: every product through its injector mux.
/// Schedule (defines the cycle numbering for transient windows):
/// kernel-group -> output row -> output col -> channel-block -> tap.
/// `acc` is the dense `K x OH x OW` accumulator (pre-zeroed).
fn conv_exact_into(
    fi: &FaultInjectorBank,
    gated: bool,
    cycle: &mut u64,
    input: &[i8],
    weights: &Tensor<i8>,
    g: &ConvGeom,
    acc: &mut [i32],
) {
    let (kg_n, cb_n) = (g.k.div_ceil(8), g.input.c.div_ceil(8));
    let (h, w) = (g.input.h, g.input.w);
    for kg in 0..kg_n {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                for cb in 0..cb_n {
                    for r in 0..g.r {
                        for s in 0..g.s {
                            *cycle += 1;
                            let iy = (oy * g.stride + r) as isize - g.pad as isize;
                            let ix = (ox * g.stride + s) as isize - g.pad as isize;
                            let in_bounds =
                                iy >= 0 && ix >= 0 && iy < h as isize && ix < w as isize;
                            for m in 0..8usize {
                                let k = kg * 8 + m;
                                if k >= g.k {
                                    continue; // kernel-tail MAC output discarded
                                }
                                let mut psum = 0i32;
                                for j in 0..8usize {
                                    let c = cb * 8 + j;
                                    let idle = c >= g.input.c;
                                    if idle && gated {
                                        continue;
                                    }
                                    let a = if idle || !in_bounds {
                                        0i8
                                    } else {
                                        input[(c * h + iy as usize) * w + ix as usize]
                                    };
                                    let wv = if idle { 0i8 } else { weights.at(k, c, r, s) };
                                    let p = fi.apply(m * 8 + j, I18::from_product(a, wv), *cycle);
                                    psum = psum.wrapping_add(p.value());
                                }
                                let slot = &mut acc[(k * g.oh + oy) * g.ow + ox];
                                *slot = slot.wrapping_add(psum);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Fast-path correction: for each faulted lane, replace its clean
/// contribution with `forced_value * #products`. Exactly equal to the
/// exact path for permanent full-lane overrides (see the property tests).
///
/// `acc` addresses element `(k, oy, ox)` at
/// `k * row_stride + col_off + oy * OW + ox`, which lets the batched
/// executor correct one image's column block inside the widened GEMM
/// output.
#[allow(clippy::too_many_arguments)]
fn apply_fast_corrections_into(
    fi: &FaultInjectorBank,
    gated: bool,
    input: &[i8],
    weights: &Tensor<i8>,
    g: &ConvGeom,
    acc: &mut [i32],
    row_stride: usize,
    col_off: usize,
) {
    let v = i64::from(fi.forced_value());
    let cb_n = g.input.c.div_ceil(8);
    let (h, w) = (g.input.h, g.input.w);
    for lane in fi.selected_lanes() {
        let (m, j) = (lane.mac as usize, lane.mult as usize);
        let real_blocks = if j < g.input.c {
            (g.input.c - 1 - j) / 8 + 1
        } else {
            0
        };
        let blocks = if gated { real_blocks } else { cb_n };
        let nprod = (blocks * g.r * g.s) as i64;
        let mut k = m;
        while k < g.k {
            for oy in 0..g.oh {
                for ox in 0..g.ow {
                    let mut lanesum = 0i64;
                    let mut c = j;
                    while c < g.input.c {
                        for r in 0..g.r {
                            for s in 0..g.s {
                                let iy = (oy * g.stride + r) as isize - g.pad as isize;
                                let ix = (ox * g.stride + s) as isize - g.pad as isize;
                                if iy >= 0 && ix >= 0 && iy < h as isize && ix < w as isize {
                                    lanesum +=
                                        i64::from(input[(c * h + iy as usize) * w + ix as usize])
                                            * i64::from(weights.at(k, c, r, s));
                                }
                            }
                        }
                        c += 8;
                    }
                    let corr = (v * nprod - lanesum) as i32;
                    let slot = &mut acc[k * row_stride + col_off + oy * g.ow + ox];
                    *slot = slot.wrapping_add(corr);
                }
            }
            k += 8;
        }
    }
}

/// SDP post-processing of one image: bias, per-channel requantization,
/// optional rescaled residual add, ReLU, saturation. Reads accumulator
/// element `(k, oy, ox)` at `k * row_stride + col_off + oy * OW + ox` and
/// writes the dense `K x OH x OW` output.
fn sdp_into(
    op: &ConvOp,
    g: &ConvGeom,
    acc: &[i32],
    row_stride: usize,
    col_off: usize,
    residual: Option<&[i8]>,
    out: &mut [i8],
) {
    let n_pix = g.oh * g.ow;
    for k in 0..g.k {
        let rq = op.requant_for(k);
        let arow = &acc[k * row_stride + col_off..k * row_stride + col_off + n_pix];
        let orow = &mut out[k * n_pix..(k + 1) * n_pix];
        match residual {
            Some(res) => {
                let add_rq = op.add_requant.expect("add requant");
                let rrow = &res[k * n_pix..(k + 1) * n_pix];
                for ((o, &a), &rv) in orow.iter_mut().zip(arow).zip(rrow) {
                    let a = a.wrapping_add(op.bias[k]);
                    *o = sdp_postprocess(a, rq, Some((rv, add_rq)), op.relu);
                }
            }
            None => {
                for (o, &a) in orow.iter_mut().zip(arow) {
                    let a = a.wrapping_add(op.bias[k]);
                    *o = sdp_postprocess(a, rq, None, op.relu);
                }
            }
        }
    }
}

/// PDP pooling of one dense CHW image into a dense CHW output, bit-exact
/// with [`pool::maxpool2d`] / [`nvfi_quant::exec::pdp_global_avg`].
fn pool_into(op: &PoolOp, input: &[i8], out: &mut [i8]) {
    let s = op.in_shape;
    match op.kind {
        PoolKind::Max => {
            let (k, stride) = (op.k, op.stride);
            assert!(
                k > 0 && stride > 0,
                "pooling window and stride must be positive"
            );
            assert!(
                s.h >= k
                    && s.w >= k
                    && (s.h - k).is_multiple_of(stride)
                    && (s.w - k).is_multiple_of(stride),
                "pool {k}/{stride} does not tile {s}"
            );
            let oh = (s.h - k) / stride + 1;
            let ow = (s.w - k) / stride + 1;
            for c in 0..s.c {
                let plane = &input[c * s.h * s.w..(c + 1) * s.h * s.w];
                let oplane = &mut out[c * oh * ow..(c + 1) * oh * ow];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = plane[oy * stride * s.w + ox * stride];
                        for r in 0..k {
                            let row = &plane[(oy * stride + r) * s.w + ox * stride..][..k];
                            for &v in row {
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        oplane[oy * ow + ox] = best;
                    }
                }
            }
        }
        PoolKind::GlobalAvg => {
            let area = (s.h * s.w) as u32;
            for c in 0..s.c {
                let plane = &input[c * s.h * s.w..(c + 1) * s.h * s.w];
                let mut sum = 0i32;
                for &v in plane {
                    sum = sum.wrapping_add(v as i32);
                }
                out[c] = sat::to_i8(i64::from(pool::rounded_div(sum, area)));
            }
        }
    }
}
