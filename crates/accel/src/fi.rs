//! The fault-injection block: 64 per-multiplier 18-bit override muxes.

use nvfi_compiler::plan::RegWrite;
use nvfi_compiler::regmap::{self, MultId};
use nvfi_hwnum::I18;
use std::ops::Range;

/// High-level fault kinds expressible with the injector registers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// All 18 wires forced to 0 — a stuck-at-0 multiplier output.
    StuckAtZero,
    /// All 18 wires forced to the two's-complement encoding of `value`
    /// (the paper injects 0, +1 and -1).
    Constant(i32),
    /// Arbitrary per-wire overrides: `out[i] = fsel[i] ? fdata[i] : p[i]`.
    /// Expresses single-bit stuck-at faults and other bit-granular models.
    StuckBits {
        /// Which of the 18 wires are overridden.
        fsel: u32,
        /// The values driven on overridden wires.
        fdata: u32,
    },
    /// Bit-flip fault: the wires in `mask` are inverted (XOR) after the
    /// override mux. This is an extension beyond the paper's stuck-at /
    /// constant models — its Sec. II notes "other fault models can easily
    /// be incorporated"; flips are data-dependent, so only the exact
    /// engine supports them.
    FlipBits {
        /// Which of the 18 wires are inverted.
        mask: u32,
    },
}

impl FaultKind {
    /// The `(fsel, fdata, xor)` register values for this fault kind.
    #[must_use]
    pub fn registers(self) -> (u32, u32, u32) {
        match self {
            FaultKind::StuckAtZero => (I18::MASK, 0, 0),
            FaultKind::Constant(v) => (I18::MASK, I18::new(v).bits(), 0),
            FaultKind::StuckBits { fsel, fdata } => (fsel & I18::MASK, fdata & I18::MASK, 0),
            FaultKind::FlipBits { mask } => (0, 0, mask & I18::MASK),
        }
    }

    /// Whether the fault overrides all 18 wires with constants (the class
    /// the fast execution path supports).
    #[must_use]
    pub fn is_full_override(self) -> bool {
        let (fsel, _, xor) = self.registers();
        fsel == I18::MASK && xor == 0
    }

    /// Rejects fault kinds that are provable no-ops: after 18-bit register
    /// masking the injector mux overrides no wires and flips no bits, so a
    /// campaign over this kind would emulate at full cost and measure
    /// nothing (a "0% SDC" result that is an artifact of the fault program,
    /// not the workload). `StuckBits { fsel: 0, .. }` and
    /// `FlipBits { mask: 0 }` are the canonical offenders.
    ///
    /// # Errors
    ///
    /// Returns a description of why the kind cannot perturb any product.
    pub fn validate(self) -> Result<(), String> {
        let (fsel, _, xor) = self.registers();
        if (fsel | xor) & I18::MASK == 0 {
            return Err(format!(
                "fault kind {self:?} is a provable no-op: after 18-bit masking \
                 it overrides no wires (fsel = 0) and flips no bits (xor = 0), \
                 so no multiplier product can ever be perturbed"
            ));
        }
        Ok(())
    }
}

/// A complete fault programming: which multipliers, and what to force.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Target multipliers.
    pub targets: Vec<MultId>,
    /// The fault model.
    pub kind: FaultKind,
}

impl FaultConfig {
    /// Creates a fault configuration.
    #[must_use]
    pub fn new(targets: Vec<MultId>, kind: FaultKind) -> Self {
        FaultConfig { targets, kind }
    }

    /// The CSB writes that program this configuration (enable included).
    #[must_use]
    pub fn reg_writes(&self) -> Vec<RegWrite> {
        let mut sel = 0u64;
        for t in &self.targets {
            sel |= 1 << t.lane();
        }
        let (fsel, fdata, xor) = self.kind.registers();
        vec![
            RegWrite {
                addr: regmap::REG_FI_SEL_A,
                value: sel as u32,
            },
            RegWrite {
                addr: regmap::REG_FI_SEL_B,
                value: (sel >> 32) as u32,
            },
            RegWrite {
                addr: regmap::REG_FI_FSEL,
                value: fsel,
            },
            RegWrite {
                addr: regmap::REG_FI_FDATA,
                value: fdata,
            },
            RegWrite {
                addr: regmap::REG_FI_XOR,
                value: xor,
            },
            RegWrite {
                addr: regmap::REG_FI_CTRL,
                value: 1,
            },
        ]
    }
}

/// The injector bank state, as live registers.
#[derive(Clone, Debug, Default)]
pub struct FaultInjectorBank {
    /// Enable bit (bit 0 of the CTRL register).
    pub enabled: bool,
    /// 64-bit multiplier select (`sel_b:sel_a`).
    pub sel: u64,
    /// 18-bit wire select.
    pub fsel: u32,
    /// 18-bit override data.
    pub fdata: u32,
    /// 18-bit XOR (bit-flip) mask applied after the mux.
    pub xor: u32,
    /// Optional transient ("pulse") window in cycles: the injector is only
    /// active while the engine's cycle counter lies in this range. `None`
    /// means a permanent fault. Only honoured by `ExecMode::Exact`.
    pub window: Option<Range<u64>>,
}

impl FaultInjectorBank {
    /// Creates a disabled bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any lane is actively selected.
    #[must_use]
    pub fn any_active(&self) -> bool {
        self.enabled && self.sel != 0 && (self.fsel | self.xor) & I18::MASK != 0
    }

    /// Whether the configured fault overrides all 18 wires with constants
    /// (no data-dependent flips) — the class the fast path can express.
    #[must_use]
    pub fn is_full_override(&self) -> bool {
        self.fsel & I18::MASK == I18::MASK && self.xor & I18::MASK == 0
    }

    /// The forced lane value (only meaningful for full overrides).
    #[must_use]
    pub fn forced_value(&self) -> i32 {
        I18::from_bits(self.fdata).value()
    }

    /// Lanes currently selected.
    #[must_use]
    pub fn selected_lanes(&self) -> Vec<MultId> {
        (0..regmap::TOTAL_MULTS)
            .filter(|&l| self.sel & (1 << l) != 0)
            .map(MultId::from_lane)
            .collect()
    }

    /// Applies the injector of `lane` to a product, honouring the enable and
    /// (if set) the transient window against `cycle`.
    #[inline]
    #[must_use]
    pub fn apply(&self, lane: usize, product: I18, cycle: u64) -> I18 {
        if !self.enabled || self.sel & (1 << lane) == 0 {
            return product;
        }
        if let Some(w) = &self.window {
            if !w.contains(&cycle) {
                return product;
            }
        }
        let muxed = product.overridden(self.fsel, self.fdata);
        if self.xor & I18::MASK != 0 {
            I18::from_bits(muxed.bits() ^ (self.xor & I18::MASK))
        } else {
            muxed
        }
    }

    /// Applies a register write (CSB decode). Returns `false` if the
    /// address does not belong to the FI block.
    pub fn write(&mut self, addr: u32, value: u32) -> bool {
        match addr {
            regmap::REG_FI_CTRL => self.enabled = value & 1 != 0,
            regmap::REG_FI_SEL_A => {
                self.sel = (self.sel & !0xFFFF_FFFF) | u64::from(value);
            }
            regmap::REG_FI_SEL_B => {
                self.sel = (self.sel & 0xFFFF_FFFF) | (u64::from(value) << 32);
            }
            regmap::REG_FI_FSEL => self.fsel = value & I18::MASK,
            regmap::REG_FI_FDATA => self.fdata = value & I18::MASK,
            regmap::REG_FI_XOR => self.xor = value & I18::MASK,
            _ => return false,
        }
        true
    }

    /// Reads an FI register. Returns `None` if the address does not belong
    /// to the FI block.
    #[must_use]
    pub fn read(&self, addr: u32) -> Option<u32> {
        Some(match addr {
            regmap::REG_FI_CTRL => u32::from(self.enabled),
            regmap::REG_FI_SEL_A => self.sel as u32,
            regmap::REG_FI_SEL_B => (self.sel >> 32) as u32,
            regmap::REG_FI_FSEL => self.fsel,
            regmap::REG_FI_FDATA => self.fdata,
            regmap::REG_FI_XOR => self.xor,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_registers() {
        assert_eq!(FaultKind::StuckAtZero.registers(), (0x3FFFF, 0, 0));
        assert_eq!(FaultKind::Constant(-1).registers(), (0x3FFFF, 0x3FFFF, 0));
        assert_eq!(FaultKind::Constant(1).registers(), (0x3FFFF, 1, 0));
        assert_eq!(
            FaultKind::FlipBits { mask: 0b101 }.registers(),
            (0, 0, 0b101)
        );
        assert!(FaultKind::Constant(5).is_full_override());
        assert!(!FaultKind::StuckBits { fsel: 1, fdata: 1 }.is_full_override());
        assert!(!FaultKind::FlipBits { mask: 1 }.is_full_override());
    }

    #[test]
    fn no_op_fault_kinds_fail_validation() {
        assert!(FaultKind::StuckBits { fsel: 0, fdata: 5 }
            .validate()
            .is_err());
        assert!(FaultKind::FlipBits { mask: 0 }.validate().is_err());
        // An out-of-mask selection is a no-op after 18-bit masking too.
        let high = FaultKind::StuckBits {
            fsel: 0xFFFC_0000,
            fdata: 0x3FFFF,
        };
        assert!(high.validate().is_err());
        // Everything that can touch a wire passes.
        assert!(FaultKind::StuckAtZero.validate().is_ok());
        assert!(FaultKind::Constant(0).validate().is_ok());
        assert!(FaultKind::StuckBits { fsel: 1, fdata: 0 }
            .validate()
            .is_ok());
        assert!(FaultKind::FlipBits { mask: 1 }.validate().is_ok());
    }

    #[test]
    fn flip_bits_inverts_selected_wires() {
        let mut bank = FaultInjectorBank::new();
        bank.enabled = true;
        bank.sel = 1;
        bank.xor = 0b11;
        let p = I18::new(0b1010);
        assert_eq!(bank.apply(0, p, 0).value(), 0b1001);
        // Applying twice restores the product (XOR involution).
        let once = bank.apply(0, p, 0);
        assert_eq!(bank.apply(0, once, 0), p);
        // Sign-bit flip turns a small positive into a large negative.
        bank.xor = 1 << 17;
        assert_eq!(bank.apply(0, I18::new(5), 0).value(), 5 - (1 << 17));
    }

    #[test]
    fn flip_bits_compose_with_override_mux() {
        let mut bank = FaultInjectorBank::new();
        bank.enabled = true;
        bank.sel = 1;
        bank.fsel = I18::MASK;
        bank.fdata = 0; // stuck at zero...
        bank.xor = 0b1; // ...then LSB flipped
        assert_eq!(bank.apply(0, I18::new(12345), 0).value(), 1);
    }

    #[test]
    fn config_programs_select_bits() {
        let cfg = FaultConfig::new(
            vec![MultId::new(0, 0), MultId::new(7, 7), MultId::new(4, 1)],
            FaultKind::StuckAtZero,
        );
        let mut bank = FaultInjectorBank::new();
        for w in cfg.reg_writes() {
            assert!(bank.write(w.addr, w.value), "unhandled write {w:?}");
        }
        assert!(bank.enabled);
        assert_eq!(bank.sel, (1 << 0) | (1 << 63) | (1 << 33));
        assert_eq!(bank.selected_lanes().len(), 3);
    }

    #[test]
    fn apply_respects_selection_and_enable() {
        let mut bank = FaultInjectorBank::new();
        let p = I18::new(1234);
        bank.sel = 0b10;
        bank.fsel = I18::MASK;
        bank.fdata = 0;
        assert_eq!(bank.apply(1, p, 0), p, "disabled bank passes through");
        bank.enabled = true;
        assert_eq!(bank.apply(1, p, 0), I18::ZERO);
        assert_eq!(bank.apply(0, p, 0), p, "unselected lane untouched");
    }

    #[test]
    fn window_gates_injection() {
        let mut bank = FaultInjectorBank::new();
        bank.enabled = true;
        bank.sel = 1;
        bank.fsel = I18::MASK;
        bank.fdata = 7;
        bank.window = Some(10..20);
        let p = I18::new(-5);
        assert_eq!(bank.apply(0, p, 9), p);
        assert_eq!(bank.apply(0, p, 10).value(), 7);
        assert_eq!(bank.apply(0, p, 19).value(), 7);
        assert_eq!(bank.apply(0, p, 20), p);
    }

    #[test]
    fn register_readback() {
        let mut bank = FaultInjectorBank::new();
        bank.write(regmap::REG_FI_SEL_A, 0xAAAA_5555);
        bank.write(regmap::REG_FI_SEL_B, 0x1234_5678);
        bank.write(regmap::REG_FI_FDATA, 0xFFFF_FFFF);
        assert_eq!(bank.read(regmap::REG_FI_SEL_A), Some(0xAAAA_5555));
        assert_eq!(bank.read(regmap::REG_FI_SEL_B), Some(0x1234_5678));
        assert_eq!(
            bank.read(regmap::REG_FI_FDATA),
            Some(0x3FFFF),
            "fdata masked to 18 bits"
        );
        assert_eq!(bank.read(0x9999), None);
    }
}
