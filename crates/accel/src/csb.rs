//! The CSB / AXI4-Lite register window.
//!
//! Software controls the device exclusively through 32-bit register
//! accesses: identification, status, the fault-injection block and the
//! command FIFO through which execution plans are streamed.

use nvfi_compiler::regmap;

use crate::error::AccelError;
use crate::fi::FaultInjectorBank;

/// The register space of the emulated device.
#[derive(Clone, Debug, Default)]
pub struct CsbSpace {
    /// The fault-injection block registers.
    pub fi: FaultInjectorBank,
    /// Command FIFO contents (descriptor words).
    pub cmd_fifo: Vec<u32>,
    /// Status register value (bit 0 = done, bit 1 = error).
    pub status: u32,
}

impl CsbSpace {
    /// Creates an idle register space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles a register write.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<(), AccelError> {
        if self.fi.write(addr, value) {
            return Ok(());
        }
        match addr {
            regmap::REG_CMD_RESET => {
                self.cmd_fifo.clear();
                Ok(())
            }
            regmap::REG_CMD_DATA => {
                self.cmd_fifo.push(value);
                Ok(())
            }
            regmap::REG_CTRL => Ok(()), // start bit handled by the engine
            regmap::REG_STATUS => {
                self.status = value;
                Ok(())
            }
            _ => Err(AccelError::BadRegister { addr }),
        }
    }

    /// Handles a register read.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadRegister`] for unmapped addresses.
    pub fn read(&self, addr: u32) -> Result<u32, AccelError> {
        if let Some(v) = self.fi.read(addr) {
            return Ok(v);
        }
        match addr {
            regmap::REG_ID => Ok(regmap::ID_VALUE),
            regmap::REG_STATUS => Ok(self.status),
            regmap::REG_CMD_DATA => Ok(self.cmd_fifo.len() as u32),
            _ => Err(AccelError::BadRegister { addr }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_register_reads_back() {
        let csb = CsbSpace::new();
        assert_eq!(csb.read(regmap::REG_ID).unwrap(), regmap::ID_VALUE);
    }

    #[test]
    fn cmd_fifo_accumulates_and_resets() {
        let mut csb = CsbSpace::new();
        csb.write(regmap::REG_CMD_DATA, 1).unwrap();
        csb.write(regmap::REG_CMD_DATA, 2).unwrap();
        assert_eq!(csb.cmd_fifo, vec![1, 2]);
        csb.write(regmap::REG_CMD_RESET, 0).unwrap();
        assert!(csb.cmd_fifo.is_empty());
    }

    #[test]
    fn unmapped_register_errors() {
        let mut csb = CsbSpace::new();
        assert!(matches!(
            csb.write(0xDEAD, 0),
            Err(AccelError::BadRegister { addr: 0xDEAD })
        ));
        assert!(csb.read(0xBEEF).is_err());
    }

    #[test]
    fn fi_registers_routed_to_bank() {
        let mut csb = CsbSpace::new();
        csb.write(regmap::REG_FI_SEL_A, 0xF).unwrap();
        csb.write(regmap::REG_FI_CTRL, 1).unwrap();
        assert!(csb.fi.enabled);
        assert_eq!(csb.fi.sel, 0xF);
    }
}
