//! Accelerator error type.

use std::fmt;

/// Errors surfaced by the accelerator model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccelError {
    /// A DMA/engine access fell outside the DRAM.
    DramOutOfBounds {
        /// Access start address.
        addr: u64,
        /// Access length in bytes.
        len: u64,
        /// DRAM capacity.
        capacity: u64,
    },
    /// No plan has been loaded.
    NoPlan,
    /// The loaded plan is malformed.
    BadPlan(String),
    /// A register access hit an unmapped address.
    BadRegister {
        /// Offending CSB address.
        addr: u32,
    },
    /// The fast execution path cannot express the programmed faults
    /// (partial-wire overrides or transient windows need `ExecMode::Exact`).
    FastPathUnsupported,
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::DramOutOfBounds {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "dram access out of bounds: {len} bytes at {addr:#x} (capacity {capacity:#x})"
            ),
            AccelError::NoPlan => write!(f, "no execution plan loaded"),
            AccelError::BadPlan(why) => write!(f, "malformed execution plan: {why}"),
            AccelError::BadRegister { addr } => write!(f, "unmapped register {addr:#06x}"),
            AccelError::FastPathUnsupported => write!(
                f,
                "fast path cannot express the programmed faults; use ExecMode::Exact"
            ),
        }
    }
}

impl std::error::Error for AccelError {}
