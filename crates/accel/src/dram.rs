//! Byte-addressable DRAM model with access accounting.

use crate::error::AccelError;

/// The emulated DRAM: a flat byte array plus read/write byte counters used
/// by the performance model.
#[derive(Clone, Debug)]
pub struct Dram {
    data: Vec<u8>,
    bytes_read: u64,
    bytes_written: u64,
}

impl Dram {
    /// Allocates a zeroed DRAM of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Dram {
            data: vec![0; capacity as usize],
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total bytes read since the last [`Dram::reset_counters`].
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since the last [`Dram::reset_counters`].
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Clears the access counters.
    pub fn reset_counters(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }

    fn check(&self, addr: u64, len: u64) -> Result<(usize, usize), AccelError> {
        let end = addr.checked_add(len).ok_or(AccelError::DramOutOfBounds {
            addr,
            len,
            capacity: self.capacity(),
        })?;
        if end > self.capacity() {
            return Err(AccelError::DramOutOfBounds {
                addr,
                len,
                capacity: self.capacity(),
            });
        }
        Ok((addr as usize, end as usize))
    }

    /// Reads `len` bytes as i8.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn read_i8(&mut self, addr: u64, len: u64) -> Result<Vec<i8>, AccelError> {
        let (a, b) = self.check(addr, len)?;
        self.bytes_read += len;
        Ok(self.data[a..b].iter().map(|&v| v as i8).collect())
    }

    /// Buffer-reusing [`Dram::read_i8`]: clears `out` and fills it with the
    /// `len` bytes at `addr`. Steady-state readers keep one buffer and never
    /// reallocate once its capacity has grown to the largest read.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn read_i8_into(
        &mut self,
        addr: u64,
        len: u64,
        out: &mut Vec<i8>,
    ) -> Result<(), AccelError> {
        let (a, b) = self.check(addr, len)?;
        self.bytes_read += len;
        out.clear();
        out.extend(self.data[a..b].iter().map(|&v| v as i8));
        Ok(())
    }

    /// Writes an i8 slice.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn write_i8(&mut self, addr: u64, bytes: &[i8]) -> Result<(), AccelError> {
        let (a, b) = self.check(addr, bytes.len() as u64)?;
        self.bytes_written += bytes.len() as u64;
        for (dst, &src) in self.data[a..b].iter_mut().zip(bytes) {
            *dst = src as u8;
        }
        Ok(())
    }

    /// Reads `count` little-endian i32 words.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn read_i32(&mut self, addr: u64, count: usize) -> Result<Vec<i32>, AccelError> {
        let (a, b) = self.check(addr, count as u64 * 4)?;
        self.bytes_read += count as u64 * 4;
        Ok(self.data[a..b]
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Writes little-endian i32 words.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DramOutOfBounds`] on a bad range.
    pub fn write_i32(&mut self, addr: u64, words: &[i32]) -> Result<(), AccelError> {
        let (a, _) = self.check(addr, words.len() as u64 * 4)?;
        self.bytes_written += words.len() as u64 * 4;
        for (i, &w) in words.iter().enumerate() {
            self.data[a + i * 4..a + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_roundtrip() {
        let mut d = Dram::new(64);
        d.write_i8(8, &[-1, 2, -3]).unwrap();
        assert_eq!(d.read_i8(8, 3).unwrap(), vec![-1, 2, -3]);
    }

    #[test]
    fn i32_roundtrip_little_endian() {
        let mut d = Dram::new(64);
        d.write_i32(0, &[-2, 0x01020304]).unwrap();
        assert_eq!(d.read_i32(0, 2).unwrap(), vec![-2, 0x01020304]);
        // LE byte order check.
        assert_eq!(d.read_i8(4, 1).unwrap(), vec![4]);
    }

    #[test]
    fn bounds_enforced() {
        let mut d = Dram::new(16);
        assert!(d.write_i8(15, &[0, 0]).is_err());
        assert!(d.read_i32(14, 1).is_err());
        assert!(
            d.read_i8(u64::MAX, 2).is_err(),
            "overflowing range must fail"
        );
        let err = d.read_i8(20, 1).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn counters_accumulate() {
        let mut d = Dram::new(64);
        d.write_i8(0, &[1; 10]).unwrap();
        let _ = d.read_i8(0, 4).unwrap();
        assert_eq!(d.bytes_written(), 10);
        assert_eq!(d.bytes_read(), 4);
        d.reset_counters();
        assert_eq!(d.bytes_written(), 0);
    }
}
