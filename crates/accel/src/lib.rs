//! The emulated NVDLA-style int8 CNN inference accelerator with
//! per-multiplier fault injection — the hardware half of the DATE 2025
//! platform, reproduced as a bit- and mapping-faithful simulator.
//!
//! # Microarchitecture
//!
//! The modelled datapath follows the paper's Fig. 1:
//!
//! * **CMAC**: 8 MAC units x 8 signed 8-bit multipliers. In one atomic op
//!   (one cycle) the array consumes one 8-channel activation word and an
//!   8x8 weight block, producing 8 partial sums. MAC unit `m` serves output
//!   channel `k` with `k % 8 == m`; multiplier `j` serves input channel `c`
//!   with `c % 8 == j`. The same physical multiplier is reused by every
//!   layer — the essential coupling that graph-level fault injection cannot
//!   express.
//! * **Fault injectors**: every multiplier output is an 18-bit lane with a
//!   per-wire override mux (`out[i] = fsel[i] ? fdata[i] : product[i]`),
//!   selected per multiplier by the 64-bit `sel_a:sel_b` register pair and
//!   programmed over the CSB/AXI4-Lite window ([`csb`]).
//! * **CACC/SDP/PDP**: i32 accumulation, then bias / fixed-point
//!   requantization / optional residual add / ReLU (shared, bit-exact code
//!   with the CPU reference in `nvfi-quant`), and pooling.
//! * **DRAM**: a byte-addressable memory holding packed feature surfaces
//!   and weights ([`dram`]), with access counters for the performance model.
//!
//! # Execution modes and the op-scoped pipeline
//!
//! * [`ExecMode::Exact`] pushes every single product through the injector
//!   muxes in the CMAC's atomic-op schedule — the ground truth, and the
//!   only engine that can honour **bit-granular** faults
//!   ([`FaultKind::StuckBits`], [`FaultKind::FlipBits`]) and **transient
//!   windows** ([`Accelerator::set_fault_window`]), because both depend on
//!   per-product values and cycle numbers.
//! * [`ExecMode::Fast`] computes the clean convolution with im2col + GEMM
//!   and applies an algebraically identical correction per faulted lane
//!   (`forced_value * #products - clean_lane_sum`). Valid only for
//!   permanent full-lane overrides (the paper's 0 / +1 / -1 experiments);
//!   anything else returns [`AccelError::FastPathUnsupported`] — a
//!   transient window already at [`Accelerator::set_fault_window`] time.
//!   The two engines are property-tested bit-equal on their shared domain.
//! * [`ExecMode::Auto`] (default) resolves **per op**, not per inference.
//!   Each plan op owns a fixed per-inference MAC-cycle span
//!   (`ExecutionPlan::mac_cycle_spans`, cached on the device at plan-load
//!   time), so under a transient window the pipeline is *op-scoped*: ops
//!   whose span ends before the window run the fast register-tiled path
//!   (bit-identical when no fault is active), ops intersecting the window
//!   run exact with injection armed, and ops after the window drop back to
//!   the fast path on the (tainted) intermediate activations. Permanent
//!   bit-granular faults still run full-inference exact; permanent
//!   full-lane overrides run fast-with-corrections everywhere. Window
//!   placement equivalence against all-exact is tested exhaustively in
//!   `tests/equivalence.rs`.
//!
//! The fault-free prefix of a windowed inference is also *restorable*:
//! [`Accelerator::run_prefix_i8_view`] runs ops `0..b` and leaves DRAM in
//! the boundary state, and [`Accelerator::run_suffix_i8_view`] re-seeds the
//! boundary's live-in surfaces (`ExecutionPlan::live_in_surfaces`) plus the
//! prefix cycle count and runs ops `b..` — bit-identical to the full run.
//! Fault-injection campaigns build a campaign-lifetime golden-prefix
//! activation cache on top of this pair (`nvfi::GoldenActivationCache`),
//! capturing each image's prefix once (probed by [`golden_prefix_passes`])
//! and restoring it for every windowed work item ([`golden_restores`]).
//!
//! # Weight-arena lifecycle
//!
//! [`Accelerator::load_plan`] / [`Accelerator::commit_cmd_fifo`] build a
//! **weight arena**: every conv/linear layer's packed weight region is
//! unpacked from the blocked DRAM layout once and cached as the dense
//! `K x (C*R*S)` GEMM operand. The cache is keyed by the backing DRAM
//! range, and the only two host-visible ways of mutating DRAM —
//! [`Accelerator::dma_write`] and [`Accelerator::flip_dram_bit`] — mark
//! every overlapping entry dirty; the next op that needs the entry
//! re-unpacks it from DRAM. Weight-memory SEU experiments therefore observe
//! exactly what a cold device would, which `tests/arena.rs` property-tests.
//!
//! # Scratch reuse invariants
//!
//! All per-op intermediates (DMA staging, unpacked activations, im2col
//! columns, i32 accumulators, SDP output, packed surfaces) live in a
//! per-device scratch arena whose buffers are resized per op but never
//! shrink, so steady-state inference allocates nothing on the heap. Two
//! invariants keep that safe: (1) every buffer is fully overwritten (or
//! explicitly zeroed) before use — nothing reads stale bytes from a
//! previous op or inference; (2) scratch never aliases DRAM — op inputs are
//! staged out of DRAM before any output is written back. The batched path
//! ([`Accelerator::run_batch_i8`]) additionally keeps **all** surfaces —
//! input, intermediates — in a per-address scratch map instead of DRAM;
//! results are bit-identical to the per-image path, but DRAM is only
//! touched for weight-arena refills and one final logits write per
//! mini-batch (the last image's, for parity with per-image runs), so
//! access counters and `dma_read` of surface addresses reflect per-image
//! traffic only when `batch == 1`.
//!
//! # Examples
//!
//! ```
//! use nvfi_accel::{Accelerator, AccelConfig, FaultConfig, FaultKind};
//! use nvfi_compiler::regmap::MultId;
//!
//! # fn demo(plan: &nvfi_compiler::ExecutionPlan, image: &nvfi_tensor::Tensor<f32>)
//! #     -> Result<(), nvfi_accel::AccelError> {
//! let mut accel = Accelerator::new(AccelConfig::default());
//! accel.load_plan(plan)?;
//! // Stuck-at-0 on the last multiplier of MAC unit 1:
//! accel.inject(&FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero));
//! let result = accel.run_inference(image)?;
//! println!("class {} in {:.3} ms", result.class, result.perf.latency_ms());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csb;
pub mod dram;
mod engine;
mod error;
pub mod fi;
pub mod perf;

pub use engine::{
    golden_prefix_passes, golden_restores, Accelerator, ExecMode, IdleLanePolicy, InferenceResult,
};
pub use error::AccelError;
pub use fi::{FaultConfig, FaultKind};
pub use perf::{AccelConfig, PerfReport, CLOCK_HZ_DEFAULT};
