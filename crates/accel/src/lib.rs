//! The emulated NVDLA-style int8 CNN inference accelerator with
//! per-multiplier fault injection — the hardware half of the DATE 2025
//! platform, reproduced as a bit- and mapping-faithful simulator.
//!
//! # Microarchitecture
//!
//! The modelled datapath follows the paper's Fig. 1:
//!
//! * **CMAC**: 8 MAC units x 8 signed 8-bit multipliers. In one atomic op
//!   (one cycle) the array consumes one 8-channel activation word and an
//!   8x8 weight block, producing 8 partial sums. MAC unit `m` serves output
//!   channel `k` with `k % 8 == m`; multiplier `j` serves input channel `c`
//!   with `c % 8 == j`. The same physical multiplier is reused by every
//!   layer — the essential coupling that graph-level fault injection cannot
//!   express.
//! * **Fault injectors**: every multiplier output is an 18-bit lane with a
//!   per-wire override mux (`out[i] = fsel[i] ? fdata[i] : product[i]`),
//!   selected per multiplier by the 64-bit `sel_a:sel_b` register pair and
//!   programmed over the CSB/AXI4-Lite window ([`csb`]).
//! * **CACC/SDP/PDP**: i32 accumulation, then bias / fixed-point
//!   requantization / optional residual add / ReLU (shared, bit-exact code
//!   with the CPU reference in `nvfi-quant`), and pooling.
//! * **DRAM**: a byte-addressable memory holding packed feature surfaces
//!   and weights ([`dram`]), with access counters for the performance model.
//!
//! # Execution modes
//!
//! [`ExecMode::Exact`] pushes every single product through the injector
//! muxes — the ground truth, and required for bit-granular faults or
//! transient ("pulse") fault windows. [`ExecMode::Fast`] computes the clean
//! convolution with GEMM and applies an algebraically identical correction
//! per faulted lane; it is only valid for full-lane overrides (the paper's
//! 0 / +1 / -1 experiments) and the two modes are property-tested equal.
//! [`ExecMode::Auto`] picks per fault configuration.
//!
//! # Examples
//!
//! ```
//! use nvfi_accel::{Accelerator, AccelConfig, FaultConfig, FaultKind};
//! use nvfi_compiler::regmap::MultId;
//!
//! # fn demo(plan: &nvfi_compiler::ExecutionPlan, image: &nvfi_tensor::Tensor<f32>)
//! #     -> Result<(), nvfi_accel::AccelError> {
//! let mut accel = Accelerator::new(AccelConfig::default());
//! accel.load_plan(plan)?;
//! // Stuck-at-0 on the last multiplier of MAC unit 1:
//! accel.inject(&FaultConfig::new(vec![MultId::new(0, 7)], FaultKind::StuckAtZero));
//! let result = accel.run_inference(image)?;
//! println!("class {} in {:.3} ms", result.class, result.perf.latency_ms());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csb;
pub mod dram;
mod engine;
mod error;
pub mod fi;
pub mod perf;

pub use engine::{Accelerator, ExecMode, IdleLanePolicy, InferenceResult};
pub use error::AccelError;
pub use fi::{FaultConfig, FaultKind};
pub use perf::{AccelConfig, PerfReport, CLOCK_HZ_DEFAULT};
