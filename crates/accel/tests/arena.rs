//! Property tests for the campaign-lifetime caches added to the engine:
//!
//! 1. **weight-arena invalidation** — `dma_write` / `flip_dram_bit` into a
//!    weight region followed by `run_inference_i8` matches a cold (freshly
//!    assembled, no warm arena) device bit-exactly;
//! 2. **fast-path + corrections with a warm arena** still equals the exact
//!    engine for full-override faults;
//! 3. **batched execution** (`run_batch_i8` / `classify_batch`) is
//!    bit-identical to the per-image path, with and without faults.

use nvfi_accel::{AccelConfig, Accelerator, ExecMode, FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::MultId;
use nvfi_hwnum::Requant;
use nvfi_quant::{QConv, QLinear, QOp, QOpKind, QuantModel};
use nvfi_tensor::{Mat, Shape4, Tensor};
use proptest::prelude::*;

/// A small random conv + pool + linear model plus a batch of images.
fn case() -> impl Strategy<Value = (QuantModel, Tensor<f32>, Vec<MultId>, i32, u64)> {
    (
        1usize..10, // input channels
        1usize..14, // output channels
        4usize..7,  // spatial size
        1usize..3,  // stride
        0usize..2,  // pad
        2usize..6,  // batch size
        proptest::collection::vec(0usize..64, 1..4),
        -131072i32..131072,
        any::<u64>(),
    )
        .prop_map(|(c, k, hw, stride, pad, batch, lanes, value, seed)| {
            let r = 3.min(hw + 2 * pad);
            let weight = Tensor::from_fn(Shape4::new(k, c, r, r), |k2, c2, r2, s2| {
                (seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add((k2 * 131 + c2 * 31 + r2 * 7 + s2) as u64)
                    % 255) as i8
            });
            let model = QuantModel {
                input_shape: Shape4::new(1, c, hw, hw),
                input_scale: 0.05,
                ops: vec![
                    QOp {
                        input: 0,
                        kind: QOpKind::Conv(QConv {
                            weight,
                            bias: (0..k).map(|i| i as i32 * 3 - 5).collect(),
                            stride,
                            pad,
                            relu: true,
                            fuse_add: None,
                            requant: vec![Requant::from_scale(0.01).unwrap()],
                            add_requant: None,
                            out_scale: 0.1,
                        }),
                        out_scale: 0.1,
                    },
                    QOp {
                        input: 1,
                        kind: QOpKind::GlobalAvgPool,
                        out_scale: 0.1,
                    },
                    QOp {
                        input: 2,
                        kind: QOpKind::Linear(QLinear {
                            weight: Mat::from_vec(
                                3,
                                k,
                                (0..3 * k).map(|i| (i as i8).wrapping_mul(37)).collect(),
                            ),
                            bias: vec![7, -9, 0],
                            out_scale: 0.1,
                        }),
                        out_scale: 0.1,
                    },
                ],
                output: 3,
            };
            let images = Tensor::from_fn(Shape4::new(batch, c, hw, hw), |n, c2, h2, w2| {
                ((seed as usize + n * 71 + c2 * 17 + h2 * 5 + w2) % 40) as f32 * 0.05 - 0.5
            });
            let targets: Vec<MultId> = {
                let mut t: Vec<MultId> = lanes.into_iter().map(MultId::from_lane).collect();
                t.sort();
                t.dedup();
                t
            };
            (model, images, targets, value, seed)
        })
}

fn device(model: &QuantModel, mode: ExecMode) -> Accelerator {
    let plan = nvfi_compiler::compile(model, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY)
        .expect("compiles");
    let mut accel = Accelerator::new(AccelConfig {
        mode,
        idle_lanes: IdleLanePolicy::ZeroFed,
        ..Default::default()
    });
    accel.load_plan(&plan).expect("loads");
    accel
}

/// Byte offsets (relative to the weight region base) to corrupt, spread
/// over the first conv's packed weight region.
fn weight_region(model: &QuantModel) -> (u64, u64) {
    let plan = nvfi_compiler::compile(model, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY)
        .expect("compiles");
    let (addr, bytes) = &plan.weight_image[0];
    (*addr, bytes.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SEU into a cached weight region: the warm device must match a
    /// freshly assembled device that sees the corrupted DRAM from cold.
    #[test]
    fn dram_bit_flip_invalidates_weight_arena((model, images, _, _, seed) in case()) {
        let (w_addr, w_len) = weight_region(&model);
        let img = model.quantize_input(&images.slice_image(0));

        let mut warm = device(&model, ExecMode::Auto);
        // Warm the arena (and scratch) with a few inferences first.
        let _ = warm.run_inference_i8(&img).unwrap();
        let flip_at = w_addr + seed % w_len;
        let bit = (seed % 8) as u8;
        warm.flip_dram_bit(flip_at, bit).unwrap();
        let warm_logits = warm.run_inference_i8(&img).unwrap().logits;

        // Cold device: same plan, same SEU, arena built after the flip.
        let mut cold = device(&model, ExecMode::Auto);
        cold.flip_dram_bit(flip_at, bit).unwrap();
        let cold_logits = cold.run_inference_i8(&img).unwrap().logits;

        prop_assert_eq!(warm_logits, cold_logits);
    }

    /// `dma_write` of fresh weight bytes over a cached region: the warm
    /// device must behave exactly like a cold device loaded with the new
    /// bytes.
    #[test]
    fn dma_write_invalidates_weight_arena((model, images, _, _, seed) in case()) {
        let (w_addr, w_len) = weight_region(&model);
        let img = model.quantize_input(&images.slice_image(0));
        // Overwrite a slice in the middle of the region.
        let start = seed % w_len;
        let len = (1 + seed % 16).min(w_len - start) as usize;
        let patch: Vec<i8> = (0..len).map(|i| (seed as usize + i * 31) as i8).collect();

        let mut warm = device(&model, ExecMode::Auto);
        let _ = warm.run_inference_i8(&img).unwrap();
        warm.dma_write(w_addr + start, &patch).unwrap();
        let warm_logits = warm.run_inference_i8(&img).unwrap().logits;

        let mut cold = device(&model, ExecMode::Auto);
        cold.dma_write(w_addr + start, &patch).unwrap();
        let cold_logits = cold.run_inference_i8(&img).unwrap().logits;

        prop_assert_eq!(warm_logits, cold_logits);
    }

    /// Fast path + corrections with a warm arena equals the exact engine
    /// (the arena must not change fault semantics).
    #[test]
    fn warm_arena_fast_corrections_equal_exact((model, images, targets, value, _) in case()) {
        let img = model.quantize_input(&images.slice_image(0));
        let fault = FaultConfig::new(targets, FaultKind::Constant(value));

        let mut fast = device(&model, ExecMode::Fast);
        let _ = fast.run_inference_i8(&img).unwrap(); // warm
        fast.inject(&fault);
        let fast_logits = fast.run_inference_i8(&img).unwrap().logits;

        let mut exact = device(&model, ExecMode::Exact);
        exact.inject(&fault);
        let exact_logits = exact.run_inference_i8(&img).unwrap().logits;

        prop_assert_eq!(fast_logits, exact_logits);
    }

    /// The batched fast path is bit-identical to the per-image path, clean
    /// and faulted.
    #[test]
    fn batched_execution_matches_per_image((model, images, targets, value, _) in case()) {
        let qimgs = model.quantize_input(&images);

        for fault in [None, Some(FaultConfig::new(targets, FaultKind::Constant(value)))] {
            let mut per_image = device(&model, ExecMode::Auto);
            let mut batched = device(&model, ExecMode::Auto);
            if let Some(f) = &fault {
                per_image.inject(f);
                batched.inject(f);
            }
            let want: Vec<Vec<i32>> = (0..qimgs.shape().n)
                .map(|n| per_image.run_inference_i8(&qimgs.slice_image(n)).unwrap().logits)
                .collect();
            let got: Vec<Vec<i32>> = batched
                .run_batch_i8(&qimgs)
                .unwrap()
                .into_iter()
                .map(|r| r.logits)
                .collect();
            prop_assert_eq!(&got, &want, "fault: {:?}", fault);
        }
    }

    /// `classify_batch` agrees with per-image classification for every
    /// mini-batch size.
    #[test]
    fn classify_batch_size_invariant((model, images, _, _, _) in case()) {
        let mut reference = device(&model, ExecMode::Auto);
        let want: Vec<u8> = (0..images.shape().n)
            .map(|n| reference.run_inference(&images.slice_image(n)).unwrap().class)
            .collect();
        for batch in [1, 2, 3, 8] {
            let plan = nvfi_compiler::compile(&model, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY)
                .unwrap();
            let mut accel = Accelerator::new(AccelConfig { batch, ..Default::default() });
            accel.load_plan(&plan).unwrap();
            let got = accel.classify_batch(&images).unwrap();
            prop_assert_eq!(&got, &want, "batch={}", batch);
        }
    }
}
