//! Property-based equivalence: for random small convolution networks,
//! random inputs and random full-override fault configurations, the fast
//! (GEMM + correction) engine equals the exact (per-product mux) engine,
//! and with no faults both equal the CPU reference executor.

use nvfi_accel::{AccelConfig, Accelerator, ExecMode, FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::MultId;
use nvfi_hwnum::Requant;
use nvfi_quant::{QConv, QLinear, QOp, QOpKind, QuantModel};
use nvfi_tensor::{Mat, Shape4, Tensor};
use proptest::prelude::*;

/// A random one-conv + pool + linear quantized model, input, and fault set.
fn case() -> impl Strategy<Value = (QuantModel, Tensor<f32>, Vec<MultId>, i32, bool)> {
    (
        1usize..12, // input channels (exercises idle lanes)
        1usize..14, // output channels (exercises kernel tails)
        4usize..7,  // spatial size
        1usize..3,  // stride
        0usize..2,  // pad
        proptest::collection::vec(0usize..64, 1..5),
        -131072i32..131072,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(c, k, hw, stride, pad, lanes, value, gated, seed)| {
            let r = 3.min(hw + 2 * pad);
            let weight = Tensor::from_fn(Shape4::new(k, c, r, r), |k2, c2, r2, s2| {
                (seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add((k2 * 131 + c2 * 31 + r2 * 7 + s2) as u64)
                    % 255) as i8
            });
            let model = QuantModel {
                input_shape: Shape4::new(1, c, hw, hw),
                input_scale: 0.05,
                ops: vec![
                    QOp {
                        input: 0,
                        kind: QOpKind::Conv(QConv {
                            weight,
                            bias: (0..k).map(|i| i as i32 * 3 - 5).collect(),
                            stride,
                            pad,
                            relu: true,
                            fuse_add: None,
                            requant: vec![Requant::from_scale(0.01).unwrap()],
                            add_requant: None,
                            out_scale: 0.1,
                        }),
                        out_scale: 0.1,
                    },
                    QOp {
                        input: 1,
                        kind: QOpKind::GlobalAvgPool,
                        out_scale: 0.1,
                    },
                    QOp {
                        input: 2,
                        kind: QOpKind::Linear(QLinear {
                            weight: Mat::from_vec(
                                3,
                                k,
                                (0..3 * k).map(|i| (i as i8).wrapping_mul(37)).collect(),
                            ),
                            bias: vec![7, -9, 0],
                            out_scale: 0.1,
                        }),
                        out_scale: 0.1,
                    },
                ],
                output: 3,
            };
            let image = Tensor::from_fn(Shape4::new(1, c, hw, hw), |_, c2, h2, w2| {
                ((seed as usize + c2 * 17 + h2 * 5 + w2) % 40) as f32 * 0.05 - 0.5
            });
            let targets: Vec<MultId> = {
                let mut t: Vec<MultId> = lanes.into_iter().map(MultId::from_lane).collect();
                t.sort();
                t.dedup();
                t
            };
            (model, image, targets, value, gated)
        })
}

fn run(
    model: &QuantModel,
    image: &Tensor<f32>,
    mode: ExecMode,
    gated: bool,
    fault: Option<&FaultConfig>,
) -> Vec<i32> {
    let plan = nvfi_compiler::compile(model, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY)
        .expect("compiles");
    let idle = if gated {
        IdleLanePolicy::Gated
    } else {
        IdleLanePolicy::ZeroFed
    };
    let mut accel = Accelerator::new(AccelConfig {
        mode,
        idle_lanes: idle,
        ..Default::default()
    });
    accel.load_plan(&plan).expect("loads");
    if let Some(f) = fault {
        accel.inject(f);
    }
    accel.run_inference(image).expect("runs").logits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_equals_exact_under_random_full_override_faults(
        (model, image, targets, value, gated) in case()
    ) {
        let fault = FaultConfig::new(targets, FaultKind::Constant(value));
        let exact = run(&model, &image, ExecMode::Exact, gated, Some(&fault));
        let fast = run(&model, &image, ExecMode::Fast, gated, Some(&fault));
        prop_assert_eq!(exact, fast);
    }

    #[test]
    fn fault_free_engines_match_cpu_reference(
        (model, image, _, _, gated) in case()
    ) {
        let want = nvfi_quant::exec::forward(&model, &model.quantize_input(&image), 1);
        let exact = run(&model, &image, ExecMode::Exact, gated, None);
        let fast = run(&model, &image, ExecMode::Fast, gated, None);
        prop_assert_eq!(&exact, &want[0]);
        prop_assert_eq!(&fast, &want[0]);
    }

    #[test]
    fn stuck_at_zero_equals_constant_zero(
        (model, image, targets, _, gated) in case()
    ) {
        let a = run(&model, &image, ExecMode::Auto, gated,
            Some(&FaultConfig::new(targets.clone(), FaultKind::StuckAtZero)));
        let b = run(&model, &image, ExecMode::Auto, gated,
            Some(&FaultConfig::new(targets, FaultKind::Constant(0))));
        prop_assert_eq!(a, b);
    }
}
