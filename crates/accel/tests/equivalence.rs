//! The load-bearing correctness tests of the whole platform:
//!
//! 1. with no faults, the accelerator model matches the CPU reference
//!    executor **bit-exactly**;
//! 2. the fast fault path matches the exact (per-product) path for every
//!    full-lane-override fault;
//! 3. register-level fault programming is equivalent to the high-level API;
//! 4. fault effects are confined to the mapped output channels.

use nvfi_accel::{AccelConfig, Accelerator, ExecMode, FaultConfig, FaultKind, IdleLanePolicy};
use nvfi_compiler::regmap::{self, MultId};
use nvfi_dataset::{SynthCifar, SynthCifarConfig};
use nvfi_nn::fold::fold_resnet;
use nvfi_nn::resnet::ResNet;
use nvfi_quant::{quantize, QuantConfig, QuantModel};
use nvfi_tensor::Tensor;

fn build_model(width: usize, seed: u64) -> (QuantModel, nvfi_dataset::TrainTest) {
    let data = SynthCifar::new(SynthCifarConfig {
        train: 16,
        test: 8,
        ..Default::default()
    })
    .generate();
    let net = ResNet::new(width, &[1, 1], 10, seed);
    let deploy = fold_resnet(&net, 32);
    let q = quantize(&deploy, &data.train.images, &QuantConfig::default()).unwrap();
    (q, data)
}

fn accel_with(q: &QuantModel, mode: ExecMode, idle: IdleLanePolicy) -> Accelerator {
    let plan = nvfi_compiler::compile(q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let mut a = Accelerator::new(AccelConfig {
        mode,
        idle_lanes: idle,
        ..Default::default()
    });
    a.load_plan(&plan).unwrap();
    a
}

#[test]
fn fault_free_accel_matches_cpu_reference_bit_exactly() {
    let (q, data) = build_model(4, 3);
    let mut accel = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    for n in 0..data.test.len() {
        let img = data.test.images.slice_image(n);
        let want = nvfi_quant::exec::forward(&q, &q.quantize_input(&img), 1);
        let got = accel.run_inference(&img).unwrap();
        assert_eq!(got.logits, want[0], "image {n}");
    }
}

#[test]
fn fault_free_exact_mode_also_matches_cpu_reference() {
    let (q, data) = build_model(4, 5);
    let mut accel = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    let img = data.test.images.slice_image(0);
    let want = nvfi_quant::exec::forward(&q, &q.quantize_input(&img), 1);
    let got = accel.run_inference(&img).unwrap();
    assert_eq!(got.logits, want[0]);
}

#[test]
fn exact_gated_also_matches_cpu_reference_when_fault_free() {
    // Without faults, zero-fed idle lanes contribute zero products, so both
    // policies equal the reference.
    let (q, data) = build_model(4, 7);
    let mut accel = accel_with(&q, ExecMode::Exact, IdleLanePolicy::Gated);
    let img = data.test.images.slice_image(1);
    let want = nvfi_quant::exec::forward(&q, &q.quantize_input(&img), 1);
    let got = accel.run_inference(&img).unwrap();
    assert_eq!(got.logits, want[0]);
}

#[test]
fn fast_equals_exact_for_full_override_faults() {
    let (q, data) = build_model(4, 11);
    // A spread of fault configurations across values and lane positions,
    // including multi-lane sets.
    let cases: Vec<(Vec<MultId>, FaultKind)> = vec![
        (vec![MultId::new(0, 0)], FaultKind::StuckAtZero),
        (vec![MultId::new(0, 7)], FaultKind::Constant(-1)),
        (vec![MultId::new(3, 2)], FaultKind::Constant(1)),
        (vec![MultId::new(7, 7)], FaultKind::Constant(131071)),
        (vec![MultId::new(5, 1)], FaultKind::Constant(-131072)),
        (
            vec![MultId::new(0, 1), MultId::new(2, 6), MultId::new(4, 4)],
            FaultKind::Constant(-1),
        ),
        (MultId::all().collect(), FaultKind::StuckAtZero),
    ];
    for idle in [IdleLanePolicy::ZeroFed, IdleLanePolicy::Gated] {
        for (targets, kind) in &cases {
            let mut exact = accel_with(&q, ExecMode::Exact, idle);
            let mut fast = accel_with(&q, ExecMode::Fast, idle);
            let cfg = FaultConfig::new(targets.clone(), *kind);
            exact.inject(&cfg);
            fast.inject(&cfg);
            for n in 0..3 {
                let img = data.test.images.slice_image(n);
                let a = exact.run_inference(&img).unwrap();
                let b = fast.run_inference(&img).unwrap();
                assert_eq!(
                    a.logits, b.logits,
                    "targets {targets:?} kind {kind:?} idle {idle:?} image {n}"
                );
            }
        }
    }
}

#[test]
fn register_programming_equals_api_injection() {
    let (q, data) = build_model(4, 13);
    let cfg = FaultConfig::new(
        vec![MultId::new(1, 7), MultId::new(6, 0)],
        FaultKind::Constant(1),
    );

    let mut via_api = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    via_api.inject(&cfg);

    let mut via_regs = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    // Program the same thing with raw AXI4-Lite writes.
    let sel: u64 = (1 << MultId::new(1, 7).lane()) | (1 << MultId::new(6, 0).lane());
    via_regs
        .csb_write(regmap::REG_FI_SEL_A, sel as u32)
        .unwrap();
    via_regs
        .csb_write(regmap::REG_FI_SEL_B, (sel >> 32) as u32)
        .unwrap();
    via_regs.csb_write(regmap::REG_FI_FSEL, 0x3FFFF).unwrap();
    via_regs.csb_write(regmap::REG_FI_FDATA, 1).unwrap();
    via_regs.csb_write(regmap::REG_FI_CTRL, 1).unwrap();

    let img = data.test.images.slice_image(0);
    assert_eq!(
        via_api.run_inference(&img).unwrap().logits,
        via_regs.run_inference(&img).unwrap().logits
    );
}

#[test]
fn faults_actually_corrupt_outputs() {
    let (q, data) = build_model(4, 17);
    let mut clean = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let mut faulty = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    faulty.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::Constant(131071),
    ));
    let img = data.test.images.slice_image(0);
    let a = clean.run_inference(&img).unwrap();
    let b = faulty.run_inference(&img).unwrap();
    assert_ne!(
        a.logits, b.logits,
        "an all-lane max-value fault must corrupt the logits"
    );
}

#[test]
fn clear_faults_restores_clean_behaviour() {
    let (q, data) = build_model(4, 19);
    let mut accel = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let img = data.test.images.slice_image(2);
    let clean = accel.run_inference(&img).unwrap().logits;
    accel.inject(&FaultConfig::new(
        vec![MultId::new(2, 2)],
        FaultKind::StuckAtZero,
    ));
    let _ = accel.run_inference(&img).unwrap();
    accel.clear_faults();
    assert_eq!(accel.run_inference(&img).unwrap().logits, clean);
}

#[test]
fn fast_mode_rejects_partial_overrides() {
    let (q, data) = build_model(4, 23);
    let mut accel = accel_with(&q, ExecMode::Fast, IdleLanePolicy::ZeroFed);
    accel.inject(&FaultConfig::new(
        vec![MultId::new(0, 0)],
        FaultKind::StuckBits {
            fsel: 1 << 17,
            fdata: 1 << 17,
        },
    ));
    let img = data.test.images.slice_image(0);
    assert!(matches!(
        accel.run_inference(&img),
        Err(nvfi_accel::AccelError::FastPathUnsupported)
    ));
}

#[test]
fn flip_bits_fault_is_an_involution() {
    // Running with a flip fault twice in a row gives the same (faulted)
    // result, and the faulted result differs from clean; flipping the same
    // wires via two stacked runs is not expressible, but the injector-level
    // involution is covered in unit tests — here we check end-to-end effect
    // and Auto-mode routing to the exact engine.
    let (q, data) = build_model(4, 43);
    let img = data.test.images.slice_image(0);
    let mut clean = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let clean_logits = clean.run_inference(&img).unwrap().logits;

    let cfg = FaultConfig::new(
        vec![MultId::new(0, 0)],
        FaultKind::FlipBits { mask: 1 << 16 },
    );
    let mut auto = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let mut exact = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    auto.inject(&cfg);
    exact.inject(&cfg);
    let a = auto.run_inference(&img).unwrap().logits;
    let e = exact.run_inference(&img).unwrap().logits;
    assert_eq!(a, e, "Auto must route flip faults through the exact engine");
    assert_ne!(
        a, clean_logits,
        "a bit-16 flip on a busy lane must be visible"
    );

    // Fast mode must refuse.
    let mut fast = accel_with(&q, ExecMode::Fast, IdleLanePolicy::ZeroFed);
    fast.inject(&cfg);
    assert!(matches!(
        fast.run_inference(&img),
        Err(nvfi_accel::AccelError::FastPathUnsupported)
    ));
}

#[test]
fn auto_mode_handles_bit_faults_via_exact_path() {
    let (q, data) = build_model(4, 29);
    let mut auto = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let mut exact = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    let cfg = FaultConfig::new(
        vec![MultId::new(0, 0)],
        FaultKind::StuckBits {
            fsel: 1 << 17,
            fdata: 1 << 17,
        }, // sign wire stuck at 1
    );
    auto.inject(&cfg);
    exact.inject(&cfg);
    let img = data.test.images.slice_image(0);
    assert_eq!(
        auto.run_inference(&img).unwrap().logits,
        exact.run_inference(&img).unwrap().logits
    );
}

#[test]
fn single_lane_fault_in_single_conv_touches_only_mapped_channels() {
    // Build a single-conv network by hand and verify the mapping invariant:
    // a fault on MAC m only perturbs output channels k with k % 8 == m.
    use nvfi_hwnum::Requant;
    use nvfi_quant::{QConv, QLinear, QOp, QOpKind};
    use nvfi_tensor::{Mat, Shape4};

    let k = 16usize;
    let c = 8usize;
    let weight = Tensor::from_fn(Shape4::new(k, c, 3, 3), |k, c, r, s| {
        (((k * 31 + c * 17 + r * 5 + s) % 11) as i8) - 5
    });
    let q = QuantModel {
        input_shape: Shape4::new(1, c, 8, 8),
        input_scale: 0.05,
        ops: vec![
            QOp {
                input: 0,
                kind: QOpKind::Conv(QConv {
                    weight,
                    bias: vec![0; k],
                    stride: 1,
                    pad: 1,
                    relu: false,
                    fuse_add: None,
                    requant: vec![Requant::from_scale(0.02).unwrap()],
                    add_requant: None,
                    out_scale: 0.1,
                }),
                out_scale: 0.1,
            },
            QOp {
                input: 1,
                kind: QOpKind::GlobalAvgPool,
                out_scale: 0.1,
            },
            QOp {
                input: 2,
                kind: QOpKind::Linear(QLinear {
                    weight: Mat::from_vec(2, k, vec![1i8; 2 * k]),
                    bias: vec![0; 2],
                    out_scale: 0.1,
                }),
                out_scale: 0.1,
            },
        ],
        output: 3,
    };
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let img = Tensor::from_fn(Shape4::new(1, c, 8, 8), |_, c, h, w| {
        ((c * 13 + h * 3 + w) % 17) as f32 * 0.01
    });

    // Read the conv output surface directly for clean vs faulted runs.
    let conv_out_addr = match &plan.ops[0] {
        nvfi_compiler::PlanOp::Conv(cv) => cv.output_addr,
        _ => unreachable!(),
    };
    let surf_bytes = nvfi_compiler::surface::surface_bytes(k, 8, 8) as u64;
    let out_shape = Shape4::new(1, k, 8, 8);

    let mut clean = Accelerator::new(AccelConfig::default());
    clean.load_plan(&plan).unwrap();
    clean.run_inference(&img).unwrap();
    let clean_surface = clean.dma_read(conv_out_addr, surf_bytes).unwrap();
    let clean_out = nvfi_compiler::surface::unpack_surface(&clean_surface, out_shape);

    let target_mac = 3u8;
    let mut faulty = Accelerator::new(AccelConfig::default());
    faulty.load_plan(&plan).unwrap();
    faulty.inject(&FaultConfig::new(
        vec![MultId::new(target_mac, 5)],
        FaultKind::Constant(-1),
    ));
    faulty.run_inference(&img).unwrap();
    let f_surface = faulty.dma_read(conv_out_addr, surf_bytes).unwrap();
    let fault_out = nvfi_compiler::surface::unpack_surface(&f_surface, out_shape);

    let mut touched = Vec::new();
    for kk in 0..k {
        let differs =
            (0..8).any(|h| (0..8).any(|w| clean_out.at(0, kk, h, w) != fault_out.at(0, kk, h, w)));
        if differs {
            touched.push(kk);
        }
        if kk % 8 != target_mac as usize {
            assert!(
                !differs,
                "channel {kk} not mapped to MAC {target_mac} but changed"
            );
        }
    }
    assert!(!touched.is_empty(), "fault had no visible effect");
    assert!(touched.iter().all(|kk| kk % 8 == target_mac as usize));
}

#[test]
fn idle_lane_policy_matters_for_narrow_layers() {
    // The 3-channel stem leaves lanes 3..8 idle. A fault on an idle lane
    // corrupts ZeroFed results but not Gated results *in the stem*; use a
    // single-conv model so only the stem exists.
    use nvfi_hwnum::Requant;
    use nvfi_quant::{QConv, QLinear, QOp, QOpKind};
    use nvfi_tensor::{Mat, Shape4};

    // 6 output channels keep lane 6 idle in the linear head too (its input
    // width is 6, so multiplier 6 never sees a real channel anywhere).
    let weight = Tensor::from_fn(Shape4::new(6, 3, 3, 3), |k, c, r, s| {
        (((k * 7 + c * 3 + r + s) % 9) as i8) - 4
    });
    let q = QuantModel {
        input_shape: Shape4::new(1, 3, 8, 8),
        input_scale: 0.05,
        ops: vec![
            QOp {
                input: 0,
                kind: QOpKind::Conv(QConv {
                    weight,
                    bias: vec![0; 6],
                    stride: 1,
                    pad: 1,
                    relu: false,
                    fuse_add: None,
                    requant: vec![Requant::from_scale(0.05).unwrap()],
                    add_requant: None,
                    out_scale: 0.1,
                }),
                out_scale: 0.1,
            },
            QOp {
                input: 1,
                kind: QOpKind::GlobalAvgPool,
                out_scale: 0.1,
            },
            QOp {
                input: 2,
                kind: QOpKind::Linear(QLinear {
                    weight: Mat::from_vec(2, 6, (0..12).map(|v| v as i8 - 6).collect()),
                    bias: vec![0; 2],
                    out_scale: 0.1,
                }),
                out_scale: 0.1,
            },
        ],
        output: 3,
    };
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let img = Tensor::from_fn(Shape4::new(1, 3, 8, 8), |_, c, h, w| {
        ((c + h + w) % 5) as f32 * 0.02
    });
    // Fault an idle lane (mult 6 serves channels 6, 14, ... — none exist).
    let cfg = FaultConfig::new(vec![MultId::new(0, 6)], FaultKind::Constant(1000));

    let run = |idle: IdleLanePolicy, faulted: bool| {
        let mut a = Accelerator::new(AccelConfig {
            idle_lanes: idle,
            ..Default::default()
        });
        a.load_plan(&plan).unwrap();
        if faulted {
            a.inject(&cfg);
        }
        a.run_inference(&img).unwrap().logits
    };

    let clean = run(IdleLanePolicy::ZeroFed, false);
    assert_eq!(clean, run(IdleLanePolicy::Gated, false));
    // Gated: idle-lane fault is invisible.
    assert_eq!(clean, run(IdleLanePolicy::Gated, true));
    // ZeroFed: the forced products enter the adder tree.
    assert_ne!(clean, run(IdleLanePolicy::ZeroFed, true));
}

#[test]
fn transient_window_limits_fault_scope() {
    let (q, data) = build_model(4, 31);
    let img = data.test.images.slice_image(0);

    let mut clean = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    let _ = clean.run_inference(&img).unwrap();
    let total_cycles = clean.mac_cycles_retired();
    assert_eq!(
        Some(total_cycles),
        clean.total_mac_cycles(),
        "retired counter must agree with the plan schedule table"
    );

    // Window entirely after the run: rejected as a silent no-op (it used to
    // run a fault-free campaign at exact-engine cost).
    let mut late = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    late.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::Constant(131071),
    ));
    let err = late
        .set_fault_window(Some(total_cycles * 10..total_cycles * 11))
        .unwrap_err();
    assert!(
        err.to_string().contains("cannot overlap any MAC cycle"),
        "unexpected message: {err}"
    );
    // Same for a window that ends before the first cycle retires, and for
    // an empty window.
    assert!(late.set_fault_window(Some(0..1)).is_err());
    assert!(late.set_fault_window(Some(10..10)).is_err());

    // Window covering the whole first inference: same as permanent.
    let mut pulse = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    pulse.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::Constant(131071),
    ));
    pulse.set_fault_window(Some(0..total_cycles + 1)).unwrap();
    let mut permanent = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    permanent.inject(&FaultConfig::new(
        MultId::all().collect(),
        FaultKind::Constant(131071),
    ));
    assert_eq!(
        pulse.run_inference(&img).unwrap().logits,
        permanent.run_inference(&img).unwrap().logits
    );
}

#[test]
fn fast_mode_rejects_windows_at_set_time() {
    // ExecMode::Fast can never arm injection for a windowed op; the
    // conflict must surface when the window is programmed, not at inference
    // time deep inside the engine.
    let (q, _) = build_model(4, 53);
    let mut fast = accel_with(&q, ExecMode::Fast, IdleLanePolicy::ZeroFed);
    assert!(matches!(
        fast.set_fault_window(Some(10..20)),
        Err(nvfi_accel::AccelError::FastPathUnsupported)
    ));
    // Clearing the window is always fine.
    fast.set_fault_window(None).unwrap();
}

/// A window programmed before any plan is loaded (nothing to validate
/// against yet) — or left over from a previous plan — is re-validated when
/// a plan is installed: a stale past-the-end window would otherwise
/// silently disarm every injection under op-scoped execution.
#[test]
fn stale_window_is_revalidated_at_plan_load() {
    let (q, _) = build_model(4, 67);
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let mut a = Accelerator::new(AccelConfig::default());
    // No plan yet: the window is accepted provisionally...
    a.set_fault_window(Some(u64::MAX - 10..u64::MAX)).unwrap();
    // ...and rejected by the loader of a plan it cannot overlap.
    assert!(matches!(
        a.load_plan(&plan),
        Err(nvfi_accel::AccelError::BadPlan(_))
    ));
    // A window the plan can observe survives the load.
    a.set_fault_window(Some(1..100)).unwrap();
    a.load_plan(&plan).unwrap();
    assert!(a.total_mac_cycles().unwrap() >= 100);
}

/// Exhaustive window-placement equivalence of op-scoped execution: for a
/// window aligned to every op boundary, covering single ops, straddling op
/// pairs, and clipping single cycles, the Auto-mode pipeline
/// (prefix-fast / window-exact / suffix-fast) must match the all-exact
/// ground truth bit for bit — for a full-override fault *and* a
/// bit-granular flip fault.
#[test]
fn op_scoped_window_placement_matches_all_exact() {
    let (q, data) = build_model(4, 59);
    let img = data.test.images.slice_image(0);
    let probe = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    let spans: Vec<_> = probe.mac_cycle_spans().to_vec();
    let total = probe.total_mac_cycles().unwrap();
    let mac_spans: Vec<_> = spans.iter().filter(|s| !s.is_empty()).cloned().collect();
    assert!(mac_spans.len() >= 3, "fixture has several MAC ops");

    let mut windows: Vec<std::ops::Range<u64>> = Vec::new();
    for s in &mac_spans {
        // Exactly one op.
        windows.push(s.clone());
        // A single cycle inside the op.
        let mid = s.start + (s.end - s.start) / 2;
        windows.push(mid..mid + 1);
    }
    for w in mac_spans.windows(2) {
        // Straddling two (or more) ops: mid of one to mid of the next.
        let a = w[0].start + (w[0].end - w[0].start) / 2;
        let b = w[1].start + (w[1].end - w[1].start) / 2;
        windows.push(a..b);
    }
    // The whole inference, and a window overhanging the end.
    windows.push(1..total + 1);
    windows.push(total..total * 2);

    let faults = [
        FaultConfig::new(MultId::all().collect(), FaultKind::Constant(131071)),
        FaultConfig::new(
            vec![MultId::new(0, 0), MultId::new(3, 2)],
            FaultKind::FlipBits { mask: 1 << 16 },
        ),
    ];
    let mut any_corruption = false;
    let clean_logits = {
        let mut a = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
        a.run_inference(&img).unwrap().logits
    };
    for fault in &faults {
        for w in &windows {
            let mut exact = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
            let mut scoped = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
            exact.inject(fault);
            scoped.inject(fault);
            exact.set_fault_window(Some(w.clone())).unwrap();
            scoped.set_fault_window(Some(w.clone())).unwrap();
            let a = exact.run_inference(&img).unwrap();
            let b = scoped.run_inference(&img).unwrap();
            assert_eq!(
                a.logits, b.logits,
                "op-scoped != all-exact for window {w:?} fault {fault:?}"
            );
            assert_eq!(
                exact.mac_cycles_retired(),
                scoped.mac_cycles_retired(),
                "cycle accounting must be path-independent (window {w:?})"
            );
            any_corruption |= a.logits != clean_logits;
        }
    }
    assert!(
        any_corruption,
        "at least one windowed fault must perturb the logits"
    );
}

/// The golden-prefix protocol at engine level: capturing the boundary's
/// live-in surfaces after a fault-free prefix run and restoring them into
/// a suffix run reproduces the full windowed inference bit for bit, for
/// every op boundary.
#[test]
fn golden_prefix_restore_is_bit_identical() {
    let (q, data) = build_model(4, 61);
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let img_f32 = data.test.images.slice_image(0);
    let img = q.quantize_input(&img_f32);
    let probe = accel_with(&q, ExecMode::Exact, IdleLanePolicy::ZeroFed);
    let spans: Vec<_> = probe.mac_cycle_spans().to_vec();

    for (boundary, span) in spans.iter().enumerate().take(plan.ops.len()).skip(1) {
        if span.is_empty() {
            continue; // pool op: no MAC cycles, no window can bite here
        }
        let window = span.clone();
        let fault = FaultConfig::new(MultId::all().collect(), FaultKind::Constant(131071));

        // Ground truth: the full op-scoped windowed run.
        let mut full = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
        full.inject(&fault);
        full.set_fault_window(Some(window.clone())).unwrap();
        let want = full.run_inference_i8(&img).unwrap();

        // Golden capture (fault-free), then restore + suffix under fault.
        let mut golden = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
        let surfaces = plan.live_in_surfaces(boundary);
        golden.run_prefix_i8_view(img.as_slice(), boundary).unwrap();
        let mut data = Vec::new();
        for &(addr, bytes) in &surfaces {
            data.extend(golden.dma_read(addr, bytes).unwrap());
        }
        golden.inject(&fault);
        golden.set_fault_window(Some(window.clone())).unwrap();
        let got = golden
            .run_suffix_i8_view(boundary, &surfaces, &data)
            .unwrap();
        assert_eq!(
            want.logits, got.logits,
            "golden restore diverged at boundary {boundary} (window {window:?})"
        );
        assert_eq!(
            full.mac_cycles_retired(),
            golden.mac_cycles_retired(),
            "suffix run must end on the same retired count (boundary {boundary})"
        );
    }
}

#[test]
fn plan_via_command_fifo_matches_direct_load() {
    let (q, data) = build_model(4, 37);
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();

    let mut direct = Accelerator::new(AccelConfig::default());
    direct.load_plan(&plan).unwrap();

    let mut streamed = Accelerator::new(AccelConfig::default());
    streamed
        .apply_reg_stream(&nvfi_compiler::plan::encode_reg_stream(&plan))
        .unwrap();
    streamed.commit_cmd_fifo().unwrap();
    // Weights arrive by DMA, as a real driver would do it.
    for (addr, bytes) in &plan.weight_image {
        streamed.dma_write(*addr, bytes).unwrap();
    }

    let img = data.test.images.slice_image(0);
    assert_eq!(
        direct.run_inference(&img).unwrap().logits,
        streamed.run_inference(&img).unwrap().logits
    );
}

#[test]
fn weight_memory_seu_perturbs_and_double_flip_restores() {
    let (q, data) = build_model(4, 47);
    let plan = nvfi_compiler::compile(&q, nvfi_compiler::lower::DEFAULT_DRAM_CAPACITY).unwrap();
    let mut accel = Accelerator::new(AccelConfig::default());
    accel.load_plan(&plan).unwrap();
    let img = data.test.images.slice_image(0);
    let clean = accel.run_inference(&img).unwrap().logits;

    // Flip the MSB of a weight byte in the first conv's region.
    let (addr, _) = &plan.weight_image[0];
    accel.flip_dram_bit(*addr, 7).unwrap();
    let faulted = accel.run_inference(&img).unwrap().logits;
    assert_ne!(clean, faulted, "a weight-memory SEU must be visible");

    // SEU is a bit flip: flipping again restores the original behaviour.
    accel.flip_dram_bit(*addr, 7).unwrap();
    assert_eq!(accel.run_inference(&img).unwrap().logits, clean);
}

#[test]
fn perf_report_is_stable_and_fault_independent() {
    let (q, data) = build_model(4, 41);
    let mut a = accel_with(&q, ExecMode::Auto, IdleLanePolicy::ZeroFed);
    let img = data.test.images.slice_image(0);
    let r1 = a.run_inference(&img).unwrap().perf;
    a.inject(&FaultConfig::new(
        vec![MultId::new(0, 0)],
        FaultKind::StuckAtZero,
    ));
    let r2 = a.run_inference(&img).unwrap().perf;
    // FI muxes are combinational: latency identical with and without faults.
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert!(r1.latency_ms() > 0.0);
}
