//! Structural synthesis cost model: LUT/FF estimates for the accelerator's
//! CMAC datapath and its fault-injection variants — the source of the
//! synthesis rows of the paper's Table I.
//!
//! The model builds an explicit component-level netlist ([`Netlist`],
//! [`components`]) and maps it onto UltraScale+-style primitives (6-input
//! LUTs, flip-flops, CARRY8 chains, optional DSP48 slices). The interesting
//! numbers of the paper are **deltas**:
//!
//! * adding *constant-error* injection to selected multipliers costs
//!   **+18 LUTs** (one gating LUT per 18-bit lane wire of the shared
//!   constant network);
//! * adding *variable-error* injection (runtime-selectable `fsel`/`fdata`)
//!   costs **+0.71 % LUTs / +0.31 % FFs** — per-multiplier 2:1 muxes packed
//!   two bits per LUT6, per-multiplier select gates, the AXI4-Lite config
//!   block, and fan-out replicas of the override registers.
//!
//! Those deltas are computed structurally here. The *absolute* base counts
//! (94,438 LUT / 104,732 FF for the whole NVDLA build) include the large
//! non-CMAC remainder (CDMA, buffers, SDP, PDP, bridges) that this
//! workspace does not model gate-by-gate; the remainder is a documented
//! calibration constant ([`designs::rest_of_design`]) so that totals are
//! comparable with the paper's table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod designs;
mod netlist;
mod report;
pub mod timing;

pub use netlist::Netlist;
pub use report::{table1_synthesis_rows, SynthRow};
