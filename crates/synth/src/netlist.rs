//! Primitive-count netlist.

use core::fmt;
use core::ops::{Add, AddAssign, Mul};

/// Resource counts after technology mapping.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Netlist {
    /// 6-input look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// CARRY8 carry-chain segments.
    pub carry8: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl Netlist {
    /// The empty netlist.
    pub const EMPTY: Netlist = Netlist {
        luts: 0,
        ffs: 0,
        carry8: 0,
        dsps: 0,
    };

    /// Creates a netlist from LUT/FF counts only.
    #[must_use]
    pub const fn lut_ff(luts: u64, ffs: u64) -> Self {
        Netlist {
            luts,
            ffs,
            carry8: 0,
            dsps: 0,
        }
    }
}

impl Add for Netlist {
    type Output = Netlist;
    fn add(self, rhs: Self) -> Self {
        Netlist {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            carry8: self.carry8 + rhs.carry8,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Netlist {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Netlist {
    type Output = Netlist;
    fn mul(self, n: u64) -> Self {
        Netlist {
            luts: self.luts * n,
            ffs: self.ffs * n,
            carry8: self.carry8 * n,
            dsps: self.dsps * n,
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT, {} FF, {} CARRY8, {} DSP",
            self.luts, self.ffs, self.carry8, self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Netlist::lut_ff(10, 20);
        let b = Netlist {
            luts: 1,
            ffs: 2,
            carry8: 3,
            dsps: 4,
        };
        let s = a + b;
        assert_eq!(
            s,
            Netlist {
                luts: 11,
                ffs: 22,
                carry8: 3,
                dsps: 4
            }
        );
        assert_eq!(
            b * 3,
            Netlist {
                luts: 3,
                ffs: 6,
                carry8: 9,
                dsps: 12
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c, s);
    }

    #[test]
    fn display_nonempty() {
        assert!(Netlist::EMPTY.to_string().contains("LUT"));
    }
}
