//! The synthesis rows of Table I.

use core::fmt;

use crate::designs::{full_design, FiVariant, MultMapping, PAPER_BASE_FFS, PAPER_BASE_LUTS};

/// One synthesis row: a design variant with model and paper numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthRow {
    /// Variant label as it appears in the paper's Table I.
    pub label: &'static str,
    /// Modelled LUT count.
    pub luts: u64,
    /// Modelled FF count.
    pub ffs: u64,
    /// Paper's reported LUT count (None where the paper has no row).
    pub paper_luts: Option<u64>,
    /// Paper's reported FF count.
    pub paper_ffs: Option<u64>,
}

impl fmt::Display for SynthRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<32} {:>8} {:>8}", self.label, self.luts, self.ffs)?;
        if let (Some(pl), Some(pf)) = (self.paper_luts, self.paper_ffs) {
            write!(f, "   (paper: {pl:>8} {pf:>8})")?;
        }
        Ok(())
    }
}

/// The three synthesis rows of Table I (base, +FI constant, +FI variable),
/// with paper reference values attached.
#[must_use]
pub fn table1_synthesis_rows() -> Vec<SynthRow> {
    let base = full_design(FiVariant::None, MultMapping::Lut);
    let constant = full_design(FiVariant::Constant, MultMapping::Lut);
    let variable = full_design(FiVariant::Variable, MultMapping::Lut);
    vec![
        SynthRow {
            label: "NVDLA",
            luts: base.luts,
            ffs: base.ffs,
            paper_luts: Some(PAPER_BASE_LUTS),
            paper_ffs: Some(PAPER_BASE_FFS),
        },
        SynthRow {
            label: "NVDLA + FI (constant error)",
            luts: constant.luts,
            ffs: constant.ffs,
            paper_luts: Some(94_456),
            paper_ffs: Some(104_717),
        },
        SynthRow {
            label: "NVDLA + FI (variable error)",
            luts: variable.luts,
            ffs: variable.ffs,
            paper_luts: Some(96_081),
            paper_ffs: Some(106_150),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_rows_in_paper_order() {
        let rows = table1_synthesis_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "NVDLA");
        assert!(rows[1].luts > rows[0].luts);
        assert!(rows[2].luts > rows[1].luts);
    }

    #[test]
    fn base_row_reproduces_paper_exactly() {
        let rows = table1_synthesis_rows();
        assert_eq!(Some(rows[0].luts), rows[0].paper_luts);
        assert_eq!(Some(rows[0].ffs), rows[0].paper_ffs);
    }

    #[test]
    fn constant_row_close_to_paper() {
        let rows = table1_synthesis_rows();
        let model_delta = rows[1].luts as i64 - rows[0].luts as i64;
        let paper_delta = rows[1].paper_luts.unwrap() as i64 - rows[0].paper_luts.unwrap() as i64;
        assert_eq!(
            model_delta, paper_delta,
            "constant-error delta must match (+18)"
        );
    }

    #[test]
    fn display_includes_paper_reference() {
        let rows = table1_synthesis_rows();
        assert!(rows[0].to_string().contains("paper"));
    }
}
