//! Component-level building blocks and their primitive costs.
//!
//! Cost assumptions (documented so the model is auditable):
//!
//! * **Adders**: one LUT per result bit plus one CARRY8 per 8 bits; a
//!   pipeline register costs one FF per bit.
//! * **Signed 8x8 multiplier in LUTs**: Booth-free partial-product array,
//!   four 9-bit rows compressed by a two-level adder tree — approx. 57 LUTs
//!   with an 18-bit product register (matching Vivado's typical ~55-60 LUT
//!   result for `(* use_dsp = "no" *)` int8 multipliers).
//! * **2:1 mux**: two bits per LUT6 (the O5/O6 dual-output packing).
//! * **FI constant injection**: the shared constant network gates each of
//!   the 18 product wires once — 18 LUTs total, no state.
//! * **FI variable injection**: per multiplier, an 18-bit 2:1 mux (9 LUTs)
//!   plus a select gate (1 LUT); globally, the `sel`/`fsel`/`fdata`/`ctrl`
//!   config registers, 4 fan-out replicas of the 36-bit override pair, and
//!   the AXI4-Lite slave block.

use crate::netlist::Netlist;

/// An `width`-bit ripple/carry adder mapped to LUT + CARRY8.
#[must_use]
pub fn adder(width: u64) -> Netlist {
    Netlist {
        luts: width,
        ffs: 0,
        carry8: width.div_ceil(8),
        dsps: 0,
    }
}

/// A `width`-bit register.
#[must_use]
pub fn register(width: u64) -> Netlist {
    Netlist::lut_ff(0, width)
}

/// A `width`-bit 2:1 multiplexer (two bits per LUT6 via dual outputs).
#[must_use]
pub fn mux2(width: u64) -> Netlist {
    Netlist::lut_ff(width.div_ceil(2), 0)
}

/// A signed 8x8 multiplier in LUT fabric with a pipelined 18-bit product
/// register.
#[must_use]
pub fn mult8x8_lut() -> Netlist {
    // 4 compressed partial-product rows (9 LUTs each) + two adder levels
    // (12 + 9 LUTs) = 57 LUTs; 18 FF product register.
    Netlist {
        luts: 57,
        ffs: 18,
        carry8: 4,
        dsps: 0,
    }
}

/// A signed 8x8 multiplier in a DSP48 slice (ablation variant).
#[must_use]
pub fn mult8x8_dsp() -> Netlist {
    Netlist {
        luts: 2,
        ffs: 18,
        carry8: 0,
        dsps: 1,
    }
}

/// The 8-input adder tree of one MAC unit over 18-bit lanes
/// (4x19b + 2x20b + 1x21b adders, one 21-bit pipeline register).
#[must_use]
pub fn adder_tree_8x18() -> Netlist {
    adder(19) * 4 + adder(20) * 2 + adder(21) + register(21)
}

/// One 32-bit accumulator (adder + register) of the CACC.
#[must_use]
pub fn accumulator32() -> Netlist {
    adder(32) + register(32)
}

/// An AXI4-Lite slave with `n_regs` mapped 32-bit registers (address decode
/// + read mux + handshake state).
#[must_use]
pub fn axi4_lite_slave(n_regs: u64) -> Netlist {
    Netlist {
        luts: 20 + 4 * n_regs, // decode + per-register read mux slices
        ffs: 40 + 8,           // addr/data/resp pipeline + FSM
        carry8: 0,
        dsps: 0,
    }
}

/// Constant-error fault injection for (any subset of) multipliers: the
/// shared 18-wire constant network with one gating LUT per wire.
/// This is the paper's "+18 LUTs" variant.
#[must_use]
pub fn fi_constant() -> Netlist {
    Netlist::lut_ff(18, 0)
}

/// Variable-error fault injection: runtime-programmable per-wire override
/// on every multiplier.
#[must_use]
pub fn fi_variable(n_mults: u64) -> Netlist {
    // Per multiplier: 18-bit 2:1 mux + select gate.
    let per_mult = mux2(18) + Netlist::lut_ff(1, 0);
    // Global config: sel(64) + fsel(18) + fdata(18) + ctrl(1) registers.
    let config = register(64 + 18 + 18 + 1);
    // Fan-out replicas of the 36-bit fsel/fdata pair (one per array
    // quadrant) to meet timing across the 64-multiplier array.
    let replicas = register(36) * 4;
    // AXI4-Lite block with the 5 FI registers.
    per_mult * n_mults + config + replicas + axi4_lite_slave(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_costs_scale_linearly() {
        assert_eq!(adder(8).luts, 8);
        assert_eq!(adder(8).carry8, 1);
        assert_eq!(adder(9).carry8, 2);
    }

    #[test]
    fn mux_packs_two_bits_per_lut() {
        assert_eq!(mux2(18).luts, 9);
        assert_eq!(mux2(17).luts, 9);
        assert_eq!(mux2(2).luts, 1);
    }

    #[test]
    fn fi_constant_is_18_luts_stateless() {
        let n = fi_constant();
        assert_eq!(n.luts, 18);
        assert_eq!(n.ffs, 0);
    }

    #[test]
    fn fi_variable_matches_paper_scale() {
        // Paper text: +0.71% LUT, +0.31% FF over 94438/104732.
        let n = fi_variable(64);
        let lut_pct = n.luts as f64 / 94438.0 * 100.0;
        let ff_pct = n.ffs as f64 / 104732.0 * 100.0;
        assert!((0.5..1.0).contains(&lut_pct), "LUT delta {lut_pct:.2}%");
        assert!((0.2..0.45).contains(&ff_pct), "FF delta {ff_pct:.2}%");
    }

    #[test]
    fn dsp_variant_trades_luts_for_dsps() {
        assert!(mult8x8_dsp().luts < mult8x8_lut().luts);
        assert_eq!(mult8x8_dsp().dsps, 1);
    }
}
