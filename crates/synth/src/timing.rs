//! Static timing model: why the fault injectors do not change the clock.
//!
//! The paper reports the same 4.59 ms inference (i.e. the same 187.5 MHz
//! clock) with and without FI. Structurally that holds because the
//! injector mux sits **after the multiplier's product register**, at the
//! head of the adder-tree pipeline stage — and that stage has fewer logic
//! levels than the multiplier stage, so the critical path is unchanged.
//!
//! The model here is deliberately simple (levels-of-logic times a per-level
//! delay plus clocking overhead) but it is structural: each pipeline stage
//! of the CMAC is enumerated with its LUT depth, the FI variants add their
//! mux level to the correct stage, and `fmax` falls out.

use crate::designs::FiVariant;

/// Combinational delay budget per LUT level including routing
/// (UltraScale+ -2 speed grade ballpark).
pub const LUT_LEVEL_DELAY_NS: f64 = 0.75;

/// Clock-to-out plus setup overhead per stage.
pub const CLOCK_OVERHEAD_NS: f64 = 0.5;

/// The paper's target clock.
pub const TARGET_CLOCK_MHZ: f64 = 187.5;

/// One pipeline stage of the CMAC datapath.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name.
    pub name: &'static str,
    /// LUT levels between the stage's registers.
    pub levels: u32,
}

impl StageTiming {
    /// Stage delay in nanoseconds.
    #[must_use]
    pub fn delay_ns(&self) -> f64 {
        f64::from(self.levels) * LUT_LEVEL_DELAY_NS + CLOCK_OVERHEAD_NS
    }
}

/// The CMAC pipeline stages for a given FI variant.
///
/// * `multiply`: Booth-less partial products + two compression levels,
///   ending in the 18-bit product register — 6 LUT levels.
/// * `adder_tree`: the 8:1 sum of product lanes — 3 LUT levels (carry
///   chains), **plus one mux level when fault injection is present** (the
///   injector sits between the product register and the tree).
/// * `accumulate`: the 32-bit accumulator add — 1 level plus carry.
#[must_use]
pub fn pipeline_stages(variant: FiVariant) -> Vec<StageTiming> {
    let fi_levels = match variant {
        FiVariant::None => 0,
        FiVariant::Constant | FiVariant::Variable => 1,
    };
    vec![
        StageTiming {
            name: "multiply",
            levels: 6,
        },
        StageTiming {
            name: "adder_tree",
            levels: 3 + fi_levels,
        },
        StageTiming {
            name: "accumulate",
            levels: 2,
        },
    ]
}

/// The slowest stage of the pipeline.
///
/// # Panics
///
/// Never panics (the stage list is non-empty by construction).
#[must_use]
pub fn critical_stage(variant: FiVariant) -> StageTiming {
    pipeline_stages(variant)
        .into_iter()
        .max_by(|a, b| a.delay_ns().total_cmp(&b.delay_ns()))
        .expect("pipeline has stages")
}

/// Estimated maximum clock frequency in MHz.
#[must_use]
pub fn fmax_mhz(variant: FiVariant) -> f64 {
    1e3 / critical_stage(variant).delay_ns()
}

/// Whether the design variant closes timing at the paper's 187.5 MHz.
#[must_use]
pub fn meets_target_clock(variant: FiVariant) -> bool {
    fmax_mhz(variant) >= TARGET_CLOCK_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_meets_187_5_mhz() {
        for v in [FiVariant::None, FiVariant::Constant, FiVariant::Variable] {
            assert!(
                meets_target_clock(v),
                "{v:?}: fmax {:.1} MHz below target",
                fmax_mhz(v)
            );
        }
    }

    #[test]
    fn fi_mux_lands_in_the_adder_stage_not_the_multiplier() {
        let base = pipeline_stages(FiVariant::None);
        let fi = pipeline_stages(FiVariant::Variable);
        assert_eq!(base[0], fi[0], "multiplier stage untouched");
        assert_eq!(
            fi[1].levels,
            base[1].levels + 1,
            "one mux level in the tree stage"
        );
    }

    #[test]
    fn critical_path_is_the_multiplier_with_and_without_fi() {
        for v in [FiVariant::None, FiVariant::Constant, FiVariant::Variable] {
            assert_eq!(critical_stage(v).name, "multiply");
        }
    }

    #[test]
    fn fmax_is_therefore_fi_independent() {
        let f0 = fmax_mhz(FiVariant::None);
        let f1 = fmax_mhz(FiVariant::Constant);
        let f2 = fmax_mhz(FiVariant::Variable);
        assert_eq!(f0, f1);
        assert_eq!(f1, f2);
    }

    #[test]
    fn stage_delay_math() {
        let s = StageTiming {
            name: "x",
            levels: 4,
        };
        assert!((s.delay_ns() - (4.0 * LUT_LEVEL_DELAY_NS + CLOCK_OVERHEAD_NS)).abs() < 1e-12);
    }
}
