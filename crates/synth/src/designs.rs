//! Whole-design assemblies: the CMAC array with its FI variants, plus the
//! calibrated rest-of-design constant.

use crate::components;
use crate::netlist::Netlist;

/// Fault-injection hardware variant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FiVariant {
    /// No injection hardware (baseline NVDLA).
    None,
    /// Synthesis-time constant error on selected multipliers.
    Constant,
    /// Fully register-programmable injection (the platform's shipping
    /// configuration).
    Variable,
}

/// Multiplier mapping choice (ablation).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MultMapping {
    /// LUT-fabric multipliers (as the paper's build, which adds FI muxes in
    /// fabric).
    Lut,
    /// DSP48 multipliers.
    Dsp,
}

/// Number of multipliers in the array (8 MAC units x 8).
pub const N_MULTS: u64 = 64;
/// Number of MAC units.
pub const N_MACS: u64 = 8;

/// The paper's total utilization for the baseline NVDLA build on the
/// XCZU7EV (Table I): used to calibrate the non-CMAC remainder.
pub const PAPER_BASE_LUTS: u64 = 94_438;
/// Baseline flip-flop count from the paper's Table I.
pub const PAPER_BASE_FFS: u64 = 104_732;

/// The CMAC datapath: multipliers, per-MAC adder trees, accumulators and
/// the operand sequencing registers.
#[must_use]
pub fn cmac(mapping: MultMapping) -> Netlist {
    let mult = match mapping {
        MultMapping::Lut => components::mult8x8_lut(),
        MultMapping::Dsp => components::mult8x8_dsp(),
    };
    // Operand registers per MAC: 8 activations + 8 weights, 8 bits each.
    let operand_regs = components::register(2 * 8 * 8);
    let per_mac =
        mult * 8 + components::adder_tree_8x18() + components::accumulator32() + operand_regs;
    per_mac * N_MACS
}

/// The fault-injection hardware for a variant.
#[must_use]
pub fn fi_block(variant: FiVariant) -> Netlist {
    match variant {
        FiVariant::None => Netlist::EMPTY,
        FiVariant::Constant => components::fi_constant(),
        FiVariant::Variable => components::fi_variable(N_MULTS),
    }
}

/// The calibrated non-CMAC remainder (CDMA, convolution buffer control,
/// CSC, SDP, PDP, bridges, interconnect) such that
/// `cmac(Lut) + REST_OF_DESIGN == PAPER_BASE_*`.
///
/// This is the one non-structural constant in the model; everything the
/// fault-injection experiments vary is computed from components.
#[must_use]
pub fn rest_of_design() -> Netlist {
    let c = cmac(MultMapping::Lut);
    Netlist::lut_ff(PAPER_BASE_LUTS - c.luts, PAPER_BASE_FFS - c.ffs)
}

/// A full design: CMAC + FI variant + rest of design.
#[must_use]
pub fn full_design(variant: FiVariant, mapping: MultMapping) -> Netlist {
    cmac(mapping) + fi_block(variant) + rest_of_design()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_design_matches_paper_totals() {
        let base = full_design(FiVariant::None, MultMapping::Lut);
        assert_eq!(base.luts, PAPER_BASE_LUTS);
        assert_eq!(base.ffs, PAPER_BASE_FFS);
    }

    #[test]
    fn constant_fi_adds_exactly_18_luts() {
        let base = full_design(FiVariant::None, MultMapping::Lut);
        let fi = full_design(FiVariant::Constant, MultMapping::Lut);
        assert_eq!(fi.luts - base.luts, 18);
        assert_eq!(fi.ffs, base.ffs);
    }

    #[test]
    fn variable_fi_delta_is_sub_percent() {
        let base = full_design(FiVariant::None, MultMapping::Lut);
        let fi = full_design(FiVariant::Variable, MultMapping::Lut);
        let dlut = (fi.luts - base.luts) as f64 / base.luts as f64 * 100.0;
        let dff = (fi.ffs - base.ffs) as f64 / base.ffs as f64 * 100.0;
        assert!(dlut < 1.0, "LUT overhead {dlut:.2}% should be sub-percent");
        assert!(dff < 0.5, "FF overhead {dff:.2}% should be well below 0.5%");
        assert!(dlut > 0.0 && dff > 0.0);
    }

    #[test]
    fn variants_are_ordered_by_cost() {
        let none = full_design(FiVariant::None, MultMapping::Lut).luts;
        let constant = full_design(FiVariant::Constant, MultMapping::Lut).luts;
        let variable = full_design(FiVariant::Variable, MultMapping::Lut).luts;
        assert!(none < constant && constant < variable);
    }

    #[test]
    fn dsp_mapping_saves_fabric() {
        let lut = full_design(FiVariant::None, MultMapping::Lut);
        let dsp = full_design(FiVariant::None, MultMapping::Dsp);
        assert!(dsp.luts < lut.luts);
        assert_eq!(dsp.dsps, 64); // 8 mults x 8 MACs, one DSP each
    }

    #[test]
    fn cmac_is_a_plausible_fraction_of_the_design() {
        let c = cmac(MultMapping::Lut);
        // 64 LUT multipliers + trees: a few thousand LUTs, well under the
        // full-chip count.
        assert!(c.luts > 2000 && c.luts < 20_000, "{}", c.luts);
        assert!(c.ffs > 2000 && c.ffs < 20_000, "{}", c.ffs);
    }
}
