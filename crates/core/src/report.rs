//! Result rendering: ASCII box plots and heat maps for the terminal, plus
//! CSV and JSON export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::stats::{FiveNum, HeatMap};

/// Renders one horizontal ASCII box plot row for a five-number summary on a
/// fixed `[lo, hi]` scale of `width` characters.
///
/// # Panics
///
/// Panics if `hi <= lo` or `width < 10`.
#[must_use]
pub fn box_plot_row(stats: &FiveNum, lo: f64, hi: f64, width: usize) -> String {
    assert!(hi > lo, "degenerate box-plot scale");
    assert!(width >= 10, "box plot too narrow");
    let pos = |v: f64| -> usize {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((width - 1) as f64 * t).round() as usize
    };
    let mut row: Vec<char> = vec![' '; width];
    let (pmin, pq1, pmed, pq3, pmax) = (
        pos(stats.min),
        pos(stats.q1),
        pos(stats.median),
        pos(stats.q3),
        pos(stats.max),
    );
    for cell in row.iter_mut().take(pq1).skip(pmin) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(pmax).skip(pq3) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(pq3 + 1).skip(pq1) {
        *cell = '=';
    }
    row[pmin] = '|';
    row[pmax] = '|';
    row[pq1] = '[';
    row[pq3] = ']';
    row[pmed] = 'M';
    row.into_iter().collect()
}

/// Renders a labelled group of box plots (e.g. Fig. 2: one row per
/// `(#multipliers, injected value)`) with a shared scale and axis.
#[must_use]
pub fn box_plot_chart(title: &str, rows: &[(String, FiveNum)], width: usize) -> String {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in rows {
        lo = lo.min(s.min);
        hi = hi.max(s.max);
    }
    if !lo.is_finite() || hi - lo < 1e-9 {
        lo = -1.0;
        hi = 1.0;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(6);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:label_w$} {:<width$}",
        "",
        format!("{lo:.1}{}{hi:.1}", " ".repeat(width.saturating_sub(10)))
    );
    for (label, s) in rows {
        let _ = writeln!(out, "{label:label_w$} {}", box_plot_row(s, lo, hi, width));
    }
    out
}

/// Shading palette from most negative (worst drop) to zero.
const SHADES: &[char] = &['@', '%', '#', '*', '+', '=', '-', ':', '.', ' '];

/// Renders an accuracy-drop heat map (negative cells = larger drop = darker)
/// with 1-based MAC/multiplier labels as in the paper's Fig. 3.
#[must_use]
pub fn heat_map_chart(title: &str, map: &HeatMap, lo: f64, hi: f64) -> String {
    let span = (hi - lo).max(1e-9);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "        mult:  {}",
        (1..=map.cols())
            .map(|c| format!("{c} "))
            .collect::<String>()
    );
    for r in 0..map.rows() {
        let _ = write!(out, "  MAC {:>2}:      ", r + 1);
        for c in 0..map.cols() {
            let t = ((map.at(r, c) - lo) / span).clamp(0.0, 1.0);
            let idx = (t * (SHADES.len() - 1) as f64).round() as usize;
            let _ = write!(out, "{} ", SHADES[idx]);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "  scale: '@' = {lo:.1} pp ... ' ' = {hi:.1} pp");
    out
}

/// Writes a CSV file (header + rows) under `dir`, creating it if needed.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    fs::write(&path, text)?;
    Ok(path)
}

/// Writes a JSON value under `dir`, creating it if needed.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_json(
    dir: &Path,
    name: &str,
    value: &serde_json::Value,
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FiveNum {
        FiveNum::from_sample(&[-10.0, -8.0, -5.0, -2.0, 0.0])
    }

    #[test]
    fn box_plot_markers_present_and_ordered() {
        let row = box_plot_row(&sample(), -12.0, 2.0, 40);
        assert_eq!(row.len(), 40);
        let pm = row.find('M').unwrap();
        let p1 = row.find('[').unwrap();
        let p3 = row.find(']').unwrap();
        assert!(p1 < pm && pm < p3, "{row}");
        assert_eq!(row.matches('|').count(), 2);
    }

    #[test]
    fn chart_has_one_row_per_entry() {
        let rows = vec![
            ("k=1 v=0".to_string(), sample()),
            ("k=2 v=0".to_string(), sample()),
        ];
        let chart = box_plot_chart("Fig2", &rows, 40);
        assert_eq!(chart.lines().count(), 4); // title + axis + 2 rows
        assert!(chart.contains("k=2 v=0"));
    }

    #[test]
    fn heat_map_extremes_use_palette_ends() {
        let mut h = HeatMap::new(2, 2);
        h.set(0, 0, -12.0);
        h.set(1, 1, 0.0);
        let chart = heat_map_chart("Fig3", &h, -12.0, 0.0);
        assert!(
            chart.contains('@'),
            "worst cell should be darkest:\n{chart}"
        );
        assert!(chart.contains("MAC  1"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("nvfi_report_test");
        let path = write_csv(
            &dir,
            "t.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn json_writes_pretty() {
        let dir = std::env::temp_dir().join("nvfi_report_test");
        let path = write_json(&dir, "t.json", &serde_json::json!({"x": [1, 2, 3]})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"x\""));
    }
}
