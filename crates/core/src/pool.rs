//! Device pools: shard one evaluation batch across several device instances.
//!
//! A fault-injection campaign with few fault configurations but a large
//! evaluation set is serialized by per-configuration devices: one device
//! evaluates every image while the other worker threads idle. A
//! [`DevicePool`] is the batch-level counterpart — a set of identical
//! [`EmulationPlatform`] instances (think independent FPGA boards programmed
//! with the same bitstream and network) that splits a classification batch
//! into contiguous image shards, runs one shard per device on scoped
//! threads, and merges the per-shard predictions back in image order.
//!
//! Determinism: every pool member is a clone of the same programmed device,
//! per-image inference does not depend on which images a device ran before
//! (transient fault windows gate on per-inference cycle numbering, see
//! [`nvfi_accel::Accelerator::set_fault_window`]), and shards are contiguous
//! and ordered — so the merged prediction vector is bit-identical to running
//! the whole batch on a single device, for every pool size and shard
//! granularity.
//!
//! Input movement: campaigns quantize their evaluation split to i8 once, up
//! front, into a [`QuantizedEvalSet`]; [`DevicePool::classify_i8`] shards
//! that set **by reference** (borrowed contiguous sub-views), so the
//! per-classification cost is zero pixel copies and zero quantization. The
//! f32 [`DevicePool::classify`] remains as a thin quantize-once-then-delegate
//! wrapper.

use std::ops::Range;

use nvfi_accel::{AccelError, FaultConfig};
use nvfi_obs::trace;
use nvfi_quant::QuantModel;
use nvfi_tensor::{Shape4, Tensor};

use crate::platform::{EmulationPlatform, PlatformConfig, PlatformError};

/// Per-shard classification closure of the pool's shared shard/merge
/// protocol: classifies one device's contiguous image range.
type ShardFn<'a> =
    dyn Fn(&mut EmulationPlatform, Range<usize>) -> Result<Vec<u8>, PlatformError> + Sync + 'a;

/// A campaign-lifetime cache of golden (fault-free) activations at one op
/// boundary — the state a transient-window work item needs to skip the
/// fault-free prefix of every inference.
///
/// A transient fault window can only be observed by the plan ops whose
/// MAC-cycle span intersects it; every op before the first such op computes
/// exactly the same activations for every one of a campaign's thousands of
/// windowed work items. The cache runs that prefix **once per image**
/// ([`nvfi_accel::Accelerator::run_prefix_i8_view`], counted by the
/// `nvfi_accel::golden_prefix_passes` probe), snapshots the boundary's
/// live-in DRAM surfaces (`ExecutionPlan::live_in_surfaces` — every surface
/// some suffix op reads before the suffix itself rewrites it, so aliasing
/// allocators are handled), and work items restore those bytes instead of
/// recomputing the prefix
/// ([`nvfi_accel::Accelerator::run_suffix_i8_view`]).
///
/// # Memory model
///
/// Entries are laid out contiguously, one fixed-stride record per image
/// (`stride = Σ live-in surface bytes`), and the whole cache is shared
/// **read-only** across every device of a [`DevicePool`] (borrowed into the
/// shard threads — no copies, no locks). The byte budget
/// (`CampaignSpec::golden_cache_bytes`, `NVFI_GOLDEN_CACHE`) bounds the
/// cache: when the full evaluation set does not fit, only the leading
/// `budget / stride` images are checkpointed and the rest transparently fall
/// back to the op-scoped path that recomputes the prefix — bit-identical
/// either way, just slower.
#[derive(Clone, Debug)]
pub struct GoldenActivationCache {
    /// First plan op whose MAC-cycle span intersects the window.
    boundary: usize,
    /// Live-in `(addr, bytes)` surfaces of the boundary, in capture order.
    surfaces: Vec<(u64, u64)>,
    /// Bytes per cached image.
    stride: usize,
    /// `cached_images * stride` bytes of captured surfaces.
    data: Vec<i8>,
    /// Images `0..cached_images` of the evaluation set are cached.
    cached_images: usize,
}

impl GoldenActivationCache {
    /// Captures golden-prefix checkpoints for `set` on `device`, for the
    /// transient window `window`, within `budget_bytes`.
    ///
    /// Returns `Ok(None)` when a cache cannot help: the budget is `0`
    /// (disabled), the window first bites in op 0 (no prefix to skip), the
    /// window misses the plan entirely, or the budget cannot hold even one
    /// image. The device must be **fault-free** — capture runs the fast
    /// path, and the snapshot is only golden without programmed faults.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the capture runs.
    pub fn build(
        device: &mut EmulationPlatform,
        set: &QuantizedEvalSet,
        window: &Range<u64>,
        budget_bytes: usize,
    ) -> Result<Option<Self>, PlatformError> {
        if budget_bytes == 0 {
            return Ok(None);
        }
        let Some(boundary) = device.accel().first_op_in_window(window) else {
            return Ok(None);
        };
        if boundary == 0 {
            return Ok(None);
        }
        let surfaces = device.plan().live_in_surfaces(boundary);
        let stride: usize = surfaces.iter().map(|&(_, b)| b as usize).sum();
        if stride == 0 {
            return Ok(None);
        }
        let cached_images = set.len().min(budget_bytes / stride);
        if cached_images == 0 {
            return Ok(None);
        }
        let mut data = Vec::with_capacity(cached_images * stride);
        for i in 0..cached_images {
            device
                .accel_mut()
                .run_prefix_i8_view(set.view(i..i + 1), boundary)?;
            for &(addr, bytes) in &surfaces {
                data.extend(device.accel_mut().dma_read(addr, bytes)?);
            }
        }
        Ok(Some(GoldenActivationCache {
            boundary,
            surfaces,
            stride,
            data,
            cached_images,
        }))
    }

    /// Reassembles a cache from its shipped parts — the receiving end of a
    /// distributed campaign, where the coordinator built the cache once and
    /// a worker reconstructs it from the wire (stride is re-derived from
    /// the surfaces).
    ///
    /// Returns `None` when the parts are inconsistent: a zero stride, or a
    /// data length that is not `cached_images` whole strides.
    #[must_use]
    pub fn from_parts(
        boundary: usize,
        surfaces: Vec<(u64, u64)>,
        data: Vec<i8>,
        cached_images: usize,
    ) -> Option<Self> {
        let stride: usize = surfaces.iter().map(|&(_, b)| b as usize).sum();
        if stride == 0 || data.len() != cached_images * stride {
            return None;
        }
        Some(GoldenActivationCache {
            boundary,
            surfaces,
            stride,
            data,
            cached_images,
        })
    }

    /// The op boundary the cache checkpoints.
    #[must_use]
    pub fn boundary(&self) -> usize {
        self.boundary
    }

    /// The live-in `(addr, bytes)` surfaces of the boundary, in capture
    /// order.
    #[must_use]
    pub fn surfaces(&self) -> &[(u64, u64)] {
        &self.surfaces
    }

    /// The raw captured bytes, `cached_images` fixed strides.
    #[must_use]
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Number of images checkpointed (a budget-limited prefix of the set).
    #[must_use]
    pub fn cached_images(&self) -> usize {
        self.cached_images
    }

    /// Total cache payload in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// The captured live-in surfaces of image `i`, or `None` when `i` fell
    /// outside the byte budget (caller recomputes the prefix instead).
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn entry(&self, i: usize) -> Option<(&[(u64, u64)], &[i8])> {
        if i < self.cached_images {
            Some((
                &self.surfaces,
                &self.data[i * self.stride..(i + 1) * self.stride],
            ))
        } else {
            None
        }
    }
}

/// An evaluation set quantized to i8 exactly once, for the lifetime of a
/// campaign.
///
/// The paper's emulation flow quantizes the evaluation images once, when the
/// bitstream is programmed; re-quantizing per fault configuration (or per
/// device shard) is pure multiplied waste. A `QuantizedEvalSet` is the
/// software equivalent: build it up front from the f32 split, then hand
/// [`DevicePool::classify_i8`] borrowed sub-views — the images stay
/// contiguous in NCHW order, so any shard range aligned to whole images
/// (in particular the mini-batch-aligned ranges of
/// [`DevicePool::shard_plan`]) is a zero-copy slice.
///
/// Quantization is elementwise, so building one set for the whole split is
/// bit-identical to quantizing each shard separately (property-tested in
/// `nvfi-quant`); building it costs exactly one pass of the
/// [`nvfi_quant::batch::quantization_passes`] probe.
#[derive(Clone, Debug)]
pub struct QuantizedEvalSet {
    images: Tensor<i8>,
}

impl QuantizedEvalSet {
    /// Quantizes `images` with `model`'s input scale — one batch-quantization
    /// pass, however many work items and shards later consume the set.
    #[must_use]
    pub fn build(model: &QuantModel, images: &Tensor<f32>) -> Self {
        QuantizedEvalSet {
            images: model.quantize_input(images),
        }
    }

    /// Quantizes `images` with an explicit input scale (the compiled plan's
    /// `input_scale` — what a pool of programmed devices knows without the
    /// model).
    #[must_use]
    pub fn from_scale(images: &Tensor<f32>, scale: f32) -> Self {
        let data = nvfi_quant::batch::quantize_slice(images.as_slice(), scale);
        QuantizedEvalSet {
            images: Tensor::from_vec(images.shape(), data),
        }
    }

    /// Wraps an already-quantized batch.
    #[must_use]
    pub fn from_tensor(images: Tensor<i8>) -> Self {
        QuantizedEvalSet { images }
    }

    /// Number of images in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.shape().n
    }

    /// Whether the set has no images.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The set's shape (`n` images).
    #[must_use]
    pub fn shape(&self) -> Shape4 {
        self.images.shape()
    }

    /// The quantized images.
    #[must_use]
    pub fn images(&self) -> &Tensor<i8> {
        &self.images
    }

    /// Borrow of the images in `range` as one contiguous dense i8 slice.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[must_use]
    pub fn view(&self, range: Range<usize>) -> &[i8] {
        let image_len = self.images.shape().image_len();
        &self.images.as_slice()[range.start * image_len..range.end * image_len]
    }
}

/// A pool of identical emulated devices sharing the work of one evaluation
/// batch.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<EmulationPlatform>,
}

impl DevicePool {
    /// Compiles `model` once and populates the pool with `devices` clones of
    /// the programmed device (cloning device state is much cheaper than
    /// recompiling the plan per member).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if lowering fails or the plan does not fit
    /// the device.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn assemble(
        model: &QuantModel,
        config: PlatformConfig,
        devices: usize,
    ) -> Result<Self, PlatformError> {
        Ok(Self::from_device(
            EmulationPlatform::assemble(model, config)?,
            devices,
        ))
    }

    /// Builds a pool of `devices` members by cloning one programmed device.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    #[must_use]
    pub fn from_device(device: EmulationPlatform, devices: usize) -> Self {
        assert!(devices > 0, "a device pool needs at least one device");
        let mut v = Vec::with_capacity(devices);
        for _ in 1..devices {
            v.push(device.clone());
        }
        v.push(device);
        DevicePool { devices: v }
    }

    /// Number of devices in the pool.
    #[must_use]
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// The (shared) platform configuration of the pool members.
    #[must_use]
    pub fn config(&self) -> PlatformConfig {
        self.devices[0].config()
    }

    /// Partitions the pool into sub-pools of the given sizes (in order).
    ///
    /// # Panics
    ///
    /// Panics if `sizes` does not sum to the pool size or contains a zero.
    #[must_use]
    pub fn split(self, sizes: &[usize]) -> Vec<DevicePool> {
        assert_eq!(
            sizes.iter().sum::<usize>(),
            self.devices.len(),
            "split sizes must consume the whole pool"
        );
        let mut devices = self.devices.into_iter();
        sizes
            .iter()
            .map(|&n| {
                assert!(n > 0, "sub-pools need at least one device");
                DevicePool {
                    devices: devices.by_ref().take(n).collect(),
                }
            })
            .collect()
    }

    /// Programs `fault` into every pool member. The register stream is
    /// encoded once and replayed per device, so re-injection across the pool
    /// allocates once regardless of pool size.
    pub fn inject(&mut self, fault: &FaultConfig) {
        let writes = fault.reg_writes();
        for d in &mut self.devices {
            d.accel_mut().inject_writes(&writes);
        }
    }

    /// Disables fault injection (and any transient window) on every member.
    pub fn clear_faults(&mut self) {
        for d in &mut self.devices {
            d.clear_faults();
        }
    }

    /// Sets the transient fault window on every member.
    ///
    /// # Errors
    ///
    /// Propagates the engine's window validation
    /// ([`nvfi_accel::Accelerator::set_fault_window`]): `ExecMode::Fast`
    /// devices reject windows outright, and a window that cannot overlap
    /// any MAC cycle of the loaded plan is rejected as a silent no-op.
    pub fn set_fault_window(&mut self, window: Option<Range<u64>>) -> Result<(), PlatformError> {
        for d in &mut self.devices {
            d.accel_mut().set_fault_window(window.clone())?;
        }
        Ok(())
    }

    /// The shard granularity a pool under `config` uses: an explicit
    /// [`PlatformConfig::shard_images`], else one fast-path mini-batch.
    #[must_use]
    pub fn granularity(config: &PlatformConfig) -> usize {
        match config.shard_images {
            0 => config.accel.batch.max(1),
            g => g,
        }
    }

    /// The deterministic shard layout: `images` images split into at most
    /// `devices` contiguous ranges, each — except possibly the last — a
    /// multiple of `granularity` images, with the leading shards taking the
    /// extra granules.
    #[must_use]
    pub fn shard_plan(images: usize, devices: usize, granularity: usize) -> Vec<Range<usize>> {
        if images == 0 {
            return Vec::new();
        }
        let g = granularity.max(1);
        let granules = images.div_ceil(g);
        let shards = devices.max(1).min(granules);
        let per = granules / shards;
        let rem = granules % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0usize;
        for i in 0..shards {
            let n = (per + usize::from(i < rem)) * g;
            let end = (start + n).min(images);
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Classifies `images`, sharding the batch across the pool members on
    /// scoped threads. Merged predictions are in image order and
    /// bit-identical to [`EmulationPlatform::classify`] on one device.
    ///
    /// A thin quantize-then-delegate wrapper around
    /// [`DevicePool::classify_i8`]: the batch is quantized **once** (with
    /// the compiled plan's input scale) and sharded by reference —
    /// campaign-lifetime callers that already hold a [`QuantizedEvalSet`]
    /// should call [`DevicePool::classify_i8`] directly and skip even that
    /// one pass.
    ///
    /// # Errors
    ///
    /// Propagates the first device error (by shard order).
    pub fn classify(&mut self, images: &Tensor<f32>) -> Result<Vec<u8>, PlatformError> {
        let scale = self.devices[0].plan().input_scale;
        let set = QuantizedEvalSet::from_scale(images, scale);
        self.classify_i8(&set)
    }

    /// Classifies a pre-quantized evaluation set, sharding the batch across
    /// the pool members on scoped threads — by reference: every shard is a
    /// borrowed sub-view of `set`, so the per-call cost is zero pixel copies
    /// and zero quantization. Merged predictions are in image order and
    /// bit-identical to the f32 path on one device.
    ///
    /// # Ragged tails
    ///
    /// The image count does not have to be a multiple of the shard
    /// granularity (or of the device mini-batch): [`DevicePool::shard_plan`]
    /// keeps every shard except the last a whole number of granules, and
    /// only the **last** shard may carry the ragged tail. An image count
    /// that *is* a multiple of the granularity has an empty tail (every
    /// shard whole); one that is not ends in a final shard smaller than a
    /// granule — possibly smaller than one device mini-batch, which the
    /// engine's mini-batch loop handles as a short final batch. Either way
    /// predictions are bit-identical to the unsharded run (covered
    /// explicitly by the ragged-tail tests below).
    ///
    /// # Errors
    ///
    /// Propagates the first device error (by shard order). Returns
    /// [`PlatformError::Accel`] if `set`'s image shape does not match the
    /// compiled plan's input shape.
    pub fn classify_i8(&mut self, set: &QuantizedEvalSet) -> Result<Vec<u8>, PlatformError> {
        self.classify_i8_range(set, 0..set.len())
    }

    /// Classifies the contiguous sub-range `range` of a pre-quantized
    /// evaluation set, sharding those images across the pool members exactly
    /// as [`DevicePool::classify_i8`] shards the whole set. This is the
    /// entry point a distributed worker drives: the coordinator assigns it
    /// an image range of a work item, and the worker fans that range out
    /// over its local devices — predictions for `range` are bit-identical
    /// to the corresponding slice of a full-set classification.
    ///
    /// # Errors
    ///
    /// Propagates the first device error (by shard order). Returns
    /// [`PlatformError::Accel`] on an evaluation-set shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds of `set`.
    pub fn classify_i8_range(
        &mut self,
        set: &QuantizedEvalSet,
        range: Range<usize>,
    ) -> Result<Vec<u8>, PlatformError> {
        self.check_set_shape(set)?;
        assert!(
            range.start <= range.end && range.end <= set.len(),
            "image range {range:?} outside the {}-image set",
            set.len()
        );
        let offset = range.start;
        self.classify_sharded(range.len(), &move |device, r| {
            device.classify_i8(set.view(offset + r.start..offset + r.end))
        })
    }

    /// Validates `set` against the compiled plan's input shape.
    fn check_set_shape(&self, set: &QuantizedEvalSet) -> Result<(), PlatformError> {
        let s = set.shape();
        let plan_input = self.devices[0].plan().input_shape;
        if s.n > 0 && s.with_n(1) != plan_input.with_n(1) {
            return Err(PlatformError::Accel(AccelError::BadPlan(format!(
                "evaluation set {s} does not match plan input {plan_input}"
            ))));
        }
        Ok(())
    }

    /// The shared shard/merge protocol of every classify entry point:
    /// splits `images` per [`DevicePool::shard_plan`], runs `run_shard`
    /// once per `(device, image range)` — on the calling thread for a
    /// single shard, on scoped threads otherwise — and merges the per-shard
    /// predictions in shard (= image) order, propagating the first error by
    /// shard order.
    fn classify_sharded(
        &mut self,
        images: usize,
        run_shard: &ShardFn<'_>,
    ) -> Result<Vec<u8>, PlatformError> {
        let granularity = Self::granularity(&self.config());
        let plan = Self::shard_plan(images, self.devices.len(), granularity);
        if plan.len() <= 1 {
            let _s = trace::span("pool.shard");
            return run_shard(&mut self.devices[0], 0..images);
        }
        // Shard threads inherit the spawning thread's trace ids (worker
        // group, campaign) so their `pool.shard` spans attribute correctly.
        let ids = trace::current_ids();
        let mut results: Vec<Result<Vec<u8>, PlatformError>> = Vec::with_capacity(plan.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, (device, range)) in self
                .devices
                .iter_mut()
                .zip(plan.iter().cloned())
                .enumerate()
            {
                handles.push(scope.spawn(move || {
                    let _ctx = trace::with_ids(trace::Ids {
                        shard: shard as u64,
                        ..ids
                    });
                    let _s = trace::span("pool.shard");
                    run_shard(device, range)
                }));
            }
            for h in handles {
                results.push(h.join().expect("pool shard worker panicked"));
            }
        });
        let mut preds = Vec::with_capacity(images);
        for r in results {
            preds.extend(r?);
        }
        Ok(preds)
    }

    /// Classifies a pre-quantized evaluation set under an armed transient
    /// fault window, restoring each image's golden prefix from `cache`
    /// instead of recomputing it. Sharding mirrors
    /// [`DevicePool::classify_i8`] (contiguous image ranges, one scoped
    /// thread per device, merged in image order); the cache is shared
    /// read-only across the shard threads. Images outside the cache's byte
    /// budget — or all of them, when `cache` is `None` — run the full
    /// op-scoped inference (fast prefix, exact window ops, fast suffix).
    /// Predictions are bit-identical to [`DevicePool::classify_i8`] for
    /// every cache budget (asserted by `tests/campaign_determinism.rs`).
    ///
    /// # Errors
    ///
    /// Propagates the first device error (by shard order). Returns
    /// [`PlatformError::Accel`] on an evaluation-set shape mismatch.
    pub fn classify_i8_golden(
        &mut self,
        set: &QuantizedEvalSet,
        cache: Option<&GoldenActivationCache>,
    ) -> Result<Vec<u8>, PlatformError> {
        self.classify_i8_golden_range(set, 0..set.len(), cache)
    }

    /// Classifies the contiguous sub-range `range` of a pre-quantized
    /// evaluation set under an armed transient fault window — the
    /// golden-cache analogue of [`DevicePool::classify_i8_range`], and the
    /// entry point a distributed worker drives for windowed shards. Cache
    /// entries are looked up by **absolute** image index, so a shard of
    /// images `64..96` hits entries `64..96` of the shared cache exactly as
    /// the coordinator's full-set run would.
    ///
    /// # Errors
    ///
    /// Propagates the first device error (by shard order). Returns
    /// [`PlatformError::Accel`] on an evaluation-set shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds of `set`.
    pub fn classify_i8_golden_range(
        &mut self,
        set: &QuantizedEvalSet,
        range: Range<usize>,
        cache: Option<&GoldenActivationCache>,
    ) -> Result<Vec<u8>, PlatformError> {
        let Some(cache) = cache else {
            return self.classify_i8_range(set, range);
        };
        self.check_set_shape(set)?;
        assert!(
            range.start <= range.end && range.end <= set.len(),
            "image range {range:?} outside the {}-image set",
            set.len()
        );
        let offset = range.start;
        self.classify_sharded(range.len(), &move |device, r| {
            let mut preds = Vec::with_capacity(r.len());
            for i in offset + r.start..offset + r.end {
                let class = match cache.entry(i) {
                    Some((surfaces, data)) => {
                        device
                            .accel_mut()
                            .run_suffix_i8_view(cache.boundary(), surfaces, data)?
                            .class
                    }
                    None => {
                        device
                            .accel_mut()
                            .run_inference_i8_view(set.view(i..i + 1))?
                            .class
                    }
                };
                preds.push(class);
            }
            Ok(preds)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfi_accel::FaultKind;
    use nvfi_compiler::regmap::MultId;
    use nvfi_dataset::{SynthCifar, SynthCifarConfig};

    fn setup() -> (QuantModel, nvfi_dataset::Dataset) {
        let q = crate::experiments::untrained_quant_model(4, 12);
        let data = SynthCifar::new(SynthCifarConfig {
            train: 0,
            test: 11,
            ..Default::default()
        })
        .generate();
        (q, data.test)
    }

    #[test]
    fn shard_plan_covers_contiguously() {
        for (images, devices, g) in [
            (10, 3, 1),
            (10, 3, 4),
            (7, 8, 1),
            (256, 8, 8),
            (5, 1, 2),
            (9, 4, 2),
        ] {
            let plan = DevicePool::shard_plan(images, devices, g);
            assert!(plan.len() <= devices);
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, images);
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start, "shards must be contiguous");
                assert!(!w[0].is_empty());
            }
            for r in &plan[..plan.len() - 1] {
                assert_eq!(r.len() % g, 0, "non-final shards keep granularity {g}");
            }
        }
        assert!(DevicePool::shard_plan(0, 4, 2).is_empty());
        // More devices than granules: surplus devices get no shard.
        assert_eq!(DevicePool::shard_plan(6, 8, 4).len(), 2);
    }

    #[test]
    fn pool_matches_single_device_with_and_without_faults() {
        let (q, eval) = setup();
        let mut single = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        let mut pool = DevicePool::assemble(&q, PlatformConfig::default(), 3).unwrap();
        assert_eq!(pool.size(), 3);
        assert_eq!(
            single.classify(&eval.images).unwrap(),
            pool.classify(&eval.images).unwrap()
        );
        let fault = FaultConfig::new(
            vec![MultId::new(1, 2), MultId::new(3, 4)],
            FaultKind::Constant(-1),
        );
        single.inject(&fault);
        pool.inject(&fault);
        assert_eq!(
            single.classify(&eval.images).unwrap(),
            pool.classify(&eval.images).unwrap()
        );
        single.clear_faults();
        pool.clear_faults();
        assert_eq!(
            single.classify(&eval.images).unwrap(),
            pool.classify(&eval.images).unwrap()
        );
    }

    #[test]
    fn i8_set_matches_f32_classify() {
        let (q, eval) = setup();
        let mut pool = DevicePool::assemble(&q, PlatformConfig::default(), 3).unwrap();
        let set = QuantizedEvalSet::build(&q, &eval.images);
        assert_eq!(set.len(), eval.images.shape().n);
        assert!(!set.is_empty());
        let fault = FaultConfig::new(vec![MultId::new(2, 5)], FaultKind::StuckAtZero);
        pool.inject(&fault);
        assert_eq!(
            pool.classify(&eval.images).unwrap(),
            pool.classify_i8(&set).unwrap(),
            "borrowed-i8 path must be bit-identical to the f32 wrapper"
        );
    }

    /// The ragged-tail contract of [`DevicePool::classify_i8`]: with an
    /// explicit granularity, only the *last* shard may be a partial granule.
    /// Both tail shapes — empty (count divisible by the granularity) and a
    /// tail smaller than one granule / device mini-batch — must merge to the
    /// same predictions as the unsharded device.
    #[test]
    fn ragged_tail_is_explicit_and_bit_identical() {
        let q = crate::experiments::untrained_quant_model(4, 31);
        let config = PlatformConfig {
            shard_images: 4,
            ..Default::default()
        };
        let mut single = EmulationPlatform::assemble(&q, PlatformConfig::default()).unwrap();
        let mut pool = DevicePool::assemble(&q, config, 3).unwrap();

        // Empty tail: 8 images over granularity 4 = 2 whole granules; every
        // shard is whole.
        let even = SynthCifar::new(SynthCifarConfig {
            train: 0,
            test: 8,
            ..Default::default()
        })
        .generate()
        .test;
        let plan = DevicePool::shard_plan(8, 3, 4);
        assert_eq!(
            plan,
            vec![0..4, 4..8],
            "8 images / g=4: two whole shards, empty tail"
        );
        assert_eq!(
            single.classify(&even.images).unwrap(),
            pool.classify(&even.images).unwrap()
        );

        // Ragged tail smaller than a granule (and than the default
        // mini-batch): 11 images -> shards of 4, 4 and a 3-image tail.
        let ragged = SynthCifar::new(SynthCifarConfig {
            train: 0,
            test: 11,
            ..Default::default()
        })
        .generate()
        .test;
        let plan = DevicePool::shard_plan(11, 3, 4);
        assert_eq!(
            plan,
            vec![0..4, 4..8, 8..11],
            "only the last shard is partial"
        );
        assert!(plan.last().unwrap().len() < 4);
        let set = QuantizedEvalSet::build(&q, &ragged.images);
        assert_eq!(
            single.classify(&ragged.images).unwrap(),
            pool.classify_i8(&set).unwrap()
        );
    }

    #[test]
    fn mismatched_set_shape_is_rejected() {
        let (q, _) = setup();
        let mut pool = DevicePool::assemble(&q, PlatformConfig::default(), 2).unwrap();
        // Wrong spatial extent: 3x8x8 instead of the plan's 3x32x32.
        let bad =
            QuantizedEvalSet::from_tensor(Tensor::zeros(nvfi_tensor::Shape4::new(2, 3, 8, 8)));
        assert!(pool.classify_i8(&bad).is_err());
    }

    #[test]
    fn pool_is_shard_granularity_invariant() {
        let (q, eval) = setup();
        let classify_with = |shard_images: usize| {
            let config = PlatformConfig {
                shard_images,
                ..Default::default()
            };
            DevicePool::assemble(&q, config, 4)
                .unwrap()
                .classify(&eval.images)
                .unwrap()
        };
        let a = classify_with(0);
        let b = classify_with(1);
        let c = classify_with(5);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn split_partitions_in_order() {
        let (q, _) = setup();
        let pool = DevicePool::assemble(&q, PlatformConfig::default(), 5).unwrap();
        let parts = pool.split(&[2, 2, 1]);
        assert_eq!(
            parts.iter().map(DevicePool::size).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_sized_pool_rejected() {
        let (q, _) = setup();
        let _ = DevicePool::assemble(&q, PlatformConfig::default(), 0);
    }
}
