//! **The emulation platform** — the paper's primary contribution, as a
//! library: fast fault-tolerance analysis of CNN inference accelerators by
//! running the CNN on an (emulated) accelerator whose multipliers carry
//! programmable fault injectors.
//!
//! The pieces:
//!
//! * [`EmulationPlatform`] — one-stop assembly: quantized model → compiled
//!   plan → programmed accelerator, with fault programming and evaluation
//!   helpers (the role the ARM-side software stack plays on the real Zynq);
//! * [`campaign`] — fault-injection campaigns: random multiplier subsets
//!   (Fig. 2), exhaustive single-multiplier sweeps (Fig. 3), fixed lists;
//!   scheduled at two levels: an outer lock-free cursor hands fault
//!   configurations to worker groups, and each group's [`DevicePool`]
//!   shards the evaluation batch across its device instances, so campaigns
//!   saturate the thread budget whether they are wide (many configurations)
//!   or narrow (one configuration, many images);
//! * [`pool`] — the [`DevicePool`]: a set of identical device instances
//!   (independent emulated FPGA boards) that splits one classification
//!   batch into contiguous image shards and deterministically merges the
//!   per-shard predictions back in image order, bit-identical to a single
//!   device;
//! * [`stats`] — five-number summaries for box plots and accuracy-drop heat
//!   maps;
//! * [`report`] — ASCII rendering (box plots, heat maps) plus CSV/JSON
//!   export of every result;
//! * [`experiments`] — the drivers that regenerate each table/figure of the
//!   paper (Table I, Fig. 2, Fig. 3, the Sec. IV speedup claim), used by
//!   `nvfi-bench`'s binaries;
//! * [`artifacts`] — train-once caching of the quantized network.
//!
//! # Examples
//!
//! ```no_run
//! use nvfi::{EmulationPlatform, PlatformConfig};
//! use nvfi::campaign::{Campaign, CampaignSpec, TargetSelection};
//! use nvfi_accel::FaultKind;
//!
//! # fn demo(qmodel: nvfi_quant::QuantModel, data: nvfi_dataset::Dataset)
//! #     -> Result<(), nvfi::PlatformError> {
//! let platform = EmulationPlatform::assemble(&qmodel, PlatformConfig::default())?;
//! let spec = CampaignSpec {
//!     selection: TargetSelection::RandomSubsets { k: 3, trials: 10, seed: 42 },
//!     kinds: vec![FaultKind::StuckAtZero],
//!     eval_images: 100,
//!     threads: 8,          // two-level: 10 trials share 8 devices...
//!     pool_devices: 0,     // ...grouped automatically (0 = auto)
//!     ..Default::default()
//! };
//! let result = Campaign::new(&qmodel, platform.config()).run(&spec, &data)?;
//! println!("median drop: {:.1} pp", result.drops_pct()[0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod campaign;
pub mod experiments;
mod platform;
pub mod pool;
pub mod report;
pub mod stats;

pub use platform::{EmulationPlatform, PlatformConfig, PlatformError};
pub use pool::{DevicePool, GoldenActivationCache, QuantizedEvalSet};
