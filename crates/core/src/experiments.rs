//! Drivers that regenerate every table and figure of the paper.
//!
//! | Paper artifact | Driver | Output files (under the results dir) |
//! |---|---|---|
//! | Table I (latency + synthesis) | [`run_table1`] | `table1.csv`, `table1.json` |
//! | Fig. 2 (drop vs #multipliers) | [`run_fig2`] | `fig2.csv`, `fig2.json` |
//! | Fig. 3 (per-multiplier heat maps) | [`run_fig3`] | `fig3.csv`, `fig3.json` |
//! | Sec. IV speedup claim | [`run_speedup`] | `speedup.json` |
//!
//! Absolute numbers differ from the paper (simulated substrate, retrained
//! CNN — see DESIGN.md); each result type carries the paper's reference
//! values so EXPERIMENTS.md can tabulate both.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use nvfi_accel::FaultKind;
use nvfi_compiler::regmap::{MultId, MAC_UNITS, MULTS_PER_MAC};
use nvfi_obs::progress;
use nvfi_quant::{quantize, QuantConfig, QuantModel};
use nvfi_synth::{table1_synthesis_rows, SynthRow};
use serde_json::json;

use crate::artifacts::{get_or_train_quantized, ModelSpec};
use crate::campaign::{Campaign, CampaignSpec, TargetSelection};
use crate::platform::{EmulationPlatform, PlatformConfig};
use crate::report;
use crate::stats::{FiveNum, HeatMap};

/// The injected 18-bit constants of the paper's experiments.
pub const INJECTED_VALUES: [i32; 3] = [0, 1, -1];

/// Shared experiment configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// The trained network used for the accuracy experiments.
    pub model: ModelSpec,
    /// ResNet width used for the Table I latency model (needs no training).
    pub table1_width: usize,
    /// Evaluation images per fault configuration.
    pub eval_images: usize,
    /// Random trials per `#multipliers` point in Fig. 2.
    pub trials_per_k: usize,
    /// Largest `#multipliers` in Fig. 2 (paper: 7).
    pub max_k: usize,
    /// Campaign worker threads.
    pub threads: usize,
    /// Devices per fault configuration (0 = auto; see
    /// [`crate::campaign::CampaignSpec::pool_devices`]).
    pub pool_devices: usize,
    /// Device-pool shard granularity in images (0 = one mini-batch; see
    /// [`crate::PlatformConfig::shard_images`]).
    pub shard_images: usize,
    /// Byte budget of the golden-prefix activation cache for windowed
    /// campaigns (see [`crate::campaign::CampaignSpec::golden_cache_bytes`];
    /// default 256 MiB, `usize::MAX` = unbounded, `0` = disabled).
    pub golden_cache_bytes: usize,
    /// Worker processes of a distributed campaign (`NVFI_WORKERS`; see
    /// [`crate::campaign::CampaignSpec::workers`]). `0` (the default) runs
    /// in-process. Honoured by the `nvfi-bench` experiment binaries (fig2,
    /// fig3, all), which schedule through the `nvfi-dist` coordinator via
    /// [`run_fig2_with`] / [`run_fig3_with`] when this is non-zero: without
    /// [`ExperimentConfig::dist_addr`] the workers are spawned locally
    /// (self-exec); with it they are expected to attach from other hosts.
    pub workers: usize,
    /// Listen address of the distributed coordinator (`NVFI_DIST_ADDR`,
    /// e.g. `0.0.0.0:7070`). When set, the `nvfi-bench` experiment
    /// binaries bind the coordinator there and wait for all
    /// [`ExperimentConfig::workers`] workers to attach **remotely**
    /// (`nvfi_worker <this-host>:7070` on each machine) instead of spawning
    /// local processes. `None` (the default) binds an ephemeral localhost
    /// port for locally spawned workers.
    pub dist_addr: Option<String>,
    /// Per-shard silence timeout of a distributed campaign, in **seconds**
    /// (`NVFI_TASK_TIMEOUT`). Consumed by the `nvfi-bench` experiment
    /// binaries, which plumb it into the coordinator's
    /// `FleetSpec::task_timeout`: a worker whose shard goes silent (no
    /// heartbeat, no completion) for longer is treated as lost and its
    /// shard is requeued. `None` (the default) waits forever — the right
    /// call for local fleets, where a dead worker closes its socket and is
    /// detected immediately anyway; set it for cross-host fleets behind
    /// links that can stall silently.
    pub task_timeout: Option<u64>,
    /// Checkpoint file for distributed campaigns (`NVFI_CHECKPOINT`; see
    /// [`crate::campaign::CampaignSpec::checkpoint_path`]). Sequential
    /// campaigns of one experiment may share the path: each campaign
    /// removes the file when it completes, and a leftover checkpoint from
    /// a killed run only resumes the campaign whose fingerprint matches.
    pub checkpoint: Option<PathBuf>,
    /// Fraction of completed distributed shards silently re-dispatched to
    /// a second worker and compared byte-for-byte (`NVFI_AUDIT_RATE`,
    /// `0.0..=1.0`; plumbed into the coordinator's `FleetSpec::audit_rate`).
    /// The baseline shard is always audited whatever the rate. Default
    /// `0.0` (baseline-only).
    pub audit_rate: f64,
    /// Whether convicted workers are quarantined and drained
    /// (`NVFI_QUARANTINE`, `0` disables; plumbed into
    /// `FleetSpec::quarantine`). Default `true`.
    pub quarantine: bool,
    /// Where result files are written.
    pub out_dir: PathBuf,
    /// Progress on stderr.
    pub verbose: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            model: ModelSpec::default(),
            table1_width: 16,
            eval_images: 200,
            trials_per_k: 10,
            max_k: 7,
            threads: 1,
            pool_devices: 0,
            shard_images: 0,
            golden_cache_bytes: crate::campaign::GOLDEN_CACHE_DEFAULT_BYTES,
            workers: 0,
            dist_addr: None,
            task_timeout: None,
            checkpoint: None,
            audit_rate: 0.0,
            quarantine: true,
            out_dir: PathBuf::from("results"),
            verbose: false,
        }
    }
}

impl ExperimentConfig {
    /// A very small configuration for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            model: ModelSpec {
                width: 4,
                epochs: 1,
                train: 60,
                test: 30,
                artifact_dir: std::env::temp_dir().join("nvfi_quick_artifacts"),
                ..Default::default()
            },
            table1_width: 8,
            eval_images: 10,
            trials_per_k: 2,
            max_k: 3,
            threads: 1,
            pool_devices: 0,
            shard_images: 0,
            golden_cache_bytes: crate::campaign::GOLDEN_CACHE_DEFAULT_BYTES,
            workers: 0,
            dist_addr: None,
            task_timeout: None,
            checkpoint: None,
            audit_rate: 0.0,
            quarantine: true,
            out_dir: std::env::temp_dir().join("nvfi_quick_results"),
            verbose: false,
        }
    }

    /// The default configuration with `NVFI_*` environment overrides:
    /// `NVFI_WIDTH`, `NVFI_EPOCHS`, `NVFI_TRAIN`, `NVFI_TEST`, `NVFI_NOISE`,
    /// `NVFI_EVAL`, `NVFI_TRIALS`, `NVFI_MAX_K`, `NVFI_TABLE1_WIDTH`,
    /// `NVFI_THREADS`, `NVFI_POOL`, `NVFI_SHARD`, `NVFI_GOLDEN_CACHE`,
    /// `NVFI_WORKERS`, `NVFI_DIST_ADDR`, `NVFI_TASK_TIMEOUT` (seconds;
    /// unset = wait forever), `NVFI_CHECKPOINT` (checkpoint file path),
    /// `NVFI_AUDIT_RATE` (fraction of distributed shards silently
    /// re-checked on a second worker), `NVFI_QUARANTINE` (`0` disables
    /// draining convicted workers), `NVFI_OUT_DIR`, `NVFI_VERBOSE`.
    #[must_use]
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let mut cfg = ExperimentConfig {
            verbose: true,
            ..Default::default()
        };
        cfg.model.width = get("NVFI_WIDTH", cfg.model.width);
        cfg.model.epochs = get("NVFI_EPOCHS", cfg.model.epochs);
        cfg.model.train = get("NVFI_TRAIN", cfg.model.train);
        cfg.model.test = get("NVFI_TEST", cfg.model.test);
        cfg.model.noise = get("NVFI_NOISE", cfg.model.noise);
        cfg.model.label_noise = get("NVFI_LABEL_NOISE", cfg.model.label_noise);
        cfg.model.verbose = true;
        cfg.eval_images = get("NVFI_EVAL", cfg.eval_images);
        cfg.trials_per_k = get("NVFI_TRIALS", cfg.trials_per_k);
        cfg.max_k = get("NVFI_MAX_K", cfg.max_k);
        cfg.table1_width = get("NVFI_TABLE1_WIDTH", cfg.table1_width);
        cfg.threads = get("NVFI_THREADS", cfg.threads);
        cfg.pool_devices = get("NVFI_POOL", cfg.pool_devices);
        cfg.shard_images = get("NVFI_SHARD", cfg.shard_images);
        cfg.golden_cache_bytes = get("NVFI_GOLDEN_CACHE", cfg.golden_cache_bytes);
        cfg.workers = get("NVFI_WORKERS", cfg.workers);
        if let Ok(addr) = std::env::var("NVFI_DIST_ADDR") {
            if !addr.is_empty() {
                cfg.dist_addr = Some(addr);
            }
        }
        if let Ok(secs) = std::env::var("NVFI_TASK_TIMEOUT") {
            cfg.task_timeout = secs.parse().ok().filter(|&s| s > 0);
        }
        if let Ok(path) = std::env::var("NVFI_CHECKPOINT") {
            if !path.is_empty() {
                cfg.checkpoint = Some(PathBuf::from(path));
            }
        }
        cfg.audit_rate = get("NVFI_AUDIT_RATE", cfg.audit_rate).clamp(0.0, 1.0);
        cfg.quarantine = get("NVFI_QUARANTINE", 1u8) != 0;
        cfg.verbose = get("NVFI_VERBOSE", 1u8) != 0;
        if let Ok(dir) = std::env::var("NVFI_OUT_DIR") {
            cfg.out_dir = PathBuf::from(dir);
        }
        cfg
    }

    /// The platform configuration campaign experiments run with (the
    /// default device plus this config's pool scheduling knobs).
    #[must_use]
    pub fn platform(&self) -> PlatformConfig {
        PlatformConfig {
            shard_images: self.shard_images,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------------

/// One Fig. 2 group: a box of accuracy drops for `(k, injected value)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2Group {
    /// Number of simultaneously affected multipliers.
    pub k: usize,
    /// Injected 18-bit constant.
    pub value: i32,
    /// Accuracy drop (percentage points, negative = worse) per trial.
    pub drops: Vec<f64>,
    /// Box-plot summary of `drops`.
    pub stats: FiveNum,
}

/// The Fig. 2 reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2Result {
    /// Fault-free int8 accuracy (percent).
    pub baseline_pct: f64,
    /// Groups ordered by `(k, value index)`.
    pub groups: Vec<Fig2Group>,
    /// Total fault injections performed.
    pub total_fis: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

impl Fig2Result {
    /// Writes `fig2.csv` and `fig2.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let mut rows = Vec::new();
        for g in &self.groups {
            for (trial, d) in g.drops.iter().enumerate() {
                rows.push(vec![
                    g.k.to_string(),
                    g.value.to_string(),
                    trial.to_string(),
                    format!("{d:.4}"),
                ]);
            }
        }
        report::write_csv(dir, "fig2.csv", &["k", "value", "trial", "drop_pct"], &rows)?;
        let groups: Vec<serde_json::Value> = self
            .groups
            .iter()
            .map(|g| {
                json!({
                    "k": g.k,
                    "value": g.value,
                    "drops_pct": g.drops,
                    "median": g.stats.median,
                    "q1": g.stats.q1,
                    "q3": g.stats.q3,
                })
            })
            .collect();
        report::write_json(
            dir,
            "fig2.json",
            &json!({
                "baseline_pct": self.baseline_pct,
                "total_fis": self.total_fis,
                "wall_seconds": self.wall_seconds,
                "groups": groups,
            }),
        )?;
        Ok(())
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, FiveNum)> = self
            .groups
            .iter()
            .map(|g| (format!("k={} inj={:>2}", g.k, g.value), g.stats))
            .collect();
        let chart = report::box_plot_chart(
            &format!(
                "Fig. 2 — accuracy drop [pp] vs #affected multipliers ({} FIs, baseline {:.1}%)",
                self.total_fis, self.baseline_pct
            ),
            &rows,
            48,
        );
        f.write_str(&chart)
    }
}

/// The signature a campaign executor must satisfy for the `*_with`
/// experiment drivers ([`run_fig2_with`], [`run_fig3_with`]): given the
/// trained model, the platform configuration and one campaign spec, produce
/// the result. The in-process executor is
/// `|m, c, spec, eval| Campaign::new(m, c).run(spec, eval)` (what
/// [`run_fig2`] / [`run_fig3`] use); the `nvfi-bench` experiment binaries
/// substitute the `nvfi-dist` coordinator when
/// [`ExperimentConfig::workers`] / [`ExperimentConfig::dist_addr`] ask for
/// a distributed fleet — this crate itself stays socket-free, and because
/// the distributed path is record-bit-identical, the figures are too.
pub trait CampaignRunner<E> {
    /// Runs one campaign.
    ///
    /// # Errors
    ///
    /// Whatever the executor's error type is (the in-process runner's
    /// [`crate::PlatformError`], `nvfi-dist`'s `DistError`, ...).
    fn run_campaign(
        &mut self,
        model: &QuantModel,
        config: PlatformConfig,
        spec: &CampaignSpec,
        eval: &nvfi_dataset::Dataset,
    ) -> Result<crate::campaign::CampaignResult, E>;
}

impl<E, F> CampaignRunner<E> for F
where
    F: FnMut(
        &QuantModel,
        PlatformConfig,
        &CampaignSpec,
        &nvfi_dataset::Dataset,
    ) -> Result<crate::campaign::CampaignResult, E>,
{
    fn run_campaign(
        &mut self,
        model: &QuantModel,
        config: PlatformConfig,
        spec: &CampaignSpec,
        eval: &nvfi_dataset::Dataset,
    ) -> Result<crate::campaign::CampaignResult, E> {
        self(model, config, spec, eval)
    }
}

/// Reproduces Fig. 2: random multiplier subsets of growing size, injected
/// values 0 / +1 / -1.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_fig2(cfg: &ExperimentConfig) -> Result<Fig2Result, crate::PlatformError> {
    run_fig2_with(cfg, in_process_campaign)
}

/// The in-process [`CampaignRunner`]: `Campaign::new(model, config).run(..)`.
///
/// # Errors
///
/// Propagates platform errors.
pub fn in_process_campaign(
    model: &QuantModel,
    config: PlatformConfig,
    spec: &CampaignSpec,
    eval: &nvfi_dataset::Dataset,
) -> Result<crate::campaign::CampaignResult, crate::PlatformError> {
    Campaign::new(model, config).run(spec, eval)
}

/// Runner-generic [`run_fig2`]: the campaign executor is injected (see
/// [`CampaignRunner`]), so a driver can schedule every campaign through the
/// `nvfi-dist` coordinator — honouring `NVFI_WORKERS` / `NVFI_DIST_ADDR` —
/// without this crate depending on sockets.
///
/// # Errors
///
/// Propagates the executor's errors.
pub fn run_fig2_with<E>(
    cfg: &ExperimentConfig,
    mut runner: impl CampaignRunner<E>,
) -> Result<Fig2Result, E> {
    let (qmodel, data, base_acc) = get_or_train_quantized(&cfg.model);
    let start = Instant::now();
    let mut groups = Vec::new();
    let mut total = 0usize;
    for k in 1..=cfg.max_k {
        for (vi, &value) in INJECTED_VALUES.iter().enumerate() {
            let spec = CampaignSpec {
                selection: TargetSelection::RandomSubsets {
                    k,
                    trials: cfg.trials_per_k,
                    seed: cfg.model.seed ^ ((k as u64) << 16) ^ (vi as u64),
                },
                kinds: vec![FaultKind::Constant(value)],
                eval_images: cfg.eval_images,
                threads: cfg.threads,
                pool_devices: cfg.pool_devices,
                workers: cfg.workers,
                golden_cache_bytes: cfg.golden_cache_bytes,
                checkpoint_path: cfg.checkpoint.clone(),
                verbose: cfg.verbose,
                ..Default::default()
            };
            let result = runner.run_campaign(&qmodel, cfg.platform(), &spec, &data.test)?;
            let drops = result.drops_pct();
            total += drops.len();
            if cfg.verbose {
                progress::note(format!(
                    "fig2: k={k} inj={value}: median drop {:.1} pp",
                    FiveNum::from_sample(&drops).median
                ));
            }
            groups.push(Fig2Group {
                k,
                value,
                stats: FiveNum::from_sample(&drops),
                drops,
            });
        }
    }
    Ok(Fig2Result {
        baseline_pct: base_acc * 100.0,
        groups,
        total_fis: total,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------------
// Fig. 3
// ---------------------------------------------------------------------------

/// The Fig. 3 reproduction: one heat map per injected value.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig3Result {
    /// Fault-free int8 accuracy (percent).
    pub baseline_pct: f64,
    /// `(injected value, MAC x multiplier drop map)`.
    pub maps: Vec<(i32, HeatMap)>,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

impl Fig3Result {
    /// The most sensitive `(MAC, multiplier)` cell per injected value
    /// (1-based, as the paper labels them).
    #[must_use]
    pub fn worst_cells(&self) -> Vec<(i32, usize, usize)> {
        self.maps
            .iter()
            .map(|(v, m)| {
                let (r, c) = m.argmin();
                (*v, r + 1, c + 1)
            })
            .collect()
    }

    /// Writes `fig3.csv` and `fig3.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let mut rows = Vec::new();
        for (v, map) in &self.maps {
            for mac in 0..map.rows() {
                for mult in 0..map.cols() {
                    rows.push(vec![
                        v.to_string(),
                        (mac + 1).to_string(),
                        (mult + 1).to_string(),
                        format!("{:.4}", map.at(mac, mult)),
                    ]);
                }
            }
        }
        report::write_csv(
            dir,
            "fig3.csv",
            &["value", "mac", "mult", "drop_pct"],
            &rows,
        )?;
        let maps: Vec<serde_json::Value> = self
            .maps
            .iter()
            .map(|(v, m)| json!({"value": v, "cells_row_major": m.cells()}))
            .collect();
        report::write_json(
            dir,
            "fig3.json",
            &json!({
                "baseline_pct": self.baseline_pct,
                "wall_seconds": self.wall_seconds,
                "worst_cells_one_based": self.worst_cells()
                    .iter().map(|(v, r, c)| json!([v, r, c])).collect::<Vec<_>>(),
                "maps": maps,
            }),
        )?;
        Ok(())
    }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (mut lo, mut hi) = (0f64, 0f64);
        for (_, m) in &self.maps {
            let (a, b) = m.range();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        for (v, m) in &self.maps {
            f.write_str(&report::heat_map_chart(
                &format!("Fig. 3 — accuracy drop heat map, injected {v}"),
                m,
                lo,
                hi,
            ))?;
        }
        for (v, mac, mult) in self.worst_cells() {
            writeln!(
                f,
                "  worst cell for injected {v}: MAC {mac}, multiplier {mult}"
            )?;
        }
        Ok(())
    }
}

/// Reproduces Fig. 3: every multiplier faulted alone, per injected value.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_fig3(cfg: &ExperimentConfig) -> Result<Fig3Result, crate::PlatformError> {
    run_fig3_with(cfg, in_process_campaign)
}

/// Runner-generic [`run_fig3`] (see [`CampaignRunner`] and
/// [`run_fig2_with`]).
///
/// # Errors
///
/// Propagates the executor's errors.
pub fn run_fig3_with<E>(
    cfg: &ExperimentConfig,
    mut runner: impl CampaignRunner<E>,
) -> Result<Fig3Result, E> {
    let (qmodel, data, base_acc) = get_or_train_quantized(&cfg.model);
    let start = Instant::now();
    let mut maps = Vec::new();
    for &value in &INJECTED_VALUES {
        let spec = CampaignSpec {
            selection: TargetSelection::ExhaustiveSingle,
            kinds: vec![FaultKind::Constant(value)],
            eval_images: cfg.eval_images,
            threads: cfg.threads,
            pool_devices: cfg.pool_devices,
            workers: cfg.workers,
            golden_cache_bytes: cfg.golden_cache_bytes,
            checkpoint_path: cfg.checkpoint.clone(),
            verbose: cfg.verbose,
            ..Default::default()
        };
        let result = runner.run_campaign(&qmodel, cfg.platform(), &spec, &data.test)?;
        let mut map = HeatMap::new(MAC_UNITS, MULTS_PER_MAC);
        for rec in &result.records {
            let m = rec.targets[0];
            map.set(m.mac as usize, m.mult as usize, rec.drop_pct);
        }
        if cfg.verbose {
            let (r, c) = map.argmin();
            progress::note(format!(
                "fig3: inj={value}: worst cell MAC {} mult {}",
                r + 1,
                c + 1
            ));
        }
        maps.push((value, map));
    }
    Ok(Fig3Result {
        baseline_pct: base_acc * 100.0,
        maps,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One latency row of Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRow {
    /// Device description.
    pub device: String,
    /// Threads (0 = not applicable).
    pub threads: usize,
    /// Clock description.
    pub clock: String,
    /// Measured or modelled single-inference latency in ms.
    pub ms: f64,
    /// The paper's corresponding number, when one exists.
    pub paper_ms: Option<f64>,
}

/// The Table I reproduction: latency rows + synthesis rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Result {
    /// Latency rows (host CPU measured, accelerator modelled).
    pub latency: Vec<LatencyRow>,
    /// Synthesis rows from the structural cost model.
    pub synth: Vec<SynthRow>,
    /// ResNet width used for the rows.
    pub width: usize,
    /// MACs per inference of that network.
    pub macs: u64,
}

impl Table1Result {
    /// Writes `table1.csv` and `table1.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let mut rows: Vec<Vec<String>> = self
            .latency
            .iter()
            .map(|r| {
                vec![
                    r.device.clone(),
                    r.threads.to_string(),
                    r.clock.clone(),
                    format!("{:.3}", r.ms),
                    r.paper_ms.map_or(String::new(), |v| v.to_string()),
                    String::new(),
                    String::new(),
                ]
            })
            .collect();
        for s in &self.synth {
            rows.push(vec![
                s.label.to_string(),
                String::new(),
                "187.5 MHz".into(),
                String::new(),
                String::new(),
                s.luts.to_string(),
                s.ffs.to_string(),
            ]);
        }
        report::write_csv(
            dir,
            "table1.csv",
            &[
                "device",
                "threads",
                "clock",
                "inference_ms",
                "paper_ms",
                "luts",
                "ffs",
            ],
            &rows,
        )?;
        report::write_json(
            dir,
            "table1.json",
            &json!({
                "width": self.width,
                "macs_per_inference": self.macs,
                "latency": self.latency.iter().map(|r| json!({
                    "device": r.device, "threads": r.threads, "clock": r.clock,
                    "ms": r.ms, "paper_ms": r.paper_ms,
                })).collect::<Vec<_>>(),
                "synthesis": self.synth.iter().map(|s| json!({
                    "label": s.label, "luts": s.luts, "ffs": s.ffs,
                    "paper_luts": s.paper_luts, "paper_ffs": s.paper_ffs,
                })).collect::<Vec<_>>(),
            }),
        )?;
        Ok(())
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — ResNet-18 (width {}, {:.1} MMAC) inference and synthesis",
            self.width,
            self.macs as f64 / 1e6
        )?;
        writeln!(
            f,
            "{:<44} {:>8} {:>12} {:>10}",
            "Device", "Threads", "Clock", "ms"
        )?;
        for r in &self.latency {
            writeln!(
                f,
                "{:<44} {:>8} {:>12} {:>10.3}{}",
                r.device,
                if r.threads == 0 {
                    "-".to_string()
                } else {
                    r.threads.to_string()
                },
                r.clock,
                r.ms,
                r.paper_ms
                    .map_or(String::new(), |v| format!("   (paper {v} ms)")),
            )?;
        }
        writeln!(f, "{:<32} {:>8} {:>8}", "Synthesis", "LUT", "FF")?;
        for s in &self.synth {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Reproduces Table I. CPU rows are measured on this host with the int8
/// reference executor; accelerator rows come from the 187.5 MHz cycle
/// model; synthesis rows from the structural cost model.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_table1(cfg: &ExperimentConfig) -> Result<Table1Result, crate::PlatformError> {
    // Latency is weight-independent: an untrained net of the right shape
    // suffices (calibrated on synthetic images so scales are sane).
    let qmodel = untrained_quant_model(cfg.table1_width, cfg.model.seed);
    let data = nvfi_dataset::SynthCifar::new(nvfi_dataset::SynthCifarConfig {
        train: 8,
        test: 8,
        ..Default::default()
    })
    .generate();

    let time_cpu = |threads: usize| -> f64 {
        let input = qmodel.quantize_input(&data.test.images.slice_image(0));
        // Warm-up, then measure.
        let _ = nvfi_quant::exec::forward(&qmodel, &input, threads);
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = nvfi_quant::exec::forward(&qmodel, &input, threads);
        }
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
    };

    let platform = EmulationPlatform::assemble(&qmodel, PlatformConfig::default())?;
    let accel_ms = platform.modeled_latency_ms();

    let host = format!("Host CPU int8 reference ({} hw threads)", num_threads());
    let latency = vec![
        LatencyRow {
            device: format!("{host} [ARM Cortex-A53 row]"),
            threads: 1,
            clock: "host".into(),
            ms: time_cpu(1),
            paper_ms: Some(22.68),
        },
        LatencyRow {
            device: format!("{host} [ARM Cortex-A53 row]"),
            threads: 4,
            clock: "host".into(),
            ms: time_cpu(4),
            paper_ms: Some(14.12),
        },
        LatencyRow {
            device: "NVDLA model (cycle model)".into(),
            threads: 0,
            clock: "187.5 MHz".into(),
            ms: accel_ms,
            paper_ms: Some(4.59),
        },
        LatencyRow {
            device: "NVDLA model + FI (any variant)".into(),
            threads: 0,
            clock: "187.5 MHz".into(),
            ms: accel_ms, // FI muxes are combinational: same latency
            paper_ms: Some(4.59),
        },
    ];

    Ok(Table1Result {
        latency,
        synth: table1_synthesis_rows(),
        width: cfg.table1_width,
        macs: qmodel.macs_per_inference(),
    })
}

// ---------------------------------------------------------------------------
// Speedup (Sec. IV)
// ---------------------------------------------------------------------------

/// The Sec. IV throughput comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedupResult {
    /// Modelled FPGA throughput for the campaign network (inferences/s).
    pub fpga_modeled_inf_per_s: f64,
    /// The paper's FPGA figure (217 inf/s, full ResNet-18).
    pub paper_fpga_inf_per_s: f64,
    /// Measured cycle-driven systolic simulator rate on the two largest
    /// conv layers (simulations/s).
    pub systolic_sims_per_s: f64,
    /// The paper's software-engine figure (5.8 sim/s, two conv layers).
    pub paper_sw_sims_per_s: f64,
    /// Measured graph-level software FI rate (full-network inferences/s).
    pub graph_sw_inf_per_s: f64,
    /// Measured throughput of this emulator running on the host
    /// (inferences/s) — how fast the *simulation* itself is.
    pub emulator_host_inf_per_s: f64,
}

impl SpeedupResult {
    /// FPGA-vs-cycle-driven-software speedup factor (the paper's
    /// order-of-magnitude claim).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.fpga_modeled_inf_per_s / self.systolic_sims_per_s.max(1e-12)
    }

    /// Writes `speedup.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        report::write_json(
            dir,
            "speedup.json",
            &json!({
                "fpga_modeled_inf_per_s": self.fpga_modeled_inf_per_s,
                "paper_fpga_inf_per_s": self.paper_fpga_inf_per_s,
                "systolic_sims_per_s": self.systolic_sims_per_s,
                "paper_sw_sims_per_s": self.paper_sw_sims_per_s,
                "graph_sw_inf_per_s": self.graph_sw_inf_per_s,
                "emulator_host_inf_per_s": self.emulator_host_inf_per_s,
                "speedup_vs_cycle_sim": self.speedup(),
            }),
        )?;
        Ok(())
    }
}

impl fmt::Display for SpeedupResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Speedup (Sec. IV) — FT-analysis throughput")?;
        writeln!(
            f,
            "  emulated FPGA (cycle model)        {:>10.1} inf/s   (paper: {} inf/s)",
            self.fpga_modeled_inf_per_s, self.paper_fpga_inf_per_s
        )?;
        writeln!(
            f,
            "  cycle-driven systolic simulator    {:>10.2} sim/s   (paper: {} sim/s, 2 layers)",
            self.systolic_sims_per_s, self.paper_sw_sims_per_s
        )?;
        writeln!(
            f,
            "  graph-level software FI            {:>10.1} inf/s",
            self.graph_sw_inf_per_s
        )?;
        writeln!(
            f,
            "  this emulator on the host          {:>10.1} inf/s",
            self.emulator_host_inf_per_s
        )?;
        writeln!(f, "  FPGA vs cycle-driven software: {:.0}x", self.speedup())
    }
}

/// Reproduces the Sec. IV throughput comparison.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_speedup(cfg: &ExperimentConfig) -> Result<SpeedupResult, crate::PlatformError> {
    let (qmodel, data, _) = get_or_train_quantized(&cfg.model);
    let mut platform = EmulationPlatform::assemble(&qmodel, PlatformConfig::default())?;
    let fpga = platform.modeled_inferences_per_second();

    let image = qmodel.quantize_input(&data.test.images.slice_image(0));

    // Cycle-driven systolic simulation of the first two conv layers.
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = nvfi_systolic::sim::simulate_first_convs(&qmodel, &image, 2, 8, &[]);
    }
    let systolic = f64::from(reps) / t0.elapsed().as_secs_f64();

    // Graph-level software FI (full network).
    let faults = [nvfi_quant::swfi::GraphFault::StuckZeroChannel { op: 0, channel: 0 }];
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = nvfi_quant::exec::forward_with_graph_faults(&qmodel, &image, 1, &faults);
    }
    let graph_sw = f64::from(reps) / t0.elapsed().as_secs_f64();

    // This emulator's own host-side throughput.
    let img_f32 = data.test.images.slice_image(0);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = platform.run(&img_f32)?;
    }
    let emulator = f64::from(reps) / t0.elapsed().as_secs_f64();

    Ok(SpeedupResult {
        fpga_modeled_inf_per_s: fpga,
        paper_fpga_inf_per_s: 217.0,
        systolic_sims_per_s: systolic,
        paper_sw_sims_per_s: 5.8,
        graph_sw_inf_per_s: graph_sw,
        emulator_host_inf_per_s: emulator,
    })
}

// ---------------------------------------------------------------------------

/// Builds an untrained (random-weight) quantized ResNet-18 of the given
/// width — sufficient for latency work, which is weight-independent.
#[must_use]
pub fn untrained_quant_model(width: usize, seed: u64) -> QuantModel {
    let net = nvfi_nn::resnet::ResNet::resnet18(width, 10, seed);
    let deploy = nvfi_nn::fold::fold_resnet(&net, 32);
    let calib = nvfi_dataset::SynthCifar::new(nvfi_dataset::SynthCifarConfig {
        train: 8,
        test: 0,
        ..Default::default()
    })
    .generate();
    quantize(&deploy, &calib.train.images, &QuantConfig::default())
        .expect("untrained model quantizes")
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sanity helper shared by tests: a single-multiplier fault config.
#[must_use]
pub fn single_fault(mac: u8, mult: u8, value: i32) -> nvfi_accel::FaultConfig {
    nvfi_accel::FaultConfig::new(vec![MultId::new(mac, mult)], FaultKind::Constant(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_quick_has_expected_groups() {
        let cfg = ExperimentConfig::quick();
        let r = run_fig2(&cfg).unwrap();
        assert_eq!(r.groups.len(), cfg.max_k * INJECTED_VALUES.len());
        assert_eq!(r.total_fis, cfg.max_k * 3 * cfg.trials_per_k);
        assert!(r.baseline_pct >= 0.0);
        r.save(&cfg.out_dir).unwrap();
        assert!(cfg.out_dir.join("fig2.csv").exists());
        // Display renders without panicking and mentions every k.
        let text = r.to_string();
        assert!(text.contains("k=1"));
    }

    #[test]
    fn table1_quick_rows() {
        let cfg = ExperimentConfig::quick();
        let r = run_table1(&cfg).unwrap();
        assert_eq!(r.latency.len(), 4);
        assert!(r.latency[0].ms > 0.0);
        // FI adds no latency.
        assert_eq!(r.latency[2].ms, r.latency[3].ms);
        assert_eq!(r.synth.len(), 3);
        r.save(&cfg.out_dir).unwrap();
        assert!(r.to_string().contains("Table I"));
    }

    #[test]
    fn speedup_quick_is_positive_and_ordered() {
        let cfg = ExperimentConfig::quick();
        let r = run_speedup(&cfg).unwrap();
        assert!(r.fpga_modeled_inf_per_s > 0.0);
        assert!(r.systolic_sims_per_s > 0.0);
        assert!(
            r.speedup() > 1.0,
            "modelled FPGA ({:.1}/s) must beat cycle-driven sim ({:.2}/s)",
            r.fpga_modeled_inf_per_s,
            r.systolic_sims_per_s
        );
        r.save(&cfg.out_dir).unwrap();
        assert!(r.to_string().contains("Speedup"));
    }

    #[test]
    fn untrained_model_has_right_shape() {
        let q = untrained_quant_model(8, 1);
        assert_eq!(q.input_shape.c, 3);
        assert!(q.macs_per_inference() > 1_000_000);
    }
}
