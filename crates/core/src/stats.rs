//! Statistics for campaign results: box-plot summaries and heat maps.

use std::fmt;

/// Five-number summary (plus mean) of a sample, with linear-interpolation
/// quartiles — what each box of Fig. 2 shows.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FiveNum {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample size.
    pub n: usize,
}

impl FiveNum {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty.
    #[must_use]
    pub fn from_sample(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "five-number summary of an empty sample");
        let mut v = sample.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        FiveNum {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean,
            n: v.len(),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for FiveNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} | q1 {:.2} | med {:.2} | q3 {:.2} | max {:.2} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.n
        )
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice (the "R-7"
/// definition used by numpy/matplotlib, so box plots match the paper's
/// toolchain).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A dense rows x cols grid of f64 cells — the Fig. 3 heat maps.
#[derive(Clone, Debug, PartialEq)]
pub struct HeatMap {
    rows: usize,
    cols: usize,
    cells: Vec<f64>,
}

impl HeatMap {
    /// Creates a zero-filled grid.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized grid (`rows == 0` or `cols == 0`): such a map
    /// has no cells, so `range()` would be `(inf, -inf)` and `argmin()`
    /// would name a cell `(0, 0)` that `at` rejects.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "heat map needs a non-empty grid, got {rows}x{cols}"
        );
        HeatMap {
            rows,
            cols,
            cells: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell value.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols);
        self.cells[r * self.cols + c]
    }

    /// Sets a cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols);
        self.cells[r * self.cols + c] = v;
    }

    /// `(min, max)` over all cells.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &self.cells {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// The `(row, col)` of the most negative cell — "the most significant
    /// drop" cell the paper calls out.
    #[must_use]
    pub fn argmin(&self) -> (usize, usize) {
        let mut best = (0usize, 0usize);
        let mut val = f64::INFINITY;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.at(r, c) < val {
                    val = self.at(r, c);
                    best = (r, c);
                }
            }
        }
        best
    }

    /// All cells, row-major.
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_num_of_known_sample() {
        let s = FiveNum::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.25), 2.5);
        assert_eq!(quantile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn five_num_unsorted_input() {
        let s = FiveNum::from_sample(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        let _ = FiveNum::from_sample(&[]);
    }

    #[test]
    fn heatmap_argmin_and_range() {
        let mut h = HeatMap::new(2, 3);
        h.set(1, 2, -12.5);
        h.set(0, 0, 3.0);
        assert_eq!(h.argmin(), (1, 2));
        assert_eq!(h.range(), (-12.5, 3.0));
        assert_eq!(h.at(1, 2), -12.5);
    }

    #[test]
    #[should_panic(expected = "non-empty grid")]
    fn zero_row_heatmap_rejected() {
        let _ = HeatMap::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "non-empty grid")]
    fn zero_col_heatmap_rejected() {
        let _ = HeatMap::new(8, 0);
    }

    #[test]
    fn one_cell_heatmap_is_consistent() {
        let mut h = HeatMap::new(1, 1);
        h.set(0, 0, -3.0);
        assert_eq!(h.argmin(), (0, 0));
        assert_eq!(h.range(), (-3.0, -3.0));
        assert_eq!(h.at(h.argmin().0, h.argmin().1), -3.0);
    }

    /// Oracle comparison against a simple sorted-slice implementation.
    #[test]
    fn quantiles_match_sorted_slice_oracle() {
        let data: Vec<f64> = (0..101).map(|i| (i * 37 % 101) as f64).collect();
        let s = FiveNum::from_sample(&data);
        // 0..=100 permuted: quantiles of the uniform grid.
        assert_eq!(s.median, 50.0);
        assert_eq!(s.q1, 25.0);
        assert_eq!(s.q3, 75.0);
    }
}
